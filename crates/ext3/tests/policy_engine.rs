//! The runtime-configurable failure-policy engine, end to end on ext3:
//! transient faults masked by bounded retry, sticky faults escalated to
//! graceful read-only degradation, checkpoint write retry, runtime policy
//! swap, and deterministic backoff accounting.

use iron_blockdev::MemDisk;
use iron_core::recover::{Backoff, FailurePolicyTable, PolicyHandle, RecoveryAction};
use iron_core::{BlockAddr, BlockTag, Errno, FaultKind, IoKind, SimClock};
use iron_ext3::{Ext3Fs, Ext3Options, Ext3Params, IronConfig};
use iron_faultinject::{FaultController, FaultSpec, FaultTarget, FaultyDisk};
use iron_vfs::{FsEnv, MountState, Vfs};

type Fs = Ext3Fs<FaultyDisk<MemDisk>>;

/// mkfs a MemDisk, wrap it in a FaultyDisk, mount ext3 with `opts`.
fn mount_with(opts: Ext3Options) -> (Vfs<Fs>, FaultController, FsEnv) {
    let mut md = MemDisk::for_tests(4096);
    Ext3Fs::<MemDisk>::mkfs(&mut md, Ext3Params::small()).expect("mkfs");
    let faulty = FaultyDisk::new(md);
    let ctl = faulty.controller();
    let env = FsEnv::new();
    let fs = Ext3Fs::mount(faulty, env.clone(), opts).expect("mount");
    (Vfs::new(fs), ctl, env)
}

/// Remount the same device cold (fresh cache, fresh env) with `opts`.
fn remount(v: Vfs<Fs>, opts: Ext3Options) -> (Vfs<Fs>, FsEnv) {
    let dev = v.into_fs().into_device();
    let env = FsEnv::new();
    let fs = Ext3Fs::mount(dev, env.clone(), opts).expect("remount");
    (Vfs::new(fs), env)
}

/// A policy whose read chain retries `budget` times then escalates to
/// read-only degradation (instead of stock's propagate).
fn retry_then_degrade(budget: u32, backoff: Backoff) -> PolicyHandle {
    PolicyHandle::new(
        FailurePolicyTable::with_default(vec![RecoveryAction::Propagate]).rule(
            None,
            Some(IoKind::Read),
            None,
            vec![
                RecoveryAction::Retry { budget, backoff },
                RecoveryAction::DegradeReadOnly,
            ],
        ),
    )
}

#[test]
fn transient_fault_of_budget_reachable_depth_is_fully_masked() {
    let (mut v, ctl, env) = mount_with(Ext3Options::default());
    v.write_file("/f", b"masked by retry").unwrap();
    v.sync().unwrap();
    let addr = v.fs_mut().blocks_of(3).unwrap()[0];

    let policy = retry_then_degrade(3, Backoff::none());
    let opts = Ext3Options {
        policy: policy.clone(),
        ..Ext3Options::default()
    };
    let (mut v, env2) = remount(v, opts);
    drop(env);
    // Depth 2 < budget 3: reachable.
    ctl.inject(FaultSpec::transient(
        FaultKind::ReadError,
        FaultTarget::Addr(BlockAddr(addr)),
        2,
    ));
    let trace = v.fs_mut().device().trace();
    let mark = trace.len();
    let got = v.read_file("/f").unwrap();
    assert_eq!(got, b"masked by retry", "op succeeds — fault fully masked");
    assert_eq!(env2.state(), MountState::ReadWrite, "no degradation");

    // RRetry observable with > 1 attempt: 2 failures + 1 success.
    let attempts = trace
        .since(mark)
        .iter()
        .filter(|e| e.addr == BlockAddr(addr) && e.kind == IoKind::Read)
        .count();
    assert_eq!(attempts, 3, "1 initial + 2 re-issues");
    let c = policy.counters().snapshot();
    assert_eq!(c.retries, 2);
    assert_eq!(c.masked, 1);
    assert_eq!(c.degrades, 0);
    assert!(env2.klog.contains("policy action retry: data read"));
}

#[test]
fn same_fault_made_sticky_escalates_to_degrade_read_only() {
    let (mut v, ctl, env) = mount_with(Ext3Options::default());
    v.write_file("/healthy", b"pre-degradation bytes").unwrap(); // ino 3
    v.write_file("/victim", b"doomed").unwrap(); // ino 4
    v.sync().unwrap();
    let victim_addr = v.fs_mut().blocks_of(4).unwrap()[0];

    let policy = retry_then_degrade(3, Backoff::none());
    let opts = Ext3Options {
        policy: policy.clone(),
        ..Ext3Options::default()
    };
    let (mut v, env2) = remount(v, opts);
    drop(env);
    // The same fault, sticky: budget exhausts, chain escalates.
    ctl.inject(FaultSpec::sticky(
        FaultKind::ReadError,
        FaultTarget::Addr(BlockAddr(victim_addr)),
    ));
    let err = v.read_file("/victim").unwrap_err();
    assert_eq!(err.errno(), Some(Errno::EIO));
    assert_eq!(
        env2.state(),
        MountState::ReadOnly,
        "chain escalated through retry to DegradeReadOnly"
    );
    assert!(env2.klog.contains("ext3_abort"));
    let c = policy.counters().snapshot();
    assert_eq!(c.retries, 3, "full budget spent first");
    assert_eq!(c.exhausted, 1);
    assert_eq!(c.degrades, 1);

    // After degradation: reads still served…
    assert_eq!(v.read_file("/healthy").unwrap(), b"pre-degradation bytes");
    // …writes return EROFS.
    let werr = v.write_file("/new", b"x").unwrap_err();
    assert_eq!(werr.errno(), Some(Errno::EROFS));
    let werr = v.unlink("/healthy").unwrap_err();
    assert_eq!(werr.errno(), Some(Errno::EROFS));
}

#[test]
fn degraded_mode_serves_all_pre_degradation_data_intact() {
    let (mut v, ctl, env) = mount_with(Ext3Options::default());
    v.write_file("/victim", b"trigger").unwrap(); // ino 3
    let mut expected = Vec::new();
    for i in 0..8u8 {
        let path = format!("/file{i}");
        let body: Vec<u8> = (0..1024u32).map(|j| (j as u8) ^ i).collect();
        v.write_file(&path, &body).unwrap();
        expected.push((path, body));
    }
    v.sync().unwrap();
    let victim_addr = v.fs_mut().blocks_of(3).unwrap()[0];

    let opts = Ext3Options {
        policy: retry_then_degrade(1, Backoff::none()),
        ..Ext3Options::default()
    };
    let (mut v, env2) = remount(v, opts);
    drop(env);
    ctl.inject(FaultSpec::sticky(
        FaultKind::ReadError,
        FaultTarget::Addr(BlockAddr(victim_addr)),
    ));
    assert!(v.read_file("/victim").is_err());
    assert_eq!(env2.state(), MountState::ReadOnly);

    // Every byte written before the degradation is still served intact.
    for (path, body) in &expected {
        assert_eq!(&v.read_file(path).unwrap(), body, "{path} intact");
    }
    // And the namespace still lists everything.
    let names = v.readdir("/").unwrap();
    assert!(names.iter().any(|e| e.name == "file7"));
}

/// Property form of the test above: whatever the pre-degradation file
/// set looks like — any count, any sizes, any contents — the degraded
/// read-only mount serves every byte of it intact.
#[test]
fn degraded_mode_preserves_any_generated_file_set() {
    use iron_testkit::gen;
    use iron_testkit::prop::{check, Config};

    let cases = gen::vec_of((gen::usize_in(1..30_000), gen::u8_any()), 1..10);
    check(
        "degraded_mode_preserves_any_generated_file_set",
        Config::cases(12),
        &cases,
        |files| {
            let (mut v, ctl, env) = mount_with(Ext3Options::default());
            v.write_file("/victim", b"trigger").unwrap(); // ino 3
            let mut expected = Vec::new();
            for (i, (len, seed)) in files.iter().enumerate() {
                let path = format!("/f{i}");
                let body: Vec<u8> = (0..*len)
                    .map(|j| (j as u8).wrapping_mul(31).wrapping_add(*seed))
                    .collect();
                v.write_file(&path, &body).unwrap();
                expected.push((path, body));
            }
            v.sync().unwrap();
            let victim_addr = v.fs_mut().blocks_of(3).unwrap()[0];

            let opts = Ext3Options {
                policy: retry_then_degrade(1, Backoff::none()),
                ..Ext3Options::default()
            };
            let (mut v, env2) = remount(v, opts);
            drop(env);
            ctl.inject(FaultSpec::sticky(
                FaultKind::ReadError,
                FaultTarget::Addr(BlockAddr(victim_addr)),
            ));
            assert!(v.read_file("/victim").is_err());
            assert_eq!(env2.state(), MountState::ReadOnly);
            for (path, body) in &expected {
                assert_eq!(&v.read_file(path).unwrap(), body, "{path} intact");
            }
        },
    );
}

#[test]
fn stock_rretry_cell_is_produced_by_the_policy_engine() {
    // The stock one-shot data-read retry now routes through the table:
    // removing the Retry rung removes the second attempt.
    let (mut v, ctl, env) = mount_with(Ext3Options::default());
    v.write_file("/f", b"no retry left").unwrap();
    v.sync().unwrap();
    let addr = v.fs_mut().blocks_of(3).unwrap()[0];

    let no_retry = PolicyHandle::new(FailurePolicyTable::with_default(vec![
        RecoveryAction::Propagate,
    ]));
    let (mut v, _env2) = remount(
        v,
        Ext3Options {
            policy: no_retry,
            ..Ext3Options::default()
        },
    );
    drop(env);
    ctl.inject(FaultSpec::sticky(
        FaultKind::ReadError,
        FaultTarget::Addr(BlockAddr(addr)),
    ));
    let trace = v.fs_mut().device().trace();
    let mark = trace.len();
    assert!(v.read_file("/f").is_err());
    let attempts = trace
        .since(mark)
        .iter()
        .filter(|e| e.addr == BlockAddr(addr) && e.kind == IoKind::Read)
        .count();
    assert_eq!(attempts, 1, "no Retry rung, no second attempt");
}

#[test]
fn runtime_policy_swap_widens_the_budget_mid_mount() {
    let (mut v, ctl, env) = mount_with(Ext3Options::default());
    v.write_file("/a", b"first").unwrap(); // ino 3
    v.write_file("/b", b"second").unwrap(); // ino 4
    v.sync().unwrap();
    let (addr_a, addr_b) = {
        let fs = v.fs_mut();
        (fs.blocks_of(3).unwrap()[0], fs.blocks_of(4).unwrap()[0])
    };

    let opts = Ext3Options::default(); // stock: data-read budget 1
    let handle = opts.policy.clone();
    let (mut v, env2) = remount(v, opts);
    drop(env);

    // Depth 2 beats stock's budget of 1: propagates.
    ctl.inject(FaultSpec::transient(
        FaultKind::ReadError,
        FaultTarget::Addr(BlockAddr(addr_a)),
        2,
    ));
    assert!(v.read_file("/a").is_err());

    // Swap the table at runtime through the shared handle…
    handle.set(
        FailurePolicyTable::with_default(vec![RecoveryAction::Propagate]).rule(
            None,
            Some(IoKind::Read),
            None,
            vec![
                RecoveryAction::Retry {
                    budget: 4,
                    backoff: Backoff::none(),
                },
                RecoveryAction::Propagate,
            ],
        ),
    );
    // …and the same depth-2 fault is now masked.
    ctl.inject(FaultSpec::transient(
        FaultKind::ReadError,
        FaultTarget::Addr(BlockAddr(addr_b)),
        2,
    ));
    assert_eq!(v.read_file("/b").unwrap(), b"second");
    assert_eq!(env2.state(), MountState::ReadWrite);
}

#[test]
fn backoff_is_charged_deterministically_to_the_cpu_clock() {
    let run = || {
        let (mut v, ctl, env) = mount_with(Ext3Options::default());
        v.write_file("/f", b"backoff").unwrap();
        v.sync().unwrap();
        let addr = v.fs_mut().blocks_of(3).unwrap()[0];

        let clock = SimClock::new();
        let policy = retry_then_degrade(3, Backoff::exponential(1_000, 2, 1_000_000));
        let counters = policy.counters().clone();
        let opts = Ext3Options {
            policy,
            cpu_clock: Some(clock.clone()),
            ..Ext3Options::default()
        };
        let (mut v, _env2) = remount(v, opts);
        drop(env);
        ctl.inject(FaultSpec::transient(
            FaultKind::ReadError,
            FaultTarget::Addr(BlockAddr(addr)),
            3,
        ));
        let t0 = clock.now_ns();
        v.read_file("/f").unwrap();
        (clock.now_ns() - t0, counters.snapshot().backoff_ns)
    };
    let (t1, b1) = run();
    let (t2, b2) = run();
    assert_eq!(b1, 1_000 + 2_000 + 4_000, "1k + 2k + 4k exponential");
    assert_eq!(t1, b1, "cpu clock advanced by exactly the backoff");
    assert_eq!((t1, b1), (t2, b2), "bit-identical across runs");
}

#[test]
fn checkpoint_write_retry_masks_a_transient_fault_without_abort() {
    // fix_bugs notices checkpoint write failures; a policy with a
    // metadata-write Retry rung masks a transient one instead of
    // aborting the journal.
    let iron = IronConfig {
        fix_bugs: true,
        ..IronConfig::off()
    };
    let policy = PolicyHandle::new(
        FailurePolicyTable::with_default(vec![RecoveryAction::Propagate]).rule(
            None,
            Some(IoKind::Write),
            None,
            vec![
                RecoveryAction::Retry {
                    budget: 2,
                    backoff: Backoff::none(),
                },
                RecoveryAction::DegradeReadOnly,
            ],
        ),
    );
    let opts = Ext3Options {
        iron,
        policy: policy.clone(),
        ..Ext3Options::default()
    };
    let (mut v, ctl, env) = mount_with(opts);
    // Journal writes carry j-* tags, so an inode-tagged write fault hits
    // exactly the checkpoint home-location write, not the log.
    ctl.inject(FaultSpec::transient(
        FaultKind::WriteError,
        FaultTarget::Tag(BlockTag("inode")),
        1,
    ));
    v.write_file("/f", b"checkpointed").unwrap();
    v.sync().unwrap();
    assert_eq!(env.state(), MountState::ReadWrite, "no abort: masked");
    assert!(!env.klog.contains("ext3_abort"));
    let c = policy.counters().snapshot();
    assert!(c.masked >= 1, "checkpoint re-issue succeeded: {c:?}");

    // The same fault sticky exhausts the budget and degrades.
    ctl.inject(FaultSpec::sticky(
        FaultKind::WriteError,
        FaultTarget::Tag(BlockTag("inode")),
    ));
    v.write_file("/g", b"doomed").unwrap();
    let _ = v.sync();
    assert_eq!(env.state(), MountState::ReadOnly, "sticky fault degrades");
    assert!(env.klog.contains("ext3_abort"));
}

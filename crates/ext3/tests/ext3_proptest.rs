//! Property-based differential testing: arbitrary operation sequences are
//! applied both to the ext3 model and to the in-memory reference
//! (`RamFs`); every observable result must agree, and the ext3 image must
//! pass `fsck` afterwards — on a healthy disk *and* across a
//! crash-and-recover cycle.
//!
//! Runs on the in-tree `iron-testkit` harness: a failure prints its case
//! seed and reruns deterministically with
//! `IRON_TESTKIT_SEED=<seed> cargo test -q <test_name>`.

use iron_blockdev::MemDisk;
use iron_ext3::{fsck, Ext3Fs, Ext3Options, Ext3Params, IronConfig};
use iron_testkit::gen::{self, Gen};
use iron_testkit::prop::{check, Config};
use iron_vfs::{ramfs::RamFs, FsEnv, SpecificFs, Vfs, VfsError};

/// A file-system operation over a small namespace.
#[derive(Clone, Debug)]
enum Op {
    Create(u8),
    Mkdir(u8),
    Write(u8, u16, Vec<u8>),
    Truncate(u8, u16),
    Read(u8),
    Unlink(u8),
    Rmdir(u8),
    Rename(u8, u8),
    Link(u8, u8),
    Symlink(u8, u8),
    Stat(u8),
    Readdir(u8),
    Sync,
}

fn path(n: u8) -> String {
    // A small namespace mixing root-level and nested names.
    match n % 12 {
        0 => "/a".into(),
        1 => "/b".into(),
        2 => "/c".into(),
        3 => "/dir".into(),
        4 => "/dir/x".into(),
        5 => "/dir/y".into(),
        6 => "/dir/sub".into(),
        7 => "/dir/sub/z".into(),
        8 => "/f1".into(),
        9 => "/f2".into(),
        10 => "/dir/f3".into(),
        _ => "/dir/sub/f4".into(),
    }
}

fn op_gen() -> impl Gen<Value = Op> {
    gen::one_of(vec![
        gen::u8_any().map(Op::Create).boxed(),
        gen::u8_any().map(Op::Mkdir).boxed(),
        (gen::u8_any(), gen::u16_any(), gen::bytes(0..2048))
            .map(|(p, o, d)| Op::Write(p, o % 8192, d))
            .boxed(),
        (gen::u8_any(), gen::u16_any())
            .map(|(p, s)| Op::Truncate(p, s % 8192))
            .boxed(),
        gen::u8_any().map(Op::Read).boxed(),
        gen::u8_any().map(Op::Unlink).boxed(),
        gen::u8_any().map(Op::Rmdir).boxed(),
        (gen::u8_any(), gen::u8_any())
            .map(|(a, b)| Op::Rename(a, b))
            .boxed(),
        (gen::u8_any(), gen::u8_any())
            .map(|(a, b)| Op::Link(a, b))
            .boxed(),
        (gen::u8_any(), gen::u8_any())
            .map(|(a, b)| Op::Symlink(a, b))
            .boxed(),
        gen::u8_any().map(Op::Stat).boxed(),
        gen::u8_any().map(Op::Readdir).boxed(),
        gen::just(Op::Sync).boxed(),
    ])
}

fn ops_gen(max_len: usize) -> impl Gen<Value = Vec<Op>> {
    gen::vec_of(op_gen(), 1..max_len)
}

fn apply<F: SpecificFs>(v: &mut Vfs<F>, op: &Op) -> Result<Vec<u8>, VfsError> {
    match op {
        Op::Create(p) => v
            .creat(&path(*p))
            .and_then(|fd| v.close(fd))
            .map(|_| vec![]),
        Op::Mkdir(p) => v.mkdir(&path(*p), 0o755).map(|_| vec![]),
        Op::Write(p, off, data) => {
            let fd = v.open(&path(*p), iron_vfs::OpenFlags::rdwr())?;
            let r = v.pwrite(fd, *off as u64, data);
            v.close(fd)?;
            r.map(|n| n.to_le_bytes().to_vec())
        }
        Op::Truncate(p, s) => v.truncate(&path(*p), *s as u64).map(|_| vec![]),
        Op::Read(p) => v.read_file(&path(*p)),
        Op::Unlink(p) => v.unlink(&path(*p)).map(|_| vec![]),
        Op::Rmdir(p) => v.rmdir(&path(*p)).map(|_| vec![]),
        Op::Rename(a, b) => v.rename(&path(*a), &path(*b)).map(|_| vec![]),
        Op::Link(a, b) => v.link(&path(*a), &path(*b)).map(|_| vec![]),
        Op::Symlink(a, b) => v.symlink(&path(*a), &path(*b)).map(|_| vec![]),
        Op::Stat(p) => v.stat(&path(*p)).map(|a| {
            // Directory sizes are representation-specific (ext3 counts
            // blocks, the reference counts nothing): compare 0 for dirs.
            let size = if a.ftype == iron_vfs::FileType::Directory {
                0
            } else {
                a.size
            };
            let mut out = size.to_le_bytes().to_vec();
            out.push(a.nlink as u8);
            out.push(match a.ftype {
                iron_vfs::FileType::Regular => 0,
                iron_vfs::FileType::Directory => 1,
                iron_vfs::FileType::Symlink => 2,
            });
            out
        }),
        Op::Readdir(p) => v.readdir(&path(*p)).map(|es| {
            let mut names: Vec<String> = es.into_iter().map(|e| e.name).collect();
            names.sort();
            names.join(",").into_bytes()
        }),
        Op::Sync => v.sync().map(|_| vec![]),
    }
}

fn run_differential(ops: &[Op], iron: IronConfig, crash_and_recover: bool) {
    let params = Ext3Params {
        mirror_metadata: iron.meta_replication,
        ..Ext3Params::small()
    };
    let dev = MemDisk::for_tests(4096);
    let opts = Ext3Options::with_iron(iron);
    let fs = Ext3Fs::format_and_mount(dev, FsEnv::new(), params, opts.clone()).unwrap();
    let mut ext3 = Vfs::new(fs);
    let mut ram = Vfs::new(RamFs::new());

    for op in ops {
        let a = apply(&mut ext3, op);
        let b = apply(&mut ram, op);
        match (&a, &b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "divergent success on {op:?}"),
            (Err(x), Err(y)) => assert_eq!(
                x.errno(),
                y.errno(),
                "divergent errno on {op:?}: ext3={x:?} ram={y:?}"
            ),
            _ => panic!("divergence on {op:?}: ext3={a:?} ram={b:?}"),
        }
    }

    ext3.sync().unwrap();
    let mut fs = ext3.into_fs();
    let layout = *fs.layout();

    if crash_and_recover {
        // Crash (drop in-memory state), recover, and re-verify every file.
        let dev = fs.into_device();
        let fs2 = Ext3Fs::mount(dev, FsEnv::new(), opts).expect("recovery mount");
        let mut ext3 = Vfs::new(fs2);
        for n in 0..12u8 {
            let p = path(n);
            let a = ext3.read_file(&p);
            let b = ram.read_file(&p);
            match (&a, &b) {
                (Ok(x), Ok(y)) => assert_eq!(x, y, "post-recovery divergence at {p}"),
                (Err(x), Err(y)) => assert_eq!(x.errno(), y.errno(), "post-recovery errno at {p}"),
                _ => panic!("post-recovery divergence at {p}: {a:?} vs {b:?}"),
            }
        }
        fs = ext3.into_fs();
    }

    let dev = fs.into_device();
    let report = fsck::check(&dev, &layout);
    assert!(report.is_clean(), "fsck issues: {:?}", report.issues);
}

#[test]
fn ext3_matches_reference() {
    check(
        "ext3_matches_reference",
        Config::cases(24),
        &ops_gen(60),
        |ops| run_differential(ops, IronConfig::off(), false),
    );
}

#[test]
fn full_ixt3_matches_reference() {
    check(
        "full_ixt3_matches_reference",
        Config::cases(24),
        &ops_gen(40),
        |ops| run_differential(ops, IronConfig::full(), false),
    );
}

#[test]
fn ext3_consistent_after_crash_recovery() {
    check(
        "ext3_consistent_after_crash_recovery",
        Config::cases(24),
        &ops_gen(40),
        |ops| run_differential(ops, IronConfig::off(), true),
    );
}

/// Regression re-encoded from the retired
/// `ext3_proptest.proptest-regressions` file (proptest shrank it to
/// `ops = [Mkdir(60), Rename(132, 1), Stat(121)]`): renaming a directory
/// over a path and stat'ing the result must agree with the reference.
#[test]
fn regression_mkdir_rename_stat() {
    let ops = [Op::Mkdir(60), Op::Rename(132, 1), Op::Stat(121)];
    run_differential(&ops, IronConfig::off(), false);
    run_differential(&ops, IronConfig::full(), false);
    run_differential(&ops, IronConfig::off(), true);
}

/// Regression re-encoded from the retired
/// `ext3_proptest.proptest-regressions` file (proptest shrank it to
/// `ops = [Mkdir(255), Rename(183, 64)]`): renaming a fresh directory
/// into a nested path must agree with the reference.
#[test]
fn regression_mkdir_rename_nested() {
    let ops = [Op::Mkdir(255), Op::Rename(183, 64)];
    run_differential(&ops, IronConfig::off(), false);
    run_differential(&ops, IronConfig::full(), false);
    run_differential(&ops, IronConfig::off(), true);
}

//! Property-based differential testing: arbitrary operation sequences are
//! applied both to the ext3 model and to the in-memory reference
//! (`RamFs`); every observable result must agree, and the ext3 image must
//! pass `fsck` afterwards — on a healthy disk *and* across a
//! crash-and-recover cycle.

use iron_blockdev::MemDisk;
use iron_core::Errno;
use iron_ext3::{fsck, Ext3Fs, Ext3Options, Ext3Params, IronConfig};
use iron_vfs::{ramfs::RamFs, FsEnv, SpecificFs, Vfs, VfsError};
use proptest::prelude::*;

/// A file-system operation over a small namespace.
#[derive(Clone, Debug)]
enum Op {
    Create(u8),
    Mkdir(u8),
    Write(u8, u16, Vec<u8>),
    Truncate(u8, u16),
    Read(u8),
    Unlink(u8),
    Rmdir(u8),
    Rename(u8, u8),
    Link(u8, u8),
    Symlink(u8, u8),
    Stat(u8),
    Readdir(u8),
    Sync,
}

fn path(n: u8) -> String {
    // A small namespace mixing root-level and nested names.
    match n % 12 {
        0 => "/a".into(),
        1 => "/b".into(),
        2 => "/c".into(),
        3 => "/dir".into(),
        4 => "/dir/x".into(),
        5 => "/dir/y".into(),
        6 => "/dir/sub".into(),
        7 => "/dir/sub/z".into(),
        8 => "/f1".into(),
        9 => "/f2".into(),
        10 => "/dir/f3".into(),
        _ => "/dir/sub/f4".into(),
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::Create),
        any::<u8>().prop_map(Op::Mkdir),
        (any::<u8>(), any::<u16>(), prop::collection::vec(any::<u8>(), 0..2048))
            .prop_map(|(p, o, d)| Op::Write(p, o % 8192, d)),
        (any::<u8>(), any::<u16>()).prop_map(|(p, s)| Op::Truncate(p, s % 8192)),
        any::<u8>().prop_map(Op::Read),
        any::<u8>().prop_map(Op::Unlink),
        any::<u8>().prop_map(Op::Rmdir),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Rename(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Link(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Symlink(a, b)),
        any::<u8>().prop_map(Op::Stat),
        any::<u8>().prop_map(Op::Readdir),
        Just(Op::Sync),
    ]
}

/// Normalize errors for comparison: both sides must agree on success, and
/// on the errno when both fail.
fn norm(r: Result<(), VfsError>) -> Result<(), Option<Errno>> {
    r.map_err(|e| e.errno())
}

fn apply<F: SpecificFs>(v: &mut Vfs<F>, op: &Op) -> Result<Vec<u8>, VfsError> {
    match op {
        Op::Create(p) => v.creat(&path(*p)).and_then(|fd| v.close(fd)).map(|_| vec![]),
        Op::Mkdir(p) => v.mkdir(&path(*p), 0o755).map(|_| vec![]),
        Op::Write(p, off, data) => {
            let fd = v.open(&path(*p), iron_vfs::OpenFlags::rdwr())?;
            let r = v.pwrite(fd, *off as u64, data);
            v.close(fd)?;
            r.map(|n| n.to_le_bytes().to_vec())
        }
        Op::Truncate(p, s) => v.truncate(&path(*p), *s as u64).map(|_| vec![]),
        Op::Read(p) => v.read_file(&path(*p)),
        Op::Unlink(p) => v.unlink(&path(*p)).map(|_| vec![]),
        Op::Rmdir(p) => v.rmdir(&path(*p)).map(|_| vec![]),
        Op::Rename(a, b) => v.rename(&path(*a), &path(*b)).map(|_| vec![]),
        Op::Link(a, b) => v.link(&path(*a), &path(*b)).map(|_| vec![]),
        Op::Symlink(a, b) => v.symlink(&path(*a), &path(*b)).map(|_| vec![]),
        Op::Stat(p) => v.stat(&path(*p)).map(|a| {
            // Directory sizes are representation-specific (ext3 counts
            // blocks, the reference counts nothing): compare 0 for dirs.
            let size = if a.ftype == iron_vfs::FileType::Directory {
                0
            } else {
                a.size
            };
            let mut out = size.to_le_bytes().to_vec();
            out.push(a.nlink as u8);
            out.push(match a.ftype {
                iron_vfs::FileType::Regular => 0,
                iron_vfs::FileType::Directory => 1,
                iron_vfs::FileType::Symlink => 2,
            });
            out
        }),
        Op::Readdir(p) => v.readdir(&path(*p)).map(|es| {
            let mut names: Vec<String> = es.into_iter().map(|e| e.name).collect();
            names.sort();
            names.join(",").into_bytes()
        }),
        Op::Sync => v.sync().map(|_| vec![]),
    }
}

fn run_differential(ops: &[Op], iron: IronConfig, crash_and_recover: bool) {
    let params = Ext3Params {
        mirror_metadata: iron.meta_replication,
        ..Ext3Params::small()
    };
    let dev = MemDisk::for_tests(4096);
    let opts = Ext3Options::with_iron(iron);
    let fs = Ext3Fs::format_and_mount(dev, FsEnv::new(), params, opts.clone()).unwrap();
    let mut ext3 = Vfs::new(fs);
    let mut ram = Vfs::new(RamFs::new());

    for op in ops {
        let a = apply(&mut ext3, op);
        let b = apply(&mut ram, op);
        match (&a, &b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "divergent success on {op:?}"),
            (Err(x), Err(y)) => assert_eq!(
                x.errno(),
                y.errno(),
                "divergent errno on {op:?}: ext3={x:?} ram={y:?}"
            ),
            _ => panic!("divergence on {op:?}: ext3={a:?} ram={b:?}"),
        }
        let _ = norm(Ok(()));
    }

    ext3.sync().unwrap();
    let mut fs = ext3.into_fs();
    let layout = *fs.layout();

    if crash_and_recover {
        // Crash (drop in-memory state), recover, and re-verify every file.
        let dev = fs.into_device();
        let fs2 = Ext3Fs::mount(dev, FsEnv::new(), opts).expect("recovery mount");
        let mut ext3 = Vfs::new(fs2);
        for n in 0..12u8 {
            let p = path(n);
            let a = ext3.read_file(&p);
            let b = ram.read_file(&p);
            match (&a, &b) {
                (Ok(x), Ok(y)) => assert_eq!(x, y, "post-recovery divergence at {p}"),
                (Err(x), Err(y)) => assert_eq!(x.errno(), y.errno(), "post-recovery errno at {p}"),
                _ => panic!("post-recovery divergence at {p}: {a:?} vs {b:?}"),
            }
        }
        fs = ext3.into_fs();
    }

    let dev = fs.into_device();
    let report = fsck::check(&dev, &layout);
    assert!(report.is_clean(), "fsck issues: {:?}", report.issues);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    #[test]
    fn ext3_matches_reference(ops in prop::collection::vec(op_strategy(), 1..60)) {
        run_differential(&ops, IronConfig::off(), false);
    }

    #[test]
    fn full_ixt3_matches_reference(ops in prop::collection::vec(op_strategy(), 1..40)) {
        run_differential(&ops, IronConfig::full(), false);
    }

    #[test]
    fn ext3_consistent_after_crash_recovery(ops in prop::collection::vec(op_strategy(), 1..40)) {
        run_differential(&ops, IronConfig::off(), true);
    }
}

//! Crash-consistency property tests: whatever state a crash leaves the
//! journal in — including a corrupted log — the file system must mount
//! (or refuse cleanly), and the recovered image must pass fsck. With
//! transactional checksums, a corrupted committed transaction must never
//! be replayed.
//!
//! Runs on the in-tree `iron-testkit` harness: a failure prints its case
//! seed and reruns deterministically with
//! `IRON_TESTKIT_SEED=<seed> cargo test -q <test_name>`.

use iron_blockdev::{MemDisk, RawAccess};
use iron_core::{Block, BlockAddr};
use iron_ext3::journal::classify_log_block;
use iron_ext3::{fsck, Ext3Fs, Ext3Options, Ext3Params, IronConfig};
use iron_testkit::gen;
use iron_testkit::prop::{check, Config};
use iron_vfs::{FsEnv, Vfs};

/// Build a crashed image: `n_txns` committed-but-unflushed transactions.
fn crashed_image(n_txns: usize, tc: bool) -> (MemDisk, iron_ext3::DiskLayout) {
    let params = Ext3Params::small();
    let mut dev = MemDisk::for_tests(4096);
    Ext3Fs::<MemDisk>::mkfs(&mut dev, params).unwrap();
    let iron = IronConfig {
        txn_checksum: tc,
        ..IronConfig::off()
    };
    let opts = Ext3Options {
        iron,
        crash_mode: true,
        ..Default::default()
    };
    let fs = Ext3Fs::mount(dev, FsEnv::new(), opts).unwrap();
    let layout = *fs.layout();
    let mut v = Vfs::new(fs);
    for i in 0..n_txns {
        v.mkdir(&format!("/t{i}"), 0o755).unwrap();
        v.write_file(&format!("/t{i}/f"), &vec![i as u8; 2000])
            .unwrap();
        v.sync().unwrap();
    }
    (v.into_fs().into_device(), layout)
}

/// Corrupt an arbitrary byte of an arbitrary journal block, then recover.
/// The mount may succeed or refuse — but it must never leave a
/// structurally inconsistent image behind, and with `Tc`, never replay a
/// damaged transaction.
fn corrupted_journal_case(txns: usize, tc: bool, victim_off: usize, bits: u8) {
    let (mut dev, layout) = crashed_image(txns, tc);
    // Pick the first non-empty journal block to corrupt.
    let mut target = None;
    for a in layout.journal_start..layout.journal_start + layout.journal_len {
        if !dev.peek(BlockAddr(a)).is_zeroed() {
            target = Some(a);
            break;
        }
    }
    let target = target.expect("journal has content");
    let mut b = dev.peek(BlockAddr(target));
    b[victim_off] ^= bits;
    dev.poke(BlockAddr(target), &b);

    let iron = IronConfig {
        txn_checksum: tc,
        ..IronConfig::off()
    };
    let env = FsEnv::new();
    match Ext3Fs::mount(dev, env.clone(), Ext3Options::with_iron(iron)) {
        Ok(fs) => {
            let l = *fs.layout();
            let dev = fs.into_device();
            if tc {
                // With Tc the replayed subset must be fully consistent.
                let report = fsck::check(&dev, &l);
                assert!(
                    report.is_clean(),
                    "tc image must be consistent: {:?}",
                    report.issues
                );
            }
            // Without Tc the paper's point is precisely that replaying
            // garbage *can* corrupt the image — no cleanliness claim.
        }
        Err(_) => {
            // A refused mount is a legitimate (safe) outcome.
        }
    }
}

#[test]
fn recovery_with_corrupted_journal_is_safe() {
    let inputs = (
        gen::usize_in(1..4),
        gen::bool_any(),
        gen::usize_in(0..4096),
        gen::u8_in(1..255),
    );
    check(
        "recovery_with_corrupted_journal_is_safe",
        Config::cases(32),
        &inputs,
        |&(txns, tc, victim_off, bits)| corrupted_journal_case(txns, tc, victim_off, bits),
    );
}

/// Regression re-encoded from the retired
/// `crash_consistency.proptest-regressions` file (proptest shrank it to
/// `txns = 2, tc = true, victim_off = 8, bits = 2`): a two-bit flip early
/// in the first journal block, with transactional checksums on, must
/// still recover to a structurally consistent image.
#[test]
fn regression_corrupted_journal_txns2_tc_off8_bits2() {
    corrupted_journal_case(2, true, 8, 2);
}

/// An uncorrupted crash must always recover to a clean image where every
/// committed transaction is visible — with or without Tc.
#[test]
fn recovery_without_corruption_restores_everything() {
    let inputs = (gen::usize_in(1..4), gen::bool_any());
    check(
        "recovery_without_corruption_restores_everything",
        Config::cases(32),
        &inputs,
        |&(txns, tc)| {
            let (dev, layout) = crashed_image(txns, tc);
            let iron = IronConfig {
                txn_checksum: tc,
                ..IronConfig::off()
            };
            let fs = Ext3Fs::mount(dev, FsEnv::new(), Ext3Options::with_iron(iron)).unwrap();
            let mut v = Vfs::new(fs);
            for i in 0..txns {
                assert_eq!(
                    v.read_file(&format!("/t{i}/f")).unwrap(),
                    vec![i as u8; 2000],
                    "transaction {i} must be recovered"
                );
            }
            let fs = v.into_fs();
            let dev = fs.into_device();
            let report = fsck::check(&dev, &layout);
            assert!(report.is_clean(), "{:?}", report.issues);
        },
    );
}

/// Deterministic companion: corrupting a *journal-data* block (never the
/// control blocks) flips the outcome exactly as the paper says — ext3
/// replays it, Tc rejects it.
#[test]
fn tc_rejects_exactly_the_damaged_transaction() {
    for tc in [false, true] {
        let (mut dev, layout) = crashed_image(2, tc);
        // Corrupt the LAST journal data block (skip control blocks): both
        // transactions journal many of the same metadata blocks, so an
        // early corrupted copy would be healed by the later transaction's
        // replay — the last copy is the one that sticks.
        let mut corrupted = None;
        for a in layout.journal_start..layout.journal_start + layout.journal_len {
            let b = dev.peek(BlockAddr(a));
            if !b.is_zeroed() && classify_log_block(&b).is_none() {
                corrupted = Some(a);
            }
        }
        let victim = corrupted.expect("journal data present");
        dev.poke(BlockAddr(victim), &Block::filled(0xAD));
        let iron = IronConfig {
            txn_checksum: tc,
            ..IronConfig::off()
        };
        let env = FsEnv::new();
        let fs = Ext3Fs::mount(dev, env.clone(), Ext3Options::with_iron(iron)).unwrap();
        if tc {
            assert!(
                env.klog.contains("transactional checksum mismatch"),
                "Tc must flag the damaged transaction"
            );
            // Recovery stopped before the damaged (last) transaction; the
            // replayed prefix is structurally sound.
            let l = *fs.layout();
            let dev = fs.into_device();
            assert!(fsck::check(&dev, &l).is_clean());
        } else {
            // Stock ext3 replayed garbage: the 0xAD block landed somewhere.
            let l = *fs.layout();
            let dev = fs.into_device();
            let poisoned = (0..l.fs_blocks).any(|a| {
                dev.peek(BlockAddr(a)) == Block::filled(0xAD) && a < l.journal_start
                    || dev.peek(BlockAddr(a)) == Block::filled(0xAD) && a >= l.groups_start
            });
            assert!(poisoned, "stock replay must have written the garbage home");
        }
    }
}

//! Tests of the `Rm` extension: write-failure remapping (`RRemap`,
//! Table 2) — the recovery level the paper describes but no studied
//! system implements.

use iron_blockdev::MemDisk;
use iron_core::{BlockAddr, BlockTag, FaultKind};
use iron_ext3::{fsck, Ext3Fs, Ext3Options, Ext3Params, IronConfig};
use iron_faultinject::{FaultController, FaultSpec, FaultTarget, FaultyDisk};
use iron_vfs::{FsEnv, MountState, Vfs};

type Fs = Ext3Fs<FaultyDisk<MemDisk>>;

fn mount_rm() -> (Vfs<Fs>, FaultController, FsEnv) {
    let iron = IronConfig {
        fix_bugs: true,
        remap_writes: true,
        ..IronConfig::off()
    };
    let mut md = MemDisk::for_tests(4096);
    Ext3Fs::<MemDisk>::mkfs(&mut md, Ext3Params::small()).unwrap();
    let faulty = FaultyDisk::new(md);
    let ctl = faulty.controller();
    let env = FsEnv::new();
    let fs = Ext3Fs::mount(faulty, env.clone(), Ext3Options::with_iron(iron)).unwrap();
    (Vfs::new(fs), ctl, env)
}

#[test]
fn failed_data_write_is_remapped_not_aborted() {
    let (mut v, ctl, env) = mount_rm();
    // Fail the first data-block write, sticky on that block.
    ctl.inject(FaultSpec::sticky(
        FaultKind::WriteError,
        FaultTarget::TagNth {
            tag: BlockTag("data"),
            nth: 0,
        },
    ));
    let data: Vec<u8> = (0..20_000u32).map(|i| (i % 233) as u8).collect();
    v.write_file("/f", &data).unwrap();
    v.sync().unwrap();
    assert!(env.klog.contains("remapped to"), "RRemap must be logged");
    assert_eq!(env.state(), MountState::ReadWrite, "no RStop needed");
    // The content is intact — served from the remapped block even after a
    // cold remount.
    v.umount().unwrap();
    let dev = v.into_fs().into_device();
    let fs = Ext3Fs::mount(
        dev,
        FsEnv::new(),
        Ext3Options::with_iron(IronConfig {
            fix_bugs: true,
            remap_writes: true,
            ..IronConfig::off()
        }),
    )
    .unwrap();
    let mut v = Vfs::new(fs);
    assert_eq!(v.read_file("/f").unwrap(), data);
}

#[test]
fn remapped_image_stays_consistent() {
    let (mut v, ctl, _env) = mount_rm();
    ctl.inject(FaultSpec::sticky(
        FaultKind::WriteError,
        FaultTarget::TagNth {
            tag: BlockTag("data"),
            nth: 2,
        },
    ));
    for i in 0..6 {
        v.write_file(&format!("/f{i}"), &vec![i as u8; 12_000])
            .unwrap();
    }
    v.sync().unwrap();
    v.umount().unwrap();
    let fs = v.into_fs();
    let layout = *fs.layout();
    let dev = fs.into_device();
    // The old (unwritable) block was freed; the map and bitmaps agree.
    let report = fsck::check(&dev, &layout);
    assert!(report.is_clean(), "fsck: {:?}", report.issues);
}

#[test]
fn without_rm_the_same_fault_aborts() {
    // Control: same fault, fixed engine without remapping → EIO + RStop.
    let iron = IronConfig {
        fix_bugs: true,
        ..IronConfig::off()
    };
    let mut md = MemDisk::for_tests(4096);
    Ext3Fs::<MemDisk>::mkfs(&mut md, Ext3Params::small()).unwrap();
    let faulty = FaultyDisk::new(md);
    let ctl = faulty.controller();
    let env = FsEnv::new();
    let fs = Ext3Fs::mount(faulty, env.clone(), Ext3Options::with_iron(iron)).unwrap();
    let mut v = Vfs::new(fs);
    ctl.inject(FaultSpec::sticky(
        FaultKind::WriteError,
        FaultTarget::TagNth {
            tag: BlockTag("data"),
            nth: 0,
        },
    ));
    assert!(v.write_file("/f", &vec![1u8; 8_000]).is_err());
    assert_eq!(env.state(), MountState::ReadOnly);
}

#[test]
fn remap_composes_with_full_ixt3() {
    let iron = IronConfig {
        remap_writes: true,
        ..IronConfig::full()
    };
    assert_eq!(iron.label(), "Mc Mr Dc Dp Tc Rm");
    let params = Ext3Params {
        mirror_metadata: true,
        ..Ext3Params::small()
    };
    let mut md = MemDisk::for_tests(4096);
    Ext3Fs::<MemDisk>::mkfs(&mut md, params).unwrap();
    let faulty = FaultyDisk::new(md);
    let ctl = faulty.controller();
    let env = FsEnv::new();
    let fs = Ext3Fs::mount(faulty, env.clone(), Ext3Options::with_iron(iron)).unwrap();
    let mut v = Vfs::new(fs);
    ctl.inject(FaultSpec::sticky(
        FaultKind::WriteError,
        FaultTarget::TagNth {
            tag: BlockTag("data"),
            nth: 1,
        },
    ));
    let data: Vec<u8> = (0..30_000u32).map(|i| (i % 199) as u8).collect();
    v.write_file("/f", &data).unwrap();
    v.sync().unwrap();
    assert_eq!(v.read_file("/f").unwrap(), data);
    // Parity still reconstructs after the remap: lose a different block.
    let blocks = v.fs_mut().blocks_of(3).unwrap();
    ctl.inject(FaultSpec::sticky(
        FaultKind::ReadError,
        FaultTarget::Addr(BlockAddr(blocks[0])),
    ));
    v.umount().unwrap();
    let dev = v.into_fs().into_device();
    let fs = Ext3Fs::mount(dev, FsEnv::new(), Ext3Options::with_iron(iron)).unwrap();
    let mut v = Vfs::new(fs);
    assert_eq!(v.read_file("/f").unwrap(), data, "parity + remap compose");
}

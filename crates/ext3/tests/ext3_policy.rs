//! Failure-policy tests for *stock* ext3 under injected faults — each test
//! pins one behavior §5.1 of the paper reports, including the `PAPER-BUG`s.

use iron_blockdev::{MemDisk, RawAccess};
use iron_core::model::CorruptionStyle;
use iron_core::{Block, BlockAddr, BlockTag, Errno, FaultKind, IoKind};
use iron_ext3::{Ext3Fs, Ext3Options, Ext3Params, IronConfig};
use iron_faultinject::{FaultController, FaultSpec, FaultTarget, FaultyDisk};
use iron_vfs::{FsEnv, MountState, Vfs};

type Fs = Ext3Fs<FaultyDisk<MemDisk>>;

/// mkfs a MemDisk, wrap it in a FaultyDisk, mount stock ext3 over it.
fn mount_stock() -> (Vfs<Fs>, FaultController, FsEnv) {
    mount_with(Ext3Options::default())
}

fn mount_with(opts: Ext3Options) -> (Vfs<Fs>, FaultController, FsEnv) {
    let mut md = MemDisk::for_tests(4096);
    Ext3Fs::<MemDisk>::mkfs(&mut md, Ext3Params::small()).expect("mkfs");
    let faulty = FaultyDisk::new(md);
    let ctl = faulty.controller();
    let env = FsEnv::new();
    let fs = Ext3Fs::mount(faulty, env.clone(), opts).expect("mount");
    (Vfs::new(fs), ctl, env)
}

#[test]
fn metadata_read_failure_propagates_and_stops() {
    let (mut v, ctl, env) = mount_stock();
    v.write_file("/f", b"data").unwrap();
    v.sync().unwrap();
    // Fail the next inode-table read (type-aware).
    ctl.inject(FaultSpec::sticky(
        FaultKind::ReadError,
        FaultTarget::Tag(BlockTag("inode")),
    ));
    // Force a cold read by using a fresh mount (cache is per-mount).
    let dev = v.into_fs().into_device();
    let env2 = FsEnv::new();
    let fs = Ext3Fs::mount(dev, env2.clone(), Ext3Options::default()).unwrap();
    let mut v = Vfs::new(fs);
    let err = v.stat("/f").unwrap_err();
    assert_eq!(err.errno(), Some(Errno::EIO), "RPropagate");
    assert_eq!(
        env2.state(),
        MountState::ReadOnly,
        "RStop: read-only remount"
    );
    assert!(env2.klog.contains("ext3_abort"));
    drop(env);
}

#[test]
fn data_read_failure_propagates_without_stop_and_retries_once() {
    let (mut v, ctl, env) = mount_stock();
    v.write_file("/f", &vec![9u8; 4096]).unwrap();
    v.sync().unwrap();
    let addr = {
        let fs = v.fs_mut();
        let ino = 3; // first allocated inode after root
        fs.blocks_of(ino).unwrap()[0]
    };
    // Invalidate the cache by remounting.
    let dev = v.into_fs().into_device();
    let trace = dev.trace();
    let fs = Ext3Fs::mount(dev, env.clone(), Ext3Options::default()).unwrap();
    let mut v = Vfs::new(fs);
    ctl.inject(FaultSpec::sticky(
        FaultKind::ReadError,
        FaultTarget::Addr(BlockAddr(addr)),
    ));
    let mark = trace.len();
    let err = v.read_file("/f").unwrap_err();
    assert_eq!(err.errno(), Some(Errno::EIO), "RPropagate");
    assert_eq!(
        env.state(),
        MountState::ReadWrite,
        "no RStop for data reads"
    );
    // RRetry: the originally requested block was read exactly twice.
    let attempts = trace
        .since(mark)
        .iter()
        .filter(|e| e.addr == BlockAddr(addr) && e.kind == IoKind::Read)
        .count();
    assert_eq!(attempts, 2, "one retry of the original block");
}

#[test]
fn transient_data_read_failure_is_hidden_by_retry() {
    let (mut v, ctl, env) = mount_stock();
    v.write_file("/f", b"transient").unwrap();
    v.sync().unwrap();
    let addr = v.fs_mut().blocks_of(3).unwrap()[0];
    let dev = v.into_fs().into_device();
    let fs = Ext3Fs::mount(dev, env, Ext3Options::default()).unwrap();
    let mut v = Vfs::new(fs);
    ctl.inject(FaultSpec::transient(
        FaultKind::ReadError,
        FaultTarget::Addr(BlockAddr(addr)),
        1,
    ));
    assert_eq!(v.read_file("/f").unwrap(), b"transient", "retry recovers");
}

#[test]
fn data_write_failure_is_silently_ignored_paper_bug() {
    let (mut v, ctl, env) = mount_stock();
    ctl.inject(FaultSpec::sticky(
        FaultKind::WriteError,
        FaultTarget::Tag(BlockTag("data")),
    ));
    // PAPER-BUG: the write "succeeds" from the application's viewpoint.
    v.write_file("/f", b"goes nowhere").unwrap();
    assert_eq!(env.state(), MountState::ReadWrite);
    // The cache even hides the failure from subsequent reads…
    assert_eq!(v.read_file("/f").unwrap(), b"goes nowhere");
    // …but the medium never saw the data (a later cold read would return
    // garbage): verify via raw access that the block is still zeroed.
    v.sync().unwrap();
    let mut fs = v.into_fs();
    let addr = fs.blocks_of(3).unwrap()[0];
    assert!(fs.device().peek(BlockAddr(addr)).is_zeroed());
}

#[test]
fn fixed_engine_detects_data_write_failure() {
    let opts = Ext3Options::with_iron(IronConfig {
        fix_bugs: true,
        ..IronConfig::off()
    });
    let (mut v, ctl, env) = mount_with(opts);
    ctl.inject(FaultSpec::sticky(
        FaultKind::WriteError,
        FaultTarget::Tag(BlockTag("data")),
    ));
    let err = v.write_file("/f", b"checked").unwrap_err();
    assert_eq!(err.errno(), Some(Errno::EIO));
    assert_eq!(
        env.state(),
        MountState::ReadOnly,
        "RStop after write failure"
    );
}

#[test]
fn journal_write_failure_still_commits_paper_bug() {
    let (mut v, ctl, env) = mount_stock();
    ctl.inject(FaultSpec::sticky(
        FaultKind::WriteError,
        FaultTarget::Tag(BlockTag("j-data")),
    ));
    v.write_file("/f", b"x").unwrap();
    // PAPER-BUG: commit proceeds despite the journal-data write failure.
    v.sync().unwrap();
    assert!(env.klog.contains("journal write error ignored"));
    assert_eq!(env.state(), MountState::ReadWrite, "no RStop (the bug)");
}

#[test]
fn fixed_engine_aborts_on_journal_write_failure() {
    let opts = Ext3Options::with_iron(IronConfig {
        fix_bugs: true,
        ..IronConfig::off()
    });
    let (mut v, ctl, env) = mount_with(opts);
    ctl.inject(FaultSpec::sticky(
        FaultKind::WriteError,
        FaultTarget::Tag(BlockTag("j-data")),
    ));
    v.write_file("/f", b"x").unwrap();
    let err = v.sync().unwrap_err();
    assert_eq!(err.errno(), Some(Errno::EIO));
    assert_eq!(env.state(), MountState::ReadOnly);
}

#[test]
fn corrupted_superblock_fails_mount_despite_replicas_paper_bug() {
    let mut md = MemDisk::for_tests(4096);
    Ext3Fs::<MemDisk>::mkfs(&mut md, Ext3Params::small()).unwrap();
    // Corrupt the primary superblock. Replicas exist in every group, but
    // stock ext3 never reads them (PAPER-BUG).
    md.poke(BlockAddr(0), &Block::filled(0xAB));
    let env = FsEnv::new();
    let err = match Ext3Fs::mount(FaultyDisk::new(md), env.clone(), Ext3Options::default()) {
        Err(e) => e,
        Ok(_) => panic!("mount should have failed"),
    };
    assert_eq!(err.errno(), Some(Errno::EUCLEAN), "DSanity detected it");
    assert!(env.klog.contains("bad superblock magic"));
}

#[test]
fn superblock_read_error_fails_mount() {
    let mut md = MemDisk::for_tests(4096);
    Ext3Fs::<MemDisk>::mkfs(&mut md, Ext3Params::small()).unwrap();
    let faulty = FaultyDisk::new(md);
    faulty.controller().inject(FaultSpec::sticky(
        FaultKind::ReadError,
        FaultTarget::Addr(BlockAddr(0)),
    ));
    let err = match Ext3Fs::mount(faulty, FsEnv::new(), Ext3Options::default()) {
        Err(e) => e,
        Ok(_) => panic!("mount should have failed"),
    };
    assert_eq!(err.errno(), Some(Errno::EIO));
}

#[test]
fn corrupted_inode_size_detected_by_sanity_check() {
    let (mut v, _ctl, _env) = mount_stock();
    v.write_file("/f", b"ok").unwrap();
    v.sync().unwrap();
    // Corrupt the inode's size field on the medium to an absurd value.
    let (blk, off) = {
        let fs = v.fs_mut();
        fs.layout().inode_location(3)
    };
    v.umount().unwrap();
    let mut dev = v.into_fs().into_device();
    let mut b = dev.peek(blk);
    b.put_u64(off + 16, u64::MAX / 2); // size field
    dev.poke(blk, &b);
    let env = FsEnv::new();
    let fs = Ext3Fs::mount(dev, env.clone(), Ext3Options::default()).unwrap();
    let mut v = Vfs::new(fs);
    let err = v.stat("/f").unwrap_err();
    assert_eq!(err.errno(), Some(Errno::EUCLEAN), "DSanity + RPropagate");
    assert!(env.klog.contains("sanity check failed"));
}

#[test]
fn corrupted_linkcount_crashes_unlink_paper_bug() {
    let (mut v, _ctl, _env) = mount_stock();
    v.write_file("/victim", b"x").unwrap();
    v.sync().unwrap();
    // Corrupt links_count to zero on the medium.
    let (blk, off) = v.fs_mut().layout().inode_location(3);
    v.umount().unwrap();
    let mut dev = v.into_fs().into_device();
    let mut b = dev.peek(blk);
    b.put_u32(off + 12, 0); // links_count field
    dev.poke(blk, &b);
    let env = FsEnv::new();
    let fs = Ext3Fs::mount(dev, env.clone(), Ext3Options::default()).unwrap();
    let mut v = Vfs::new(fs);
    // PAPER-BUG: no links_count sanity check → simulated kernel crash.
    let err = v.unlink("/victim").unwrap_err();
    assert!(err.is_panic(), "expected kernel panic, got {err:?}");
    assert_eq!(env.state(), MountState::Crashed);
}

#[test]
fn fixed_engine_reports_corrupted_linkcount() {
    let opts = Ext3Options::with_iron(IronConfig {
        fix_bugs: true,
        ..IronConfig::off()
    });
    let (mut v, _ctl, _env) = mount_with(opts.clone());
    v.write_file("/victim", b"x").unwrap();
    v.sync().unwrap();
    let (blk, off) = v.fs_mut().layout().inode_location(3);
    v.umount().unwrap();
    let mut dev = v.into_fs().into_device();
    let mut b = dev.peek(blk);
    b.put_u32(off + 12, 0);
    dev.poke(blk, &b);
    let env = FsEnv::new();
    let fs = Ext3Fs::mount(dev, env.clone(), opts).unwrap();
    let mut v = Vfs::new(fs);
    let err = v.unlink("/victim").unwrap_err();
    assert_eq!(err.errno(), Some(Errno::EUCLEAN));
    assert_ne!(env.state(), MountState::Crashed);
}

#[test]
fn truncate_swallows_io_errors_paper_bug() {
    let (mut v, ctl, env) = mount_stock();
    // Big enough to need an indirect block.
    v.write_file("/big", &vec![3u8; 100_000]).unwrap();
    v.sync().unwrap();
    let ind = v.fs_mut().indirect_blocks_of(3).unwrap()[0];
    let dev = v.into_fs().into_device();
    let fs = Ext3Fs::mount(dev, env.clone(), Ext3Options::default()).unwrap();
    let mut v = Vfs::new(fs);
    ctl.inject(FaultSpec::sticky(
        FaultKind::ReadError,
        FaultTarget::Addr(BlockAddr(ind)),
    ));
    // PAPER-BUG: the indirect-block read fails but truncate returns Ok.
    v.truncate("/big", 0).unwrap();
}

#[test]
fn corrupted_directory_block_fails_silently() {
    let (mut v, ctl, env) = mount_stock();
    v.mkdir("/d", 0o755).unwrap();
    v.write_file("/d/a", b"1").unwrap();
    v.write_file("/d/b", b"2").unwrap();
    v.sync().unwrap();
    let dir_block = v.fs_mut().blocks_of(3).unwrap()[0]; // /d's dir block
    let dev = v.into_fs().into_device();
    let fs = Ext3Fs::mount(dev, env.clone(), Ext3Options::default()).unwrap();
    let mut v = Vfs::new(fs);
    // Silent corruption: garbage block returned on read.
    ctl.inject(FaultSpec::sticky(
        FaultKind::Corruption(CorruptionStyle::RandomNoise),
        FaultTarget::Addr(BlockAddr(dir_block)),
    ));
    // DZero: ext3 does no type checking for directories — the corrupt
    // block parses as empty, the files silently "disappear", no error, no
    // log entry, no remount.
    let mark = env.klog.len();
    let entries = v.readdir("/d").unwrap();
    assert!(entries.is_empty(), "garbage parses as no entries");
    assert_eq!(
        v.stat("/d/a").unwrap_err().errno(),
        Some(Errno::ENOENT),
        "file vanished without any error reported"
    );
    assert!(env.klog.since(mark).is_empty(), "nothing logged: DZero");
    assert_eq!(env.state(), MountState::ReadWrite);
}

#[test]
fn whole_disk_failure_behaves_fail_stop() {
    let (mut v, ctl, env) = mount_stock();
    v.write_file("/f", b"x").unwrap();
    v.sync().unwrap();
    ctl.inject(FaultSpec::sticky(
        FaultKind::WholeDisk,
        FaultTarget::Tag(BlockTag("inode")),
    ));
    let dev = v.into_fs().into_device();
    let env2 = FsEnv::new();
    let fs = Ext3Fs::mount(dev, env2.clone(), Ext3Options::default()).unwrap();
    let mut v = Vfs::new(fs);
    // The first inode read trips the whole-disk failure; everything after
    // that fails too — classic fail-stop.
    assert!(v.stat("/f").is_err());
    assert!(v.readdir("/").is_err());
    assert!(v.write_file("/g", b"x").is_err());
    drop(env);
}

//! Functional tests of the ext3 model on a healthy disk: POSIX semantics,
//! persistence across remounts, journal recovery after simulated crashes.

use iron_blockdev::MemDisk;
use iron_core::Errno;
use iron_ext3::fsck;
use iron_ext3::{Ext3Fs, Ext3Options, Ext3Params};
use iron_vfs::{FsEnv, OpenFlags, SpecificFs, Vfs};

fn fresh() -> Vfs<Ext3Fs<MemDisk>> {
    let dev = MemDisk::for_tests(4096);
    let fs = Ext3Fs::format_and_mount(
        dev,
        FsEnv::new(),
        Ext3Params::small(),
        Ext3Options::default(),
    )
    .expect("mount");
    Vfs::new(fs)
}

/// Unmount, then mount the same image again with fresh state.
fn remount(v: Vfs<Ext3Fs<MemDisk>>) -> Vfs<Ext3Fs<MemDisk>> {
    let mut fs = v.into_fs();
    fs.unmount().expect("unmount");
    let dev = fs.into_device();
    let fs = Ext3Fs::mount(dev, FsEnv::new(), Ext3Options::default()).expect("remount");
    Vfs::new(fs)
}

#[test]
fn mkfs_mount_empty_root() {
    let mut v = fresh();
    let entries = v.readdir("/").unwrap();
    let names: Vec<_> = entries.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, vec![".", ".."]);
    let st = v.statfs().unwrap();
    assert!(st.blocks_free > 2000);
    assert!(st.inodes_free > 1000);
}

#[test]
fn write_read_small_file() {
    let mut v = fresh();
    v.write_file("/hello.txt", b"iron file systems").unwrap();
    assert_eq!(v.read_file("/hello.txt").unwrap(), b"iron file systems");
    let attr = v.stat("/hello.txt").unwrap();
    assert_eq!(attr.size, 17);
}

#[test]
fn large_file_exercises_indirect_blocks() {
    let mut v = fresh();
    // > 12 direct blocks (48 KiB) to force single-indirect, ~300 KiB total.
    let data: Vec<u8> = (0..300_000u32).map(|i| (i % 251) as u8).collect();
    v.write_file("/big", &data).unwrap();
    assert_eq!(v.read_file("/big").unwrap(), data);
    let attr = v.stat("/big").unwrap();
    assert_eq!(attr.size, 300_000);
}

#[test]
fn very_large_file_exercises_double_indirect() {
    // 12 + 1024 blocks = ~4.2 MiB before double-indirect; write 5 MiB.
    let dev = MemDisk::for_tests(8192); // 32 MiB disk
    let params = Ext3Params {
        total_blocks: 8192,
        ..Ext3Params::small()
    };
    let fs = Ext3Fs::format_and_mount(dev, FsEnv::new(), params, Ext3Options::default()).unwrap();
    let mut v = Vfs::new(fs);
    let chunk = vec![0xA7u8; 1 << 20];
    let fd = v.creat("/huge").unwrap();
    for _ in 0..5 {
        v.write(fd, &chunk).unwrap();
    }
    v.close(fd).unwrap();
    let attr = v.stat("/huge").unwrap();
    assert_eq!(attr.size, 5 << 20);
    // Spot-check content at a double-indirect offset.
    let fd = v.open("/huge", OpenFlags::rdonly()).unwrap();
    let back = v.pread(fd, (4 << 20) + 123, 64).unwrap();
    assert_eq!(back, vec![0xA7u8; 64]);
}

#[test]
fn sparse_file_reads_zero_holes() {
    let mut v = fresh();
    let fd = v.creat("/sparse").unwrap();
    v.pwrite(fd, 100_000, b"tail").unwrap();
    v.close(fd).unwrap();
    let data = v.read_file("/sparse").unwrap();
    assert_eq!(data.len(), 100_004);
    assert!(data[..100_000].iter().all(|&b| b == 0));
    assert_eq!(&data[100_000..], b"tail");
}

#[test]
fn directories_nest_and_list() {
    let mut v = fresh();
    v.mkdir("/a", 0o755).unwrap();
    v.mkdir("/a/b", 0o755).unwrap();
    v.write_file("/a/b/f", b"x").unwrap();
    assert_eq!(v.read_file("/a/b/f").unwrap(), b"x");
    assert_eq!(v.readdir("/a/b").unwrap().len(), 3);
    assert_eq!(
        v.mkdir("/a", 0o755).unwrap_err().errno(),
        Some(Errno::EEXIST)
    );
}

#[test]
fn many_files_in_one_directory_span_blocks() {
    let mut v = fresh();
    v.mkdir("/dir", 0o755).unwrap();
    for i in 0..300 {
        v.write_file(&format!("/dir/file-with-a-long-name-{i:04}"), b"d")
            .unwrap();
    }
    assert_eq!(v.readdir("/dir").unwrap().len(), 302);
    // Spot-check lookups at both ends.
    assert!(v.stat("/dir/file-with-a-long-name-0000").is_ok());
    assert!(v.stat("/dir/file-with-a-long-name-0299").is_ok());
    // Delete them all; directory shrinks back.
    for i in 0..300 {
        v.unlink(&format!("/dir/file-with-a-long-name-{i:04}"))
            .unwrap();
    }
    assert_eq!(v.readdir("/dir").unwrap().len(), 2);
    v.rmdir("/dir").unwrap();
}

#[test]
fn unlink_frees_space() {
    let mut v = fresh();
    let before = v.statfs().unwrap().blocks_free;
    v.write_file("/f", &vec![1u8; 200_000]).unwrap();
    let during = v.statfs().unwrap().blocks_free;
    assert!(during < before);
    v.unlink("/f").unwrap();
    v.sync().unwrap();
    let after = v.statfs().unwrap().blocks_free;
    assert_eq!(after, before, "all blocks (incl. indirect) freed");
}

#[test]
fn hard_links_and_symlinks() {
    let mut v = fresh();
    v.write_file("/orig", b"shared").unwrap();
    v.link("/orig", "/hard").unwrap();
    assert_eq!(v.stat("/hard").unwrap().nlink, 2);
    v.unlink("/orig").unwrap();
    assert_eq!(v.read_file("/hard").unwrap(), b"shared");

    v.symlink("/hard", "/soft").unwrap();
    assert_eq!(v.read_file("/soft").unwrap(), b"shared");
    assert_eq!(v.readlink("/soft").unwrap(), "/hard");
}

#[test]
fn rename_moves_and_replaces() {
    let mut v = fresh();
    v.mkdir("/src", 0o755).unwrap();
    v.mkdir("/dst", 0o755).unwrap();
    v.write_file("/src/f", b"1").unwrap();
    v.write_file("/dst/f", b"2").unwrap();
    v.rename("/src/f", "/dst/f").unwrap();
    assert_eq!(v.read_file("/dst/f").unwrap(), b"1");
    assert!(v.stat("/src/f").is_err());
    // Directory rename across parents.
    v.mkdir("/src/sub", 0o755).unwrap();
    v.write_file("/src/sub/x", b"x").unwrap();
    v.rename("/src/sub", "/dst/sub").unwrap();
    assert_eq!(v.read_file("/dst/sub/x").unwrap(), b"x");
}

#[test]
fn truncate_shrink_extend() {
    let mut v = fresh();
    v.write_file("/t", &vec![7u8; 10_000]).unwrap();
    v.truncate("/t", 5_000).unwrap();
    assert_eq!(v.stat("/t").unwrap().size, 5_000);
    assert_eq!(v.read_file("/t").unwrap(), vec![7u8; 5_000]);
    v.truncate("/t", 8_000).unwrap();
    let data = v.read_file("/t").unwrap();
    assert_eq!(&data[..5_000], &vec![7u8; 5_000][..]);
    assert!(
        data[5_000..].iter().all(|&b| b == 0),
        "extension reads zeros"
    );
}

#[test]
fn persistence_across_remount() {
    let mut v = fresh();
    v.mkdir("/keep", 0o755).unwrap();
    v.write_file("/keep/data", &vec![0x5A; 60_000]).unwrap();
    v.chmod("/keep/data", 0o600).unwrap();
    v.chown("/keep/data", 42, 43).unwrap();
    let mut v = remount(v);
    assert_eq!(v.read_file("/keep/data").unwrap(), vec![0x5A; 60_000]);
    let attr = v.stat("/keep/data").unwrap();
    assert_eq!((attr.mode, attr.uid, attr.gid), (0o600, 42, 43));
}

#[test]
fn fsck_clean_after_workload() {
    let mut v = fresh();
    v.mkdir("/d", 0o755).unwrap();
    for i in 0..40 {
        v.write_file(&format!("/d/f{i}"), &vec![i as u8; 5000])
            .unwrap();
    }
    for i in (0..40).step_by(2) {
        v.unlink(&format!("/d/f{i}")).unwrap();
    }
    v.rename("/d/f1", "/d/renamed").unwrap();
    v.sync().unwrap();
    let fs = v.into_fs();
    let layout = *fs.layout();
    let dev = fs.into_device();
    let report = fsck::check(&dev, &layout);
    assert!(report.is_clean(), "fsck found: {:?}", report.issues);
}

#[test]
fn crash_before_checkpoint_recovers_via_journal() {
    // Mount in crash_mode: commits make the journal durable but never
    // checkpoint. After "crash", a normal mount must replay the journal and
    // recover the metadata.
    let dev = MemDisk::for_tests(4096);
    let opts = Ext3Options {
        crash_mode: true,
        ..Default::default()
    };
    let fs = Ext3Fs::format_and_mount(dev, FsEnv::new(), Ext3Params::small(), opts).unwrap();
    let mut v = Vfs::new(fs);
    v.mkdir("/survives", 0o755).unwrap();
    v.write_file("/survives/f", b"journaled").unwrap();
    v.sync().unwrap(); // commit (journal only, no checkpoint)

    // Simulated crash: take the device without unmounting.
    let dev = v.into_fs().into_device();
    let env = FsEnv::new();
    let fs = Ext3Fs::mount(dev, env.clone(), Ext3Options::default()).expect("recovery mount");
    assert!(env.klog.contains("replaying journal"));
    let mut v = Vfs::new(fs);
    assert_eq!(v.read_file("/survives/f").unwrap(), b"journaled");
    // And the recovered image is consistent.
    let fs = v.into_fs();
    let layout = *fs.layout();
    let dev = fs.into_device();
    assert!(fsck::check(&dev, &layout).is_clean());
}

#[test]
fn uncommitted_transaction_is_not_replayed() {
    // Changes staged but never committed must vanish after a crash.
    let dev = MemDisk::for_tests(4096);
    let opts = Ext3Options {
        commit_threshold: 10_000, // never auto-commit
        ..Default::default()
    };
    let fs = Ext3Fs::format_and_mount(dev, FsEnv::new(), Ext3Params::small(), opts).unwrap();
    let mut v = Vfs::new(fs);
    v.write_file("/committed", b"yes").unwrap();
    v.sync().unwrap();
    v.write_file("/lost", b"no").unwrap(); // staged only
    let dev = v.into_fs().into_device(); // crash
    let fs = Ext3Fs::mount(dev, FsEnv::new(), Ext3Options::default()).unwrap();
    let mut v = Vfs::new(fs);
    assert_eq!(v.read_file("/committed").unwrap(), b"yes");
    assert_eq!(v.stat("/lost").unwrap_err().errno(), Some(Errno::ENOENT));
}

#[test]
fn enospc_when_disk_fills() {
    let mut v = fresh();
    let mut i = 0;
    let err = loop {
        match v.write_file(&format!("/fill{i}"), &vec![0xFF; 1 << 20]) {
            Ok(()) => i += 1,
            Err(e) => break e,
        }
        assert!(i < 100, "disk should fill well before 100 MiB");
    };
    assert_eq!(err.errno(), Some(Errno::ENOSPC));
    // The file system is still usable afterwards.
    v.unlink("/fill0").unwrap();
    v.sync().unwrap();
    v.write_file("/after", b"ok").unwrap();
    assert_eq!(v.read_file("/after").unwrap(), b"ok");
}

#[test]
fn statfs_tracks_usage() {
    let mut v = fresh();
    let st0 = v.statfs().unwrap();
    v.write_file("/f", &vec![0u8; 40_960]).unwrap();
    v.sync().unwrap();
    let st1 = v.statfs().unwrap();
    assert_eq!(st0.blocks_free - st1.blocks_free, 10);
    assert_eq!(st0.inodes_free - st1.inodes_free, 1);
}

// ----------------------------------------------------------------------
// The full Figure 1 stack: ext3 over the write-back buffer cache.
// ----------------------------------------------------------------------

#[test]
fn cached_stack_round_trip() {
    use iron_blockdev::{BufferCache, CachePolicy, StackBuilder};

    let mut dev = StackBuilder::memdisk(4096)
        .with_cache(CachePolicy::write_back(64))
        .build();
    Ext3Fs::<BufferCache<MemDisk>>::mkfs(&mut dev, Ext3Params::small()).unwrap();
    let fs = Ext3Fs::mount(dev, FsEnv::new(), Ext3Options::default()).unwrap();
    let mut v = Vfs::new(fs);
    for i in 0..20u8 {
        v.write_file(&format!("/f{i}"), &vec![i; 5000]).unwrap();
    }
    v.sync().unwrap();
    v.umount().unwrap();

    // Unmount flushed everything; the raw medium alone must carry the data.
    let cache = v.into_fs().into_device();
    assert_eq!(cache.dirty_blocks(), 0, "unmount drains the cache");
    let md = cache.into_inner();
    let fs = Ext3Fs::mount(md, FsEnv::new(), Ext3Options::default()).unwrap();
    let mut v = Vfs::new(fs);
    for i in 0..20u8 {
        assert_eq!(v.read_file(&format!("/f{i}")).unwrap(), vec![i; 5000]);
    }
}

//! Serving-layer differential on ext3: a concurrent serve run must equal
//! its serial replay in commit order — identical responses, identical
//! namespace, and a bit-identical unmounted disk image — at 1/2/4/8
//! worker threads, on both a bare MemDisk and a full cached stack.

use iron_blockdev::{BufferCache, CachePolicy, MemDisk, StackBuilder};
use iron_ext3::{Ext3Fs, Ext3Options, Ext3Params};
use iron_serve::{assert_serial_equivalence, generate, memdisk_image, prepare, WorkloadSpec};
use iron_vfs::{FsEnv, Vfs};

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn mkfs_disk() -> MemDisk {
    let mut md = MemDisk::for_tests(4096);
    Ext3Fs::<MemDisk>::mkfs(&mut md, Ext3Params::small()).unwrap();
    md
}

fn mount_prepared(spec: &WorkloadSpec) -> Vfs<Ext3Fs<MemDisk>> {
    let fs = Ext3Fs::mount(mkfs_disk(), FsEnv::new(), Ext3Options::default()).unwrap();
    let mut v = Vfs::new(fs);
    prepare(&mut v, spec);
    v
}

fn mount_prepared_cached(spec: &WorkloadSpec) -> Vfs<Ext3Fs<BufferCache<MemDisk>>> {
    let dev = StackBuilder::new(mkfs_disk())
        .with_cache(CachePolicy::write_back(64))
        .build();
    let fs = Ext3Fs::mount(dev, FsEnv::new(), Ext3Options::default()).unwrap();
    let mut v = Vfs::new(fs);
    prepare(&mut v, spec);
    v
}

#[test]
fn ext3_serve_matches_serial_replay_bit_identically() {
    let spec = WorkloadSpec::default();
    let sessions = generate(&spec);
    assert_serial_equivalence(
        || mount_prepared(&spec),
        |v| Some(memdisk_image(&v.into_fs().into_device())),
        &sessions,
        &WIDTHS,
    );
}

#[test]
fn ext3_over_writeback_cache_serve_matches_serial_replay() {
    // The full stack: serve → VFS → ext3 → write-back cache → MemDisk.
    // Unmount destages everything, so the final raw medium must still be
    // bit-identical to the serial replay's.
    let spec = WorkloadSpec {
        sessions: 6,
        requests_per_session: 24,
        ..Default::default()
    };
    let sessions = generate(&spec);
    assert_serial_equivalence(
        || mount_prepared_cached(&spec),
        |v| {
            let cache = v.into_fs().into_device();
            assert_eq!(cache.dirty_blocks(), 0, "unmount must drain the cache");
            Some(memdisk_image(&cache.into_inner()))
        },
        &sessions,
        &WIDTHS,
    );
}

/// Stress lane (`cargo test -- --ignored`, CI's scheduled/opt-in job):
/// the same oracle at elevated thread and session counts, tunable via
/// `IRON_TEST_THREADS` / `IRON_STRESS_ITERS`.
#[test]
#[ignore = "stress lane; run with --ignored (IRON_TEST_THREADS, IRON_STRESS_ITERS)"]
fn ext3_serve_stress_differential() {
    let threads: usize = std::env::var("IRON_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let iters: usize = std::env::var("IRON_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    for round in 0..iters {
        let spec = WorkloadSpec {
            sessions: 2 * threads,
            requests_per_session: 64,
            seed: 0x57E5_5EED ^ (round as u64) << 32,
            ..Default::default()
        };
        let sessions = generate(&spec);
        assert_serial_equivalence(
            || mount_prepared(&spec),
            |v| Some(memdisk_image(&v.into_fs().into_device())),
            &sessions,
            &[1, threads],
        );
    }
}

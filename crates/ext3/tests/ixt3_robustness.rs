//! Robustness tests of the IRON mechanisms (§6.2): checksums detect
//! corruption, replicas and parity recover lost blocks, transactional
//! checksums protect journal replay.

use iron_blockdev::{MemDisk, RawAccess};
use iron_core::model::CorruptionStyle;
use iron_core::{Block, BlockAddr, BlockTag, Errno, FaultKind};
use iron_ext3::{Ext3Fs, Ext3Options, Ext3Params, IronConfig};
use iron_faultinject::{FaultController, FaultSpec, FaultTarget, FaultyDisk};
use iron_vfs::{FsEnv, MountState, Vfs};

type Fs = Ext3Fs<FaultyDisk<MemDisk>>;

fn mount_iron(iron: IronConfig) -> (Vfs<Fs>, FaultController, FsEnv) {
    let params = Ext3Params {
        mirror_metadata: iron.meta_replication,
        ..Ext3Params::small()
    };
    let mut md = MemDisk::for_tests(4096);
    Ext3Fs::<MemDisk>::mkfs(&mut md, params).expect("mkfs");
    let faulty = FaultyDisk::new(md);
    let ctl = faulty.controller();
    let env = FsEnv::new();
    let fs = Ext3Fs::mount(faulty, env.clone(), Ext3Options::with_iron(iron)).expect("mount");
    (Vfs::new(fs), ctl, env)
}

fn remount(v: Vfs<Fs>, iron: IronConfig) -> (Vfs<Fs>, FsEnv) {
    let mut v = v;
    v.umount().expect("umount");
    let dev = v.into_fs().into_device();
    let env = FsEnv::new();
    let fs = Ext3Fs::mount(dev, env.clone(), Ext3Options::with_iron(iron)).expect("remount");
    (Vfs::new(fs), env)
}

#[test]
fn meta_checksum_detects_silent_corruption() {
    let iron = IronConfig {
        meta_checksum: true,
        fix_bugs: true,
        ..IronConfig::off()
    };
    let (mut v, ctl, _env) = mount_iron(iron);
    v.write_file("/f", b"guarded").unwrap();
    v.sync().unwrap();
    let (v2, env) = remount(v, iron);
    let mut v = v2;
    // Silently corrupt the next inode-table read with a *plausible* block —
    // a misdirected write of another valid-looking block. Plain sanity
    // checks cannot catch this (§5.6); checksums do.
    ctl.inject(FaultSpec::sticky(
        FaultKind::Corruption(CorruptionStyle::BitFlip { offset: 40, len: 4 }),
        FaultTarget::Tag(BlockTag("inode")),
    ));
    let err = v.stat("/f").unwrap_err();
    assert_eq!(
        err.errno(),
        Some(Errno::EIO),
        "DRedundancy detected, no replica"
    );
    assert!(env.klog.contains("checksum mismatch"));
}

#[test]
fn meta_replication_recovers_read_failure() {
    let iron = IronConfig {
        meta_replication: true,
        fix_bugs: true,
        ..IronConfig::off()
    };
    let (mut v, ctl, _env) = mount_iron(iron);
    v.mkdir("/d", 0o755).unwrap();
    v.write_file("/d/f", b"replicated").unwrap();
    v.sync().unwrap();
    let (mut v, env) = remount(v, iron);
    // Every inode read fails at the primary location.
    ctl.inject(FaultSpec::sticky(
        FaultKind::ReadError,
        FaultTarget::Tag(BlockTag("inode")),
    ));
    assert_eq!(
        v.read_file("/d/f").unwrap(),
        b"replicated",
        "RRedundancy: replica served the read"
    );
    assert!(env.klog.contains("recovered from replica"));
    assert_eq!(env.state(), MountState::ReadWrite, "no RStop needed");
}

#[test]
fn meta_checksum_plus_replication_recovers_corruption() {
    let iron = IronConfig {
        meta_checksum: true,
        meta_replication: true,
        fix_bugs: true,
        ..IronConfig::off()
    };
    let (mut v, ctl, _env) = mount_iron(iron);
    v.mkdir("/d", 0o755).unwrap();
    v.write_file("/d/f", b"healed").unwrap();
    v.sync().unwrap();
    let (mut v, env) = remount(v, iron);
    // Corrupt primary dir reads silently; checksum detects, replica heals.
    ctl.inject(FaultSpec::sticky(
        FaultKind::Corruption(CorruptionStyle::RandomNoise),
        FaultTarget::Tag(BlockTag("dir")),
    ));
    assert_eq!(v.read_file("/d/f").unwrap(), b"healed");
    assert!(env.klog.contains("checksum mismatch"));
    assert!(env.klog.contains("recovered from replica"));
}

#[test]
fn data_checksum_detects_data_corruption() {
    let iron = IronConfig {
        data_checksum: true,
        fix_bugs: true,
        ..IronConfig::off()
    };
    let (mut v, ctl, _env) = mount_iron(iron);
    v.write_file("/f", &vec![0x42; 8192]).unwrap();
    v.sync().unwrap();
    let (mut v, env) = remount(v, iron);
    ctl.inject(FaultSpec::sticky(
        FaultKind::Corruption(CorruptionStyle::BitFlip {
            offset: 1000,
            len: 1,
        }),
        FaultTarget::Tag(BlockTag("data")),
    ));
    // Without Dp there is nothing to recover from: error propagates. The
    // crucial part is that the corruption did NOT reach the application.
    let err = v.read_file("/f").unwrap_err();
    assert_eq!(err.errno(), Some(Errno::EIO));
    assert!(env.klog.contains("checksum mismatch on data block"));
}

#[test]
fn parity_reconstructs_lost_data_block() {
    let iron = IronConfig {
        data_parity: true,
        fix_bugs: true,
        ..IronConfig::off()
    };
    let (mut v, ctl, _env) = mount_iron(iron);
    let data: Vec<u8> = (0..20_000u32).map(|i| (i * 7 % 256) as u8).collect();
    v.write_file("/f", &data).unwrap();
    v.sync().unwrap();
    let failed = v.fs_mut().blocks_of(3).unwrap()[2];
    let (mut v, env) = remount(v, iron);
    ctl.inject(FaultSpec::sticky(
        FaultKind::ReadError,
        FaultTarget::Addr(BlockAddr(failed)),
    ));
    assert_eq!(v.read_file("/f").unwrap(), data, "RRedundancy via parity");
    assert!(env.klog.contains("reconstructed from parity"));
}

#[test]
fn checksum_plus_parity_heals_data_corruption() {
    let iron = IronConfig {
        data_checksum: true,
        data_parity: true,
        fix_bugs: true,
        ..IronConfig::off()
    };
    let (mut v, ctl, _env) = mount_iron(iron);
    let data: Vec<u8> = (0..30_000u32).map(|i| (i % 253) as u8).collect();
    v.write_file("/f", &data).unwrap();
    v.sync().unwrap();
    let victim = v.fs_mut().blocks_of(3).unwrap()[4];
    let (mut v, env) = remount(v, iron);
    ctl.inject(FaultSpec::sticky(
        FaultKind::Corruption(CorruptionStyle::Zeroed),
        FaultTarget::Addr(BlockAddr(victim)),
    ));
    assert_eq!(v.read_file("/f").unwrap(), data);
    assert!(env.klog.contains("checksum mismatch on data block"));
    assert!(env.klog.contains("reconstructed from parity"));
}

#[test]
fn parity_tracks_overwrites_and_truncates() {
    let iron = IronConfig {
        data_parity: true,
        fix_bugs: true,
        ..IronConfig::off()
    };
    let (mut v, ctl, _env) = mount_iron(iron);
    v.write_file("/f", &vec![1u8; 12_000]).unwrap();
    // Overwrite the middle block, truncate to 1.5 blocks, then extend.
    let fd = v.open("/f", iron_vfs::OpenFlags::rdwr()).unwrap();
    v.pwrite(fd, 4096, &vec![9u8; 4096]).unwrap();
    v.close(fd).unwrap();
    v.truncate("/f", 6000).unwrap();
    v.sync().unwrap();
    let expected = {
        let mut e = vec![1u8; 6000];
        e[4096..6000].copy_from_slice(&vec![9u8; 6000 - 4096]);
        e
    };
    assert_eq!(v.read_file("/f").unwrap(), expected);
    // Lose block 0; parity must still reconstruct the current contents.
    let victim = v.fs_mut().blocks_of(3).unwrap()[0];
    let (mut v, _env) = remount(v, iron);
    ctl.inject(FaultSpec::sticky(
        FaultKind::ReadError,
        FaultTarget::Addr(BlockAddr(victim)),
    ));
    assert_eq!(v.read_file("/f").unwrap(), expected);
}

#[test]
fn transactional_checksum_rejects_corrupt_journal_replay() {
    // Crash with a committed-but-not-checkpointed transaction in the log,
    // then corrupt one journal data block. Stock ext3 replays the garbage;
    // Tc detects the mismatch and skips the transaction.
    for (tc, expect_corrupt_applied) in [(false, true), (true, false)] {
        let iron = IronConfig {
            txn_checksum: tc,
            ..IronConfig::off()
        };
        let params = Ext3Params::small();
        let mut md = MemDisk::for_tests(4096);
        Ext3Fs::<MemDisk>::mkfs(&mut md, params).unwrap();
        let faulty = FaultyDisk::new(md);
        let ctl = faulty.controller();
        let opts = Ext3Options {
            iron,
            crash_mode: true,
            ..Default::default()
        };
        let fs = Ext3Fs::mount(faulty, FsEnv::new(), opts).unwrap();
        let mut v = Vfs::new(fs);
        v.write_file("/f", b"will be in journal").unwrap();
        v.sync().unwrap(); // committed to journal; never checkpointed

        // "Crash", then corrupt a journal data block on the medium.
        let mut dev = v.into_fs().into_device();
        let layout = iron_ext3::DiskLayout::compute(params);
        // Find a journal-data block: scan the log for a block that is
        // neither a descriptor/commit/revoke (those carry magic).
        let mut jdata = None;
        for a in layout.journal_start..layout.journal_start + layout.journal_len {
            let b = dev.peek(BlockAddr(a));
            if !b.is_zeroed() && iron_ext3::journal::classify_log_block(&b).is_none() {
                jdata = Some(a);
                break;
            }
        }
        let jdata = jdata.expect("journal contains data blocks");
        dev.poke(BlockAddr(jdata), &Block::filled(0xEE));

        let env = FsEnv::new();
        let fs = Ext3Fs::mount(dev, env.clone(), Ext3Options::with_iron(iron)).unwrap();
        let applied_garbage = {
            // Did any home block end up as 0xEE garbage?
            let dev = fs.into_device();
            (0..4096u64).any(|a| {
                dev.peek(BlockAddr(a)) == Block::filled(0xEE) && a < layout.journal_start
                    || dev.peek(BlockAddr(a)) == Block::filled(0xEE) && a >= layout.groups_start
            })
        };
        assert_eq!(
            applied_garbage, expect_corrupt_applied,
            "tc={tc}: garbage replay mismatch"
        );
        if tc {
            assert!(env.klog.contains("transactional checksum mismatch"));
        }
        let _ = ctl;
    }
}

#[test]
fn full_ixt3_survives_over_200_fault_scenarios() {
    // §6.2: "ixt3 detects and recovers from over 200 possible different
    // partial-error scenarios that we induced." Sweep (block tag × fault
    // kind × transience) read-side scenarios against the full config and
    // count survivals (operation still yields correct data, no crash).
    let iron = IronConfig::full();
    let tags = ["inode", "dir", "bitmap", "i-bitmap", "indirect", "data"];
    let faults = [
        FaultKind::ReadError,
        FaultKind::Corruption(CorruptionStyle::RandomNoise),
        FaultKind::Corruption(CorruptionStyle::Zeroed),
        FaultKind::Corruption(CorruptionStyle::BitFlip { offset: 7, len: 9 }),
    ];
    let mut survived = 0;
    let mut total = 0;
    for tag in tags {
        for fault in faults {
            for nth in 0..3u32 {
                total += 1;
                let (mut v, ctl, env) = mount_iron(iron);
                // A tree with enough structure to touch every block type.
                v.mkdir("/d", 0o755).unwrap();
                let data: Vec<u8> = (0..80_000u32).map(|i| (i % 241) as u8).collect();
                v.write_file("/d/f", &data).unwrap();
                v.sync().unwrap();
                let (mut v, env2) = remount(v, iron);
                drop(env);
                ctl.inject(FaultSpec::sticky(
                    fault,
                    FaultTarget::TagNth {
                        tag: BlockTag(tag),
                        nth,
                    },
                ));
                let ok = matches!(v.read_file("/d/f"), Ok(d) if d == data)
                    && env2.state() == MountState::ReadWrite;
                if ok {
                    survived += 1;
                }
            }
        }
    }
    // All read-side single-fault scenarios must be survivable with full
    // IRON. (The paper's 200+ scenarios span its whole campaign; our
    // per-scenario count is asserted exactly here, and the full campaign
    // count is checked in the fingerprint crate.)
    assert_eq!(survived, total, "survived {survived}/{total}");
}

#[test]
fn fsck_clean_with_all_iron_features() {
    let iron = IronConfig::full();
    let (mut v, _ctl, _env) = mount_iron(iron);
    v.mkdir("/a", 0o755).unwrap();
    for i in 0..20 {
        v.write_file(&format!("/a/f{i}"), &vec![i as u8; 9_000])
            .unwrap();
    }
    for i in (0..20).step_by(3) {
        v.unlink(&format!("/a/f{i}")).unwrap();
    }
    v.sync().unwrap();
    let fs = v.into_fs();
    let layout = *fs.layout();
    let dev = fs.into_device();
    let report = iron_ext3::fsck::check(&dev, &layout);
    assert!(report.is_clean(), "fsck: {:?}", report.issues);
}

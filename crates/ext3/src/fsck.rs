//! An offline consistency checker (fsck) for the ext3 model.
//!
//! The IRON taxonomy's `RRepair` level is fsck-style repair; the paper notes
//! that even journaling file systems benefit from periodic full-scan
//! integrity checks (§3.1). This module has two faces:
//!
//! * [`check`]/[`repair`] — the original *sequential* checker. It walks the
//!   on-disk image through [`RawAccess`] (no faults, no timing) and reports
//!   structural inconsistencies. It is the **differential oracle** for
//!   `iron-fsck`: the parallel engine must report the identical issue
//!   multiset on every image, at every thread count.
//! * [`Ext3Image`] — the adapter that implements `iron_fsck::Checkable`
//!   and `iron_fsck::Repairable`, letting the generic parallel engine
//!   check and transactionally repair ext3 images.
//!
//! Both faces share the issue vocabulary ([`iron_fsck::FsckIssue`]), the
//! superblock geometry sanity checks ([`superblock_sanity`], `DSanity`),
//! and the corruption-hardened block walker, so their reports agree by
//! construction; the property suites in `crates/fsck/tests` pin it.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use iron_blockdev::RawAccess;
use iron_core::{Block, BlockAddr, BLOCK_SIZE};
use iron_fsck::{ChildEntry, FileKind, InodeSummary, RepairFix, SuperblockReport};
use iron_vfs::FileType;

use crate::alloc;
use crate::dir;
use crate::inode::{DiskInode, NDIRECT, PTRS_PER_BLOCK};
use crate::layout::{DiskLayout, ROOT_INO};
use crate::superblock::Superblock;

pub use iron_fsck::FsckIssue;

/// The result of a consistency check.
#[derive(Clone, Debug, Default)]
pub struct FsckReport {
    /// Everything found, in discovery order.
    pub issues: Vec<FsckIssue>,
}

impl FsckReport {
    /// True if the image is fully consistent.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

/// Geometry sanity checks (`DSanity`) of a decoded superblock against the
/// trusted layout: recorded sizes vs. the device, and the journal region
/// vs. the regions that follow it. Shared by the sequential oracle and
/// the [`Ext3Image`] adapter so both report identical issues.
pub fn superblock_sanity(sb: &Superblock, layout: &DiskLayout) -> Vec<FsckIssue> {
    let p = &layout.params;
    let mut issues = Vec::new();
    let mut field = |name: &'static str, stored: u64, expected: u64| {
        if stored != expected {
            issues.push(FsckIssue::GeometryMismatch {
                field: name,
                stored,
                expected,
            });
        }
    };
    field("total_blocks", sb.total_blocks, p.total_blocks);
    field("blocks_per_group", sb.blocks_per_group, p.blocks_per_group);
    field("inodes_per_group", sb.inodes_per_group, p.inodes_per_group);
    field(
        "mirror_metadata",
        u64::from(sb.mirror_metadata),
        u64::from(p.mirror_metadata),
    );
    // The journal region is [journal_start, journal_start + len); growing
    // past the trusted length would overlap the checksum table / groups.
    if sb.journal_blocks > layout.journal_len {
        issues.push(FsckIssue::JournalOverlap {
            stored: sb.journal_blocks,
            max: layout.journal_len,
        });
    } else if sb.journal_blocks != layout.journal_len {
        issues.push(FsckIssue::GeometryMismatch {
            field: "journal_blocks",
            stored: sb.journal_blocks,
            expected: layout.journal_len,
        });
    }
    issues
}

fn inode_at<D: RawAccess>(dev: &D, layout: &DiskLayout, ino: u64) -> DiskInode {
    let (blk, off) = layout.inode_location(ino);
    DiskInode::decode_from(&dev.peek(blk), off)
}

/// Enumerate an inode's block addresses, hardened against corruption: the
/// block count is capped at the maximum a (double-)indirect tree can
/// address, and pointer blocks are only dereferenced when their address
/// is on the device — out-of-range pointers are still *recorded* (so
/// duplicate detection sees them) but never followed.
fn file_block_addrs<D: RawAccess>(
    dev: &D,
    di: &DiskInode,
    device_blocks: u64,
) -> (Vec<u64>, Vec<u64>) {
    // Returns (data blocks in index order incl. holes as 0, indirect blocks).
    let ppb = PTRS_PER_BLOCK as u64;
    let max_addressable = NDIRECT as u64 + ppb + ppb * ppb;
    let nblocks = di.size.div_ceil(BLOCK_SIZE as u64).min(max_addressable);
    let mut data = Vec::new();
    let mut indirect = Vec::new();
    let l1: Option<Block> = if di.indirect != 0 {
        indirect.push(di.indirect as u64);
        ((di.indirect as u64) < device_blocks).then(|| dev.peek(BlockAddr(di.indirect as u64)))
    } else {
        None
    };
    let l2root: Option<Block> = if di.double_indirect != 0 {
        indirect.push(di.double_indirect as u64);
        ((di.double_indirect as u64) < device_blocks)
            .then(|| dev.peek(BlockAddr(di.double_indirect as u64)))
    } else {
        None
    };
    if let Some(root) = &l2root {
        for i in 0..PTRS_PER_BLOCK {
            let p = root.get_u32(i * 4) as u64;
            if p != 0 {
                indirect.push(p);
            }
        }
    }
    for idx in 0..nblocks {
        let addr = if idx < NDIRECT as u64 {
            di.direct[idx as usize] as u64
        } else if idx < NDIRECT as u64 + ppb {
            match &l1 {
                Some(b) => b.get_u32((idx - NDIRECT as u64) as usize * 4) as u64,
                None => 0,
            }
        } else {
            let rel = idx - NDIRECT as u64 - ppb;
            match &l2root {
                Some(root) => {
                    let p = root.get_u32((rel / ppb) as usize * 4) as u64;
                    if p == 0 || p >= device_blocks {
                        0
                    } else {
                        dev.peek(BlockAddr(p)).get_u32((rel % ppb) as usize * 4) as u64
                    }
                }
                None => 0,
            }
        };
        data.push(addr);
    }
    (data, indirect)
}

/// Check the on-disk image for structural consistency.
pub fn check<D: RawAccess>(dev: &D, layout: &DiskLayout) -> FsckReport {
    let mut report = FsckReport::default();
    let Some(sb) = Superblock::decode(&dev.peek(BlockAddr(0))) else {
        report.issues.push(FsckIssue::BadSuperblock);
        return report;
    };
    report.issues.extend(superblock_sanity(&sb, layout));
    let device_blocks = layout.params.total_blocks;

    // Pass 1: walk the tree from the root.
    let mut used_blocks: BTreeMap<u64, u64> = BTreeMap::new(); // block -> owner ino
    let mut link_counts: BTreeMap<u64, u32> = BTreeMap::new();
    let mut reachable: BTreeSet<u64> = BTreeSet::new();
    let mut queue = VecDeque::from([ROOT_INO]);
    // Root's ".." refers to itself; seed its parent link.
    let mut note_block = |report: &mut FsckReport, addr: u64, ino: u64| {
        if addr == 0 {
            return;
        }
        if used_blocks.insert(addr, ino).is_some() {
            report.issues.push(FsckIssue::BlockDoublyUsed { addr });
        }
    };

    while let Some(ino) = queue.pop_front() {
        if !reachable.insert(ino) {
            continue;
        }
        let di = inode_at(dev, layout, ino);
        if di.is_free() || di.file_type().is_none() {
            continue; // reported as dangling where referenced
        }
        let (data, indirect) = file_block_addrs(dev, &di, device_blocks);
        for a in &indirect {
            note_block(&mut report, *a, ino);
        }
        if di.parity != 0 {
            note_block(&mut report, di.parity as u64, ino);
        }
        match di.file_type() {
            Some(FileType::Directory) => {
                for a in &data {
                    note_block(&mut report, *a, ino);
                    if *a == 0 || *a >= device_blocks {
                        continue;
                    }
                    for e in dir::parse_block(&dev.peek(BlockAddr(*a))) {
                        let child = e.ino as u64;
                        if child == 0 || child > layout.total_inodes() {
                            report.issues.push(FsckIssue::DanglingEntry {
                                dir: ino,
                                name: e.name.clone(),
                                ino: child,
                            });
                            continue;
                        }
                        let cdi = inode_at(dev, layout, child);
                        if cdi.is_free() {
                            report.issues.push(FsckIssue::DanglingEntry {
                                dir: ino,
                                name: e.name.clone(),
                                ino: child,
                            });
                            continue;
                        }
                        *link_counts.entry(child).or_insert(0) += 1;
                        if e.name != "." && e.name != ".." {
                            queue.push_back(child);
                        }
                    }
                }
            }
            _ => {
                for a in &data {
                    note_block(&mut report, *a, ino);
                }
            }
        }
    }

    // Pass 2: link counts.
    for (&ino, &actual) in &link_counts {
        let di = inode_at(dev, layout, ino);
        if !di.is_free() && di.links_count != actual {
            report.issues.push(FsckIssue::WrongLinkCount {
                ino,
                stored: di.links_count,
                actual,
            });
        }
    }

    // Pass 3: bitmaps vs. usage.
    for g in 0..layout.num_groups {
        let base = layout.group_base(g);
        let dbm = dev.peek(layout.data_bitmap(g));
        let data_lo = layout.data_start(g) - base;
        let data_hi = layout.params.blocks_per_group - 1; // super replica excluded
        for bit in data_lo..data_hi {
            let addr = base + bit;
            let marked = alloc::bit_test(&dbm, bit);
            let used = used_blocks.contains_key(&addr);
            if used && !marked {
                report.issues.push(FsckIssue::BlockNotMarked { addr });
            }
            if marked && !used {
                report.issues.push(FsckIssue::BlockLeaked { addr });
            }
        }
        // Inode bitmap vs. table.
        let ibm = dev.peek(layout.inode_bitmap(g));
        for bit in 0..layout.params.inodes_per_group {
            let ino = g * layout.params.inodes_per_group + bit + 1;
            if ino == 1 {
                continue; // reserved
            }
            let marked = alloc::bit_test(&ibm, bit);
            let di = inode_at(dev, layout, ino);
            if marked == di.is_free() {
                report.issues.push(FsckIssue::InodeBitmapMismatch { ino });
            }
            if !di.is_free() && !reachable.contains(&ino) {
                report.issues.push(FsckIssue::OrphanInode { ino });
            }
        }
    }

    report
}

/// Repair the subset of issues that can be fixed mechanically (`RRepair`):
/// leaked blocks are freed, wrong link counts corrected, inode-bitmap
/// mismatches resolved in favor of the inode table. Returns the number of
/// fixes applied. Dangling entries and double-used blocks are *reported*
/// but left alone (fixing them is data-loss territory — "Could lose data",
/// Table 2).
///
/// This is the legacy sequential arm; the planner in `iron-fsck` covers
/// more classes (geometry fields, unmarked blocks) and applies fixes
/// transactionally — see [`Ext3Image`].
pub fn repair<D: RawAccess>(dev: &mut D, layout: &DiskLayout) -> usize {
    let report = check(dev, layout);
    let mut fixes = 0;
    for issue in &report.issues {
        match issue {
            FsckIssue::BlockLeaked { addr } => {
                if let Some(g) = layout.group_of_block(*addr) {
                    let bm_addr = layout.data_bitmap(g);
                    let mut bm = dev.peek(bm_addr);
                    alloc::bit_clear(&mut bm, addr - layout.group_base(g));
                    dev.poke(bm_addr, &bm);
                    fixes += 1;
                }
            }
            FsckIssue::WrongLinkCount { ino, actual, .. } => {
                let (blk, off) = layout.inode_location(*ino);
                let mut b = dev.peek(blk);
                let mut di = DiskInode::decode_from(&b, off);
                di.links_count = *actual;
                di.encode_into(&mut b, off);
                dev.poke(blk, &b);
                fixes += 1;
            }
            FsckIssue::InodeBitmapMismatch { ino } => {
                let g = (ino - 1) / layout.params.inodes_per_group;
                let bit = (ino - 1) % layout.params.inodes_per_group;
                let bm_addr = layout.inode_bitmap(g);
                let mut bm = dev.peek(bm_addr);
                let di = inode_at(dev, layout, *ino);
                if di.is_free() {
                    alloc::bit_clear(&mut bm, bit);
                } else {
                    alloc::bit_set(&mut bm, bit);
                }
                dev.poke(bm_addr, &bm);
                fixes += 1;
            }
            _ => {}
        }
    }
    fixes
}

/// An ext3 image viewed through the generic `iron-fsck` traits: the
/// parallel engine checks it via `Checkable` and repairs it via
/// `Repairable` (every fix returns its inverse for transactional
/// rollback). Wraps any [`RawAccess`] medium plus the trusted layout.
pub struct Ext3Image<D> {
    dev: D,
    layout: DiskLayout,
}

impl<D: RawAccess> Ext3Image<D> {
    /// Wrap a device and its trusted (mount-time) layout.
    pub fn new(dev: D, layout: DiskLayout) -> Self {
        Ext3Image { dev, layout }
    }

    /// The trusted layout.
    pub fn layout(&self) -> &DiskLayout {
        &self.layout
    }

    /// The wrapped device.
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// The wrapped device, mutably.
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.dev
    }

    /// Unwrap.
    pub fn into_device(self) -> D {
        self.dev
    }

    fn validate_ino(&self, ino: u64) -> Result<(), String> {
        if ino == 0 || ino > self.layout.total_inodes() {
            Err(format!("inode {ino} out of range"))
        } else {
            Ok(())
        }
    }
}

impl<D: RawAccess + Sync> iron_fsck::Checkable for Ext3Image<D> {
    fn fs_name(&self) -> &'static str {
        "ext3"
    }

    fn device_blocks(&self) -> u64 {
        self.layout.params.total_blocks
    }

    fn check_superblock(&self) -> SuperblockReport {
        match Superblock::decode(&self.dev.peek(BlockAddr(0))) {
            None => SuperblockReport {
                issues: vec![FsckIssue::BadSuperblock],
                fatal: true,
            },
            Some(sb) => SuperblockReport {
                issues: superblock_sanity(&sb, &self.layout),
                fatal: false,
            },
        }
    }

    fn root_ino(&self) -> u64 {
        ROOT_INO
    }

    fn total_inodes(&self) -> u64 {
        self.layout.total_inodes()
    }

    fn is_reserved_ino(&self, ino: u64) -> bool {
        ino == 1
    }

    fn inode(&self, ino: u64) -> InodeSummary {
        let di = inode_at(&self.dev, &self.layout, ino);
        InodeSummary {
            free: di.is_free(),
            kind: di.file_type().map(|t| {
                if t == FileType::Directory {
                    FileKind::Directory
                } else {
                    FileKind::Other
                }
            }),
            links: di.links_count,
        }
    }

    fn dir_entries(&self, ino: u64) -> Vec<ChildEntry> {
        let di = inode_at(&self.dev, &self.layout, ino);
        if di.is_free() || di.file_type() != Some(FileType::Directory) {
            return Vec::new();
        }
        let device_blocks = self.layout.params.total_blocks;
        let (data, _) = file_block_addrs(&self.dev, &di, device_blocks);
        let mut out = Vec::new();
        for a in data {
            if a == 0 || a >= device_blocks {
                continue;
            }
            for e in dir::parse_block(&self.dev.peek(BlockAddr(a))) {
                out.push(ChildEntry {
                    name: e.name,
                    ino: e.ino as u64,
                });
            }
        }
        out
    }

    fn block_refs(&self, ino: u64) -> Vec<u64> {
        let di = inode_at(&self.dev, &self.layout, ino);
        if di.is_free() || di.file_type().is_none() {
            return Vec::new();
        }
        let (data, indirect) = file_block_addrs(&self.dev, &di, self.layout.params.total_blocks);
        let mut refs = indirect;
        if di.parity != 0 {
            refs.push(di.parity as u64);
        }
        refs.extend(data.into_iter().filter(|&a| a != 0));
        refs
    }

    fn data_regions(&self) -> Vec<std::ops::Range<u64>> {
        (0..self.layout.num_groups)
            .map(|g| {
                // Super replica (last block of the group) excluded, as in
                // the oracle's pass 3.
                self.layout.data_start(g)
                    ..self.layout.group_base(g) + self.layout.params.blocks_per_group - 1
            })
            .collect()
    }

    fn block_marked(&self, addr: u64) -> bool {
        match self.layout.group_of_block(addr) {
            Some(g) => {
                let bm = self.dev.peek(self.layout.data_bitmap(g));
                alloc::bit_test(&bm, addr - self.layout.group_base(g))
            }
            None => false,
        }
    }

    fn inode_marked(&self, ino: u64) -> bool {
        let g = (ino - 1) / self.layout.params.inodes_per_group;
        let bit = (ino - 1) % self.layout.params.inodes_per_group;
        let bm = self.dev.peek(self.layout.inode_bitmap(g));
        alloc::bit_test(&bm, bit)
    }
}

impl<D: RawAccess + Sync> iron_fsck::Repairable for Ext3Image<D> {
    fn apply_fix(&mut self, fix: &RepairFix) -> Result<RepairFix, String> {
        match *fix {
            RepairFix::FreeBlock { addr } => {
                let g = self
                    .layout
                    .group_of_block(addr)
                    .ok_or_else(|| format!("block {addr} outside the block groups"))?;
                let bm_addr = self.layout.data_bitmap(g);
                let mut bm = self.dev.peek(bm_addr);
                let bit = addr - self.layout.group_base(g);
                if !alloc::bit_test(&bm, bit) {
                    return Err(format!("block {addr} already free"));
                }
                alloc::bit_clear(&mut bm, bit);
                self.dev.poke(bm_addr, &bm);
                Ok(RepairFix::MarkBlock { addr })
            }
            RepairFix::MarkBlock { addr } => {
                let g = self
                    .layout
                    .group_of_block(addr)
                    .ok_or_else(|| format!("block {addr} outside the block groups"))?;
                let bm_addr = self.layout.data_bitmap(g);
                let mut bm = self.dev.peek(bm_addr);
                let bit = addr - self.layout.group_base(g);
                if alloc::bit_test(&bm, bit) {
                    return Err(format!("block {addr} already marked"));
                }
                alloc::bit_set(&mut bm, bit);
                self.dev.poke(bm_addr, &bm);
                Ok(RepairFix::FreeBlock { addr })
            }
            RepairFix::SetLinkCount { ino, links } => {
                self.validate_ino(ino)?;
                let (blk, off) = self.layout.inode_location(ino);
                let mut b = self.dev.peek(blk);
                let mut di = DiskInode::decode_from(&b, off);
                let old = di.links_count;
                di.links_count = links;
                di.encode_into(&mut b, off);
                self.dev.poke(blk, &b);
                Ok(RepairFix::SetLinkCount { ino, links: old })
            }
            RepairFix::SyncInodeMark { ino } => {
                self.validate_ino(ino)?;
                let used = !inode_at(&self.dev, &self.layout, ino).is_free();
                self.write_inode_mark(ino, used)
            }
            RepairFix::SetInodeMark { ino, used } => {
                self.validate_ino(ino)?;
                self.write_inode_mark(ino, used)
            }
            RepairFix::SetGeometryField { field, value } => {
                let mut sb = Superblock::decode(&self.dev.peek(BlockAddr(0)))
                    .ok_or_else(|| "superblock undecodable".to_string())?;
                let old = match field {
                    "total_blocks" => {
                        let old = sb.total_blocks;
                        sb.total_blocks = value;
                        old
                    }
                    "blocks_per_group" => {
                        let old = sb.blocks_per_group;
                        sb.blocks_per_group = value;
                        old
                    }
                    "inodes_per_group" => {
                        let old = sb.inodes_per_group;
                        sb.inodes_per_group = value;
                        old
                    }
                    "journal_blocks" => {
                        let old = sb.journal_blocks;
                        sb.journal_blocks = value;
                        old
                    }
                    "mirror_metadata" => {
                        let old = u64::from(sb.mirror_metadata);
                        sb.mirror_metadata = value != 0;
                        old
                    }
                    _ => return Err(format!("unknown geometry field {field}")),
                };
                self.dev.poke(BlockAddr(0), &sb.encode());
                Ok(RepairFix::SetGeometryField { field, value: old })
            }
        }
    }
}

impl<D: RawAccess> Ext3Image<D> {
    fn write_inode_mark(&mut self, ino: u64, used: bool) -> Result<RepairFix, String> {
        let g = (ino - 1) / self.layout.params.inodes_per_group;
        let bit = (ino - 1) % self.layout.params.inodes_per_group;
        let bm_addr = self.layout.inode_bitmap(g);
        let mut bm = self.dev.peek(bm_addr);
        let old = alloc::bit_test(&bm, bit);
        if used {
            alloc::bit_set(&mut bm, bit);
        } else {
            alloc::bit_clear(&mut bm, bit);
        }
        self.dev.poke(bm_addr, &bm);
        Ok(RepairFix::SetInodeMark { ino, used: old })
    }
}

//! An offline consistency checker (fsck) for the ext3 model.
//!
//! The IRON taxonomy's `RRepair` level is fsck-style repair; the paper notes
//! that even journaling file systems benefit from periodic full-scan
//! integrity checks (§3.1). This checker walks the on-disk image through
//! [`RawAccess`] (no faults, no timing) and reports structural
//! inconsistencies. It is the oracle for the crash-consistency and
//! property-based test suites, and `repair` implements the subset of fixes
//! the paper calls out (freeing leaked blocks, fixing link counts).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use iron_blockdev::RawAccess;
use iron_core::{Block, BlockAddr, BLOCK_SIZE};
use iron_vfs::FileType;

use crate::alloc;
use crate::dir;
use crate::inode::{DiskInode, NDIRECT, PTRS_PER_BLOCK};
use crate::layout::{DiskLayout, ROOT_INO};
use crate::superblock::Superblock;

/// One inconsistency found by [`check`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FsckIssue {
    /// The superblock failed to decode.
    BadSuperblock,
    /// A directory entry references a free or out-of-range inode.
    DanglingEntry {
        /// The directory containing the entry.
        dir: u64,
        /// The entry name.
        name: String,
        /// The referenced inode.
        ino: u64,
    },
    /// An inode's link count disagrees with the directory tree.
    WrongLinkCount {
        /// The inode.
        ino: u64,
        /// Count stored on disk.
        stored: u32,
        /// Count derived from the tree walk.
        actual: u32,
    },
    /// A block used by a file is not marked allocated in the bitmap.
    BlockNotMarked {
        /// The block.
        addr: u64,
    },
    /// A block marked allocated is not referenced by anything ("leaked").
    BlockLeaked {
        /// The block.
        addr: u64,
    },
    /// Two files reference the same block.
    BlockDoublyUsed {
        /// The block.
        addr: u64,
    },
    /// An allocated inode is unreachable from the root.
    OrphanInode {
        /// The inode.
        ino: u64,
    },
    /// An inode bitmap bit is set for a free inode slot (or vice versa).
    InodeBitmapMismatch {
        /// The inode.
        ino: u64,
    },
}

/// The result of a consistency check.
#[derive(Clone, Debug, Default)]
pub struct FsckReport {
    /// Everything found, in discovery order.
    pub issues: Vec<FsckIssue>,
}

impl FsckReport {
    /// True if the image is fully consistent.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

fn inode_at<D: RawAccess>(dev: &D, layout: &DiskLayout, ino: u64) -> DiskInode {
    let (blk, off) = layout.inode_location(ino);
    DiskInode::decode_from(&dev.peek(blk), off)
}

fn file_block_addrs<D: RawAccess>(dev: &D, di: &DiskInode) -> (Vec<u64>, Vec<u64>) {
    // Returns (data blocks in index order incl. holes as 0, indirect blocks).
    let nblocks = di.size.div_ceil(BLOCK_SIZE as u64);
    let mut data = Vec::new();
    let mut indirect = Vec::new();
    let ppb = PTRS_PER_BLOCK as u64;
    let l1: Option<Block> = if di.indirect != 0 {
        indirect.push(di.indirect as u64);
        Some(dev.peek(BlockAddr(di.indirect as u64)))
    } else {
        None
    };
    let l2root: Option<Block> = if di.double_indirect != 0 {
        indirect.push(di.double_indirect as u64);
        Some(dev.peek(BlockAddr(di.double_indirect as u64)))
    } else {
        None
    };
    if let Some(root) = &l2root {
        for i in 0..PTRS_PER_BLOCK {
            let p = root.get_u32(i * 4) as u64;
            if p != 0 {
                indirect.push(p);
            }
        }
    }
    for idx in 0..nblocks {
        let addr = if idx < NDIRECT as u64 {
            di.direct[idx as usize] as u64
        } else if idx < NDIRECT as u64 + ppb {
            match &l1 {
                Some(b) => b.get_u32((idx - NDIRECT as u64) as usize * 4) as u64,
                None => 0,
            }
        } else {
            let rel = idx - NDIRECT as u64 - ppb;
            match &l2root {
                Some(root) => {
                    let p = root.get_u32((rel / ppb) as usize * 4) as u64;
                    if p == 0 {
                        0
                    } else {
                        dev.peek(BlockAddr(p)).get_u32((rel % ppb) as usize * 4) as u64
                    }
                }
                None => 0,
            }
        };
        data.push(addr);
    }
    (data, indirect)
}

/// Check the on-disk image for structural consistency.
pub fn check<D: RawAccess>(dev: &D, layout: &DiskLayout) -> FsckReport {
    let mut report = FsckReport::default();
    let Some(_sb) = Superblock::decode(&dev.peek(BlockAddr(0))) else {
        report.issues.push(FsckIssue::BadSuperblock);
        return report;
    };

    // Pass 1: walk the tree from the root.
    let mut used_blocks: BTreeMap<u64, u64> = BTreeMap::new(); // block -> owner ino
    let mut link_counts: BTreeMap<u64, u32> = BTreeMap::new();
    let mut reachable: BTreeSet<u64> = BTreeSet::new();
    let mut queue = VecDeque::from([ROOT_INO]);
    // Root's ".." refers to itself; seed its parent link.
    let mut note_block = |report: &mut FsckReport, addr: u64, ino: u64| {
        if addr == 0 {
            return;
        }
        if used_blocks.insert(addr, ino).is_some() {
            report.issues.push(FsckIssue::BlockDoublyUsed { addr });
        }
    };

    while let Some(ino) = queue.pop_front() {
        if !reachable.insert(ino) {
            continue;
        }
        let di = inode_at(dev, layout, ino);
        if di.is_free() || di.file_type().is_none() {
            continue; // reported as dangling where referenced
        }
        let (data, indirect) = file_block_addrs(dev, &di);
        for a in &indirect {
            note_block(&mut report, *a, ino);
        }
        if di.parity != 0 {
            note_block(&mut report, di.parity as u64, ino);
        }
        match di.file_type() {
            Some(FileType::Directory) => {
                for a in &data {
                    note_block(&mut report, *a, ino);
                    if *a == 0 {
                        continue;
                    }
                    for e in dir::parse_block(&dev.peek(BlockAddr(*a))) {
                        let child = e.ino as u64;
                        if child == 0 || child > layout.total_inodes() {
                            report.issues.push(FsckIssue::DanglingEntry {
                                dir: ino,
                                name: e.name.clone(),
                                ino: child,
                            });
                            continue;
                        }
                        let cdi = inode_at(dev, layout, child);
                        if cdi.is_free() {
                            report.issues.push(FsckIssue::DanglingEntry {
                                dir: ino,
                                name: e.name.clone(),
                                ino: child,
                            });
                            continue;
                        }
                        *link_counts.entry(child).or_insert(0) += 1;
                        if e.name != "." && e.name != ".." {
                            queue.push_back(child);
                        }
                    }
                }
            }
            _ => {
                for a in &data {
                    note_block(&mut report, *a, ino);
                }
            }
        }
    }

    // Pass 2: link counts.
    for (&ino, &actual) in &link_counts {
        let di = inode_at(dev, layout, ino);
        if !di.is_free() && di.links_count != actual {
            report.issues.push(FsckIssue::WrongLinkCount {
                ino,
                stored: di.links_count,
                actual,
            });
        }
    }

    // Pass 3: bitmaps vs. usage.
    for g in 0..layout.num_groups {
        let base = layout.group_base(g);
        let dbm = dev.peek(layout.data_bitmap(g));
        let data_lo = layout.data_start(g) - base;
        let data_hi = layout.params.blocks_per_group - 1; // super replica excluded
        for bit in data_lo..data_hi {
            let addr = base + bit;
            let marked = alloc::bit_test(&dbm, bit);
            let used = used_blocks.contains_key(&addr);
            if used && !marked {
                report.issues.push(FsckIssue::BlockNotMarked { addr });
            }
            if marked && !used {
                report.issues.push(FsckIssue::BlockLeaked { addr });
            }
        }
        // Inode bitmap vs. table.
        let ibm = dev.peek(layout.inode_bitmap(g));
        for bit in 0..layout.params.inodes_per_group {
            let ino = g * layout.params.inodes_per_group + bit + 1;
            if ino == 1 {
                continue; // reserved
            }
            let marked = alloc::bit_test(&ibm, bit);
            let di = inode_at(dev, layout, ino);
            if marked == di.is_free() {
                report.issues.push(FsckIssue::InodeBitmapMismatch { ino });
            }
            if !di.is_free() && !reachable.contains(&ino) {
                report.issues.push(FsckIssue::OrphanInode { ino });
            }
        }
    }

    report
}

/// Repair the subset of issues that can be fixed mechanically (`RRepair`):
/// leaked blocks are freed, wrong link counts corrected, inode-bitmap
/// mismatches resolved in favor of the inode table. Returns the number of
/// fixes applied. Dangling entries and double-used blocks are *reported*
/// but left alone (fixing them is data-loss territory — "Could lose data",
/// Table 2).
pub fn repair<D: RawAccess>(dev: &mut D, layout: &DiskLayout) -> usize {
    let report = check(dev, layout);
    let mut fixes = 0;
    for issue in &report.issues {
        match issue {
            FsckIssue::BlockLeaked { addr } => {
                if let Some(g) = layout.group_of_block(*addr) {
                    let bm_addr = layout.data_bitmap(g);
                    let mut bm = dev.peek(bm_addr);
                    alloc::bit_clear(&mut bm, addr - layout.group_base(g));
                    dev.poke(bm_addr, &bm);
                    fixes += 1;
                }
            }
            FsckIssue::WrongLinkCount { ino, actual, .. } => {
                let (blk, off) = layout.inode_location(*ino);
                let mut b = dev.peek(blk);
                let mut di = DiskInode::decode_from(&b, off);
                di.links_count = *actual;
                di.encode_into(&mut b, off);
                dev.poke(blk, &b);
                fixes += 1;
            }
            FsckIssue::InodeBitmapMismatch { ino } => {
                let g = (ino - 1) / layout.params.inodes_per_group;
                let bit = (ino - 1) % layout.params.inodes_per_group;
                let bm_addr = layout.inode_bitmap(g);
                let mut bm = dev.peek(bm_addr);
                let di = inode_at(dev, layout, *ino);
                if di.is_free() {
                    alloc::bit_clear(&mut bm, bit);
                } else {
                    alloc::bit_set(&mut bm, bit);
                }
                dev.poke(bm_addr, &bm);
                fixes += 1;
            }
            _ => {}
        }
    }
    fixes
}

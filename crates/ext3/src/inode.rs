//! On-disk inodes.
//!
//! 128-byte records packed into per-group inode tables. Twelve direct block
//! pointers plus single and double indirect pointers (the paper's workloads
//! deliberately create files large enough to exercise the indirect tree —
//! §4.1). One extra pointer slot holds the ixt3 per-file parity block.

use iron_core::Block;
use iron_vfs::{FileType, InodeAttr};

use crate::layout::INODE_SIZE;

/// Number of direct block pointers.
pub const NDIRECT: usize = 12;
/// Pointers per indirect block (u32 entries).
pub const PTRS_PER_BLOCK: usize = iron_core::BLOCK_SIZE / 4;

/// Mode bits for file types (as in real ext2).
pub const S_IFDIR: u32 = 0x4000;
/// Regular-file mode bit.
pub const S_IFREG: u32 = 0x8000;
/// Symlink mode bit.
pub const S_IFLNK: u32 = 0xA000;
const S_IFMT: u32 = 0xF000;

/// A decoded on-disk inode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiskInode {
    /// Type and permission bits.
    pub mode: u32,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// Hard-link count.
    pub links_count: u32,
    /// Size in bytes.
    pub size: u64,
    /// Modification time.
    pub mtime: u64,
    /// Allocated block count (data + indirect).
    pub blocks_count: u32,
    /// Direct block pointers (0 = hole/unallocated).
    pub direct: [u32; NDIRECT],
    /// Single-indirect pointer block.
    pub indirect: u32,
    /// Double-indirect pointer block.
    pub double_indirect: u32,
    /// ixt3: this file's parity block (0 = none).
    pub parity: u32,
}

impl DiskInode {
    /// An empty (free) inode slot.
    pub fn empty() -> Self {
        DiskInode {
            mode: 0,
            uid: 0,
            gid: 0,
            links_count: 0,
            size: 0,
            mtime: 0,
            blocks_count: 0,
            direct: [0; NDIRECT],
            indirect: 0,
            double_indirect: 0,
            parity: 0,
        }
    }

    /// A fresh inode of the given type.
    pub fn new(ftype: FileType, perm: u32) -> Self {
        let type_bits = match ftype {
            FileType::Regular => S_IFREG,
            FileType::Directory => S_IFDIR,
            FileType::Symlink => S_IFLNK,
        };
        DiskInode {
            mode: type_bits | (perm & 0o7777),
            links_count: if ftype == FileType::Directory { 2 } else { 1 },
            ..DiskInode::empty()
        }
    }

    /// True if the slot is unused.
    pub fn is_free(&self) -> bool {
        self.links_count == 0 && self.mode == 0
    }

    /// The file type encoded in `mode`, if the type bits are valid.
    pub fn file_type(&self) -> Option<FileType> {
        match self.mode & S_IFMT {
            S_IFDIR => Some(FileType::Directory),
            S_IFREG => Some(FileType::Regular),
            S_IFLNK => Some(FileType::Symlink),
            _ => None,
        }
    }

    /// Largest file size addressable with direct + single + double
    /// indirect pointers.
    pub fn max_file_size() -> u64 {
        let bs = iron_core::BLOCK_SIZE as u64;
        let ppb = PTRS_PER_BLOCK as u64;
        (NDIRECT as u64 + ppb + ppb * ppb) * bs
    }

    /// ext3's open-time sanity check (§5.1: "when the file-size field of an
    /// inode contains an overly-large value, open detects this and reports
    /// an error"). Also rejects invalid type bits.
    pub fn sanity_check(&self) -> bool {
        self.file_type().is_some() && self.size <= Self::max_file_size()
    }

    /// Attributes for the VFS.
    pub fn attr(&self, ino: u64) -> InodeAttr {
        InodeAttr {
            ino,
            ftype: self.file_type().unwrap_or(FileType::Regular),
            size: self.size,
            nlink: self.links_count,
            mode: self.mode & 0o7777,
            uid: self.uid,
            gid: self.gid,
            mtime: self.mtime,
        }
    }

    /// Serialize into `block` at byte `offset`.
    pub fn encode_into(&self, block: &mut Block, offset: usize) {
        debug_assert!(offset + INODE_SIZE <= iron_core::BLOCK_SIZE);
        block.put_u32(offset, self.mode);
        block.put_u32(offset + 4, self.uid);
        block.put_u32(offset + 8, self.gid);
        block.put_u32(offset + 12, self.links_count);
        block.put_u64(offset + 16, self.size);
        block.put_u64(offset + 24, self.mtime);
        block.put_u32(offset + 32, self.blocks_count);
        for (i, ptr) in self.direct.iter().enumerate() {
            block.put_u32(offset + 40 + i * 4, *ptr);
        }
        block.put_u32(offset + 88, self.indirect);
        block.put_u32(offset + 92, self.double_indirect);
        block.put_u32(offset + 96, self.parity);
    }

    /// Deserialize from `block` at byte `offset`.
    pub fn decode_from(block: &Block, offset: usize) -> DiskInode {
        let mut direct = [0u32; NDIRECT];
        for (i, ptr) in direct.iter_mut().enumerate() {
            *ptr = block.get_u32(offset + 40 + i * 4);
        }
        DiskInode {
            mode: block.get_u32(offset),
            uid: block.get_u32(offset + 4),
            gid: block.get_u32(offset + 8),
            links_count: block.get_u32(offset + 12),
            size: block.get_u64(offset + 16),
            mtime: block.get_u64(offset + 24),
            blocks_count: block.get_u32(offset + 32),
            direct,
            indirect: block.get_u32(offset + 88),
            double_indirect: block.get_u32(offset + 92),
            parity: block.get_u32(offset + 96),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_at_various_offsets() {
        let mut ino = DiskInode::new(FileType::Regular, 0o644);
        ino.size = 123_456;
        ino.direct[0] = 900;
        ino.direct[11] = 911;
        ino.indirect = 1000;
        ino.double_indirect = 1001;
        ino.parity = 77;
        ino.blocks_count = 31;
        for slot in [0usize, 1, 31] {
            let mut b = Block::zeroed();
            ino.encode_into(&mut b, slot * INODE_SIZE);
            assert_eq!(DiskInode::decode_from(&b, slot * INODE_SIZE), ino);
        }
    }

    #[test]
    fn file_types_encode_correctly() {
        assert_eq!(
            DiskInode::new(FileType::Directory, 0o755).file_type(),
            Some(FileType::Directory)
        );
        assert_eq!(
            DiskInode::new(FileType::Symlink, 0o777).file_type(),
            Some(FileType::Symlink)
        );
        let mut bad = DiskInode::new(FileType::Regular, 0o644);
        bad.mode = 0x1234; // invalid type bits
        assert_eq!(bad.file_type(), None);
    }

    #[test]
    fn sanity_check_rejects_huge_size() {
        let mut ino = DiskInode::new(FileType::Regular, 0o644);
        assert!(ino.sanity_check());
        ino.size = DiskInode::max_file_size() + 1;
        assert!(!ino.sanity_check(), "overly-large size must be detected");
    }

    #[test]
    fn empty_slot_is_free() {
        assert!(DiskInode::empty().is_free());
        assert!(!DiskInode::new(FileType::Regular, 0o644).is_free());
    }

    #[test]
    fn max_file_size_covers_double_indirect() {
        // 12 direct + 1024 single + 1024² double, in 4 KiB blocks.
        assert_eq!(DiskInode::max_file_size(), (12 + 1024 + 1024 * 1024) * 4096);
    }

    #[test]
    fn directory_starts_with_two_links() {
        assert_eq!(DiskInode::new(FileType::Directory, 0o755).links_count, 2);
        assert_eq!(DiskInode::new(FileType::Regular, 0o644).links_count, 1);
    }
}

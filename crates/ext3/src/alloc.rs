//! Bitmap allocation primitives.
//!
//! ext3 tracks block and inode allocation with one bitmap block per group.
//! These helpers operate on raw bitmap blocks; the file system composes them
//! with group iteration. Note there is deliberately **no** validity checking
//! here: ext3 trusts bitmap contents completely (§5.1 — bitmaps get no type
//! or sanity checks), so a corrupted bitmap silently mis-allocates.

use iron_core::Block;

/// Test bit `i`.
pub fn bit_test(b: &Block, i: u64) -> bool {
    let byte = (i / 8) as usize;
    let mask = 1u8 << (i % 8);
    b[byte] & mask != 0
}

/// Set bit `i` (mark allocated).
pub fn bit_set(b: &mut Block, i: u64) {
    let byte = (i / 8) as usize;
    b[byte] |= 1u8 << (i % 8);
}

/// Clear bit `i` (mark free).
pub fn bit_clear(b: &mut Block, i: u64) {
    let byte = (i / 8) as usize;
    b[byte] &= !(1u8 << (i % 8));
}

/// Find the first zero bit below `limit`, preferring bits at or after
/// `hint` (simple locality heuristic, like ext3's goal blocks).
pub fn find_free(b: &Block, limit: u64, hint: u64) -> Option<u64> {
    let start = hint.min(limit);
    (start..limit).chain(0..start).find(|&i| !bit_test(b, i))
}

/// Count zero bits below `limit`.
pub fn count_free(b: &Block, limit: u64) -> u64 {
    (0..limit).filter(|&i| !bit_test(b, i)).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_test_clear() {
        let mut b = Block::zeroed();
        assert!(!bit_test(&b, 0));
        bit_set(&mut b, 0);
        bit_set(&mut b, 7);
        bit_set(&mut b, 8);
        bit_set(&mut b, 1023);
        assert!(bit_test(&b, 0));
        assert!(bit_test(&b, 7));
        assert!(bit_test(&b, 8));
        assert!(bit_test(&b, 1023));
        assert!(!bit_test(&b, 9));
        bit_clear(&mut b, 7);
        assert!(!bit_test(&b, 7));
        assert!(bit_test(&b, 8), "neighbors untouched");
    }

    #[test]
    fn find_free_respects_limit_and_hint() {
        let mut b = Block::zeroed();
        for i in 0..10 {
            bit_set(&mut b, i);
        }
        assert_eq!(find_free(&b, 1024, 0), Some(10));
        // Hint skips ahead…
        assert_eq!(find_free(&b, 1024, 100), Some(100));
        // …but wraps around when the tail is full.
        let mut c = Block::zeroed();
        for i in 5..1024 {
            bit_set(&mut c, i);
        }
        assert_eq!(find_free(&c, 1024, 500), Some(0));
        // Full bitmap yields None.
        let mut full = Block::zeroed();
        for i in 0..64 {
            bit_set(&mut full, i);
        }
        assert_eq!(find_free(&full, 64, 0), None);
    }

    #[test]
    fn count_free_counts() {
        let mut b = Block::zeroed();
        assert_eq!(count_free(&b, 100), 100);
        bit_set(&mut b, 3);
        bit_set(&mut b, 99);
        assert_eq!(count_free(&b, 100), 98);
        assert_eq!(count_free(&b, 3), 3, "limit excludes later bits");
    }
}

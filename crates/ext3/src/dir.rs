//! Directory block format: ext2-style variable-length entries.
//!
//! Each entry is `{ino: u32, rec_len: u16, name_len: u8, ftype: u8, name}`
//! with `rec_len` chaining entries through the block; the final entry's
//! `rec_len` runs to the end of the block. An entry with `ino == 0` is a
//! hole.
//!
//! Parsing is deliberately *lenient*: ext3 does "little type checking …
//! for many important blocks, such as directories" (§5.1), so a corrupted
//! directory block does not raise an error — malformed chains simply
//! truncate the listing, silently (that is `DZero` behavior, and the
//! fingerprinting framework observes exactly that).

use iron_core::{Block, BLOCK_SIZE};
use iron_vfs::FileType;

/// File-type byte stored in directory entries.
pub fn ftype_code(t: FileType) -> u8 {
    match t {
        FileType::Regular => 1,
        FileType::Directory => 2,
        FileType::Symlink => 7,
    }
}

/// Inverse of [`ftype_code`]; unknown codes default to regular (lenient).
pub fn ftype_from_code(c: u8) -> FileType {
    match c {
        2 => FileType::Directory,
        7 => FileType::Symlink,
        _ => FileType::Regular,
    }
}

/// A parsed directory entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RawDirEntry {
    /// Referenced inode (never 0 after parsing).
    pub ino: u32,
    /// File-type code byte.
    pub ftype: u8,
    /// Entry name.
    pub name: String,
}

impl RawDirEntry {
    /// A new entry.
    pub fn new(ino: u32, ftype: FileType, name: &str) -> Self {
        RawDirEntry {
            ino,
            ftype: ftype_code(ftype),
            name: name.to_string(),
        }
    }

    /// On-disk size of this entry (header + name, 4-byte aligned).
    pub fn on_disk_size(&self) -> usize {
        entry_size(self.name.len())
    }
}

/// On-disk size of an entry with an `n`-byte name.
pub fn entry_size(n: usize) -> usize {
    (8 + n + 3) & !3
}

/// Parse a directory block, leniently.
///
/// Stops (without error) at the first malformed record: zero/unaligned
/// `rec_len`, a record running past the block end, or a `name_len` that
/// does not fit its record.
pub fn parse_block(b: &Block) -> Vec<RawDirEntry> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off + 8 <= BLOCK_SIZE {
        let ino = b.get_u32(off);
        let rec_len = b.get_u16(off + 4) as usize;
        let name_len = b[off + 6] as usize;
        let ftype = b[off + 7];
        if rec_len < 8 || !rec_len.is_multiple_of(4) || off + rec_len > BLOCK_SIZE {
            break; // malformed chain: silently truncate (lenient)
        }
        if ino != 0 {
            if 8 + name_len > rec_len {
                break; // name overruns record
            }
            let name_bytes = b.get_bytes(off + 8, name_len);
            // Lenient decoding: lossy UTF-8 (a corrupted name is still "a
            // name" to ext3).
            let name = String::from_utf8_lossy(name_bytes).into_owned();
            out.push(RawDirEntry { ino, ftype, name });
        }
        off += rec_len;
    }
    out
}

/// Pack entries into a single block. Returns `None` if they do not fit.
pub fn pack_block(entries: &[RawDirEntry]) -> Option<Block> {
    let used: usize = entries.iter().map(RawDirEntry::on_disk_size).sum();
    if used > BLOCK_SIZE {
        return None;
    }
    let mut b = Block::zeroed();
    if entries.is_empty() {
        // One hole record spanning the block.
        b.put_u32(0, 0);
        b.put_u16(4, BLOCK_SIZE as u16);
        return Some(b);
    }
    let mut off = 0usize;
    for (i, e) in entries.iter().enumerate() {
        let last = i == entries.len() - 1;
        let size = if last {
            BLOCK_SIZE - off
        } else {
            e.on_disk_size()
        };
        b.put_u32(off, e.ino);
        b.put_u16(off + 4, size as u16);
        b[off + 6] = e.name.len() as u8;
        b[off + 7] = e.ftype;
        b.put_bytes(off + 8, e.name.as_bytes());
        off += size;
    }
    Some(b)
}

/// Greedily pack entries into as many blocks as needed.
pub fn pack_blocks(entries: &[RawDirEntry]) -> Vec<Block> {
    let mut blocks = Vec::new();
    let mut current: Vec<RawDirEntry> = Vec::new();
    let mut used = 0usize;
    for e in entries {
        let sz = e.on_disk_size();
        if used + sz > BLOCK_SIZE {
            blocks.push(pack_block(&current).expect("tracked size fits"));
            current.clear();
            used = 0;
        }
        used += sz;
        current.push(e.clone());
    }
    blocks.push(pack_block(&current).expect("tracked size fits"));
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(names: &[&str]) -> Vec<RawDirEntry> {
        names
            .iter()
            .enumerate()
            .map(|(i, n)| RawDirEntry::new(i as u32 + 10, FileType::Regular, n))
            .collect()
    }

    #[test]
    fn pack_parse_round_trip() {
        let es = entries(&["alpha", "b", "a-much-longer-name.txt"]);
        let block = pack_block(&es).unwrap();
        assert_eq!(parse_block(&block), es);
    }

    #[test]
    fn empty_block_parses_empty() {
        let block = pack_block(&[]).unwrap();
        assert!(parse_block(&block).is_empty());
        assert!(parse_block(&Block::zeroed()).is_empty());
    }

    #[test]
    fn corrupted_rec_len_truncates_silently() {
        let es = entries(&["one", "two", "three"]);
        let mut block = pack_block(&es).unwrap();
        // Corrupt the second record's rec_len (first is 12 bytes: name "one").
        block.put_u16(entry_size(3) + 4, 3); // unaligned, < 8
        let parsed = parse_block(&block);
        assert_eq!(parsed.len(), 1, "parsing stops at corruption, no error");
        assert_eq!(parsed[0].name, "one");
    }

    #[test]
    fn multi_block_packing() {
        // 300 entries with 20-byte names won't fit one block.
        let names: Vec<String> = (0..300).map(|i| format!("file-{i:015}")).collect();
        let refs: Vec<RawDirEntry> = names
            .iter()
            .map(|n| RawDirEntry::new(5, FileType::Regular, n))
            .collect();
        let blocks = pack_blocks(&refs);
        assert!(blocks.len() > 1);
        let mut parsed = Vec::new();
        for b in &blocks {
            parsed.extend(parse_block(b));
        }
        assert_eq!(parsed.len(), 300);
        assert_eq!(parsed[299].name, names[299]);
    }

    #[test]
    fn entry_size_is_aligned() {
        assert_eq!(entry_size(0), 8);
        assert_eq!(entry_size(1), 12);
        assert_eq!(entry_size(4), 12);
        assert_eq!(entry_size(5), 16);
        for n in 0..64 {
            assert_eq!(entry_size(n) % 4, 0);
        }
    }

    #[test]
    fn ftype_codes_round_trip() {
        for t in [FileType::Regular, FileType::Directory, FileType::Symlink] {
            assert_eq!(ftype_from_code(ftype_code(t)), t);
        }
        assert_eq!(ftype_from_code(99), FileType::Regular);
    }
}

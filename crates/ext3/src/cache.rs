//! A small buffer cache.
//!
//! Models the page/buffer cache above the disk: repeated reads of hot
//! blocks cost no disk time (this is why the paper's read-intensive web
//! workload shows ~1.00 overhead for every ixt3 variant — Table 6). The
//! cache holds *clean* copies only; dirty metadata lives in the running
//! journal transaction until checkpoint.

use std::collections::HashMap;

use iron_core::{Block, BlockAddr};

struct Entry {
    block: Block,
    last_used: u64,
}

/// A capacity-bounded read cache with approximate-LRU eviction.
pub struct BufferCache {
    map: HashMap<u64, Entry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl BufferCache {
    /// A cache holding at most `capacity` blocks.
    pub fn new(capacity: usize) -> Self {
        BufferCache {
            map: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a block, refreshing its recency.
    pub fn get(&mut self, addr: BlockAddr) -> Option<Block> {
        self.tick += 1;
        match self.map.get_mut(&addr.0) {
            Some(e) => {
                e.last_used = self.tick;
                self.hits += 1;
                Some(e.block.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) a block, evicting the least-recently-used entry
    /// if over capacity.
    pub fn insert(&mut self, addr: BlockAddr, block: Block) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&addr.0) {
            if let Some((&victim, _)) = self.map.iter().min_by_key(|(_, e)| e.last_used) {
                self.map.remove(&victim);
            }
        }
        self.map.insert(
            addr.0,
            Entry {
                block,
                last_used: self.tick,
            },
        );
    }

    /// Drop one block (e.g. after it was invalidated by recovery).
    pub fn invalidate(&mut self, addr: BlockAddr) {
        self.map.remove(&addr.0);
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut c = BufferCache::new(4);
        assert!(c.get(BlockAddr(1)).is_none());
        c.insert(BlockAddr(1), Block::filled(9));
        assert_eq!(c.get(BlockAddr(1)), Some(Block::filled(9)));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn eviction_removes_lru() {
        let mut c = BufferCache::new(2);
        c.insert(BlockAddr(1), Block::filled(1));
        c.insert(BlockAddr(2), Block::filled(2));
        let _ = c.get(BlockAddr(1)); // 1 is now more recent than 2
        c.insert(BlockAddr(3), Block::filled(3));
        assert!(c.get(BlockAddr(2)).is_none(), "LRU entry evicted");
        assert!(c.get(BlockAddr(1)).is_some());
        assert!(c.get(BlockAddr(3)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn invalidate_and_clear() {
        let mut c = BufferCache::new(4);
        c.insert(BlockAddr(1), Block::filled(1));
        c.insert(BlockAddr(2), Block::filled(2));
        c.invalidate(BlockAddr(1));
        assert!(c.get(BlockAddr(1)).is_none());
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_updates_content() {
        let mut c = BufferCache::new(2);
        c.insert(BlockAddr(1), Block::filled(1));
        c.insert(BlockAddr(1), Block::filled(2));
        assert_eq!(c.get(BlockAddr(1)), Some(Block::filled(2)));
        assert_eq!(c.len(), 1);
    }
}

//! The ext3 superblock: on-disk format and sanity checks.

use iron_core::Block;

use crate::layout::Ext3Params;

/// ext3 superblock magic (the real one).
pub const EXT3_MAGIC: u32 = 0xEF53;

/// Mount-state values stored in the superblock.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FsState {
    /// Cleanly unmounted.
    Clean,
    /// Mounted (or crashed while mounted) — journal recovery needed.
    Dirty,
}

/// Decoded superblock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Superblock {
    /// Total device blocks.
    pub total_blocks: u64,
    /// Blocks per group.
    pub blocks_per_group: u64,
    /// Inodes per group.
    pub inodes_per_group: u64,
    /// Journal log-area length.
    pub journal_blocks: u64,
    /// Upper-half metadata mirror present.
    pub mirror_metadata: bool,
    /// Free data blocks (maintained at commit).
    pub free_blocks: u64,
    /// Free inodes.
    pub free_inodes: u64,
    /// Clean/dirty state.
    pub state: FsState,
    /// Mount count (incremented on each mount; exercises super updates).
    pub mount_count: u32,
}

impl Superblock {
    /// A fresh superblock for `params`.
    pub fn new(params: Ext3Params, free_blocks: u64, free_inodes: u64) -> Self {
        Superblock {
            total_blocks: params.total_blocks,
            blocks_per_group: params.blocks_per_group,
            inodes_per_group: params.inodes_per_group,
            journal_blocks: params.journal_blocks,
            mirror_metadata: params.mirror_metadata,
            free_blocks,
            free_inodes,
            state: FsState::Clean,
            mount_count: 0,
        }
    }

    /// The formatting parameters recorded in this superblock.
    pub fn params(&self) -> Ext3Params {
        Ext3Params {
            total_blocks: self.total_blocks,
            blocks_per_group: self.blocks_per_group,
            inodes_per_group: self.inodes_per_group,
            journal_blocks: self.journal_blocks,
            mirror_metadata: self.mirror_metadata,
        }
    }

    /// Serialize into a block.
    pub fn encode(&self) -> Block {
        let mut b = Block::zeroed();
        b.put_u32(0, EXT3_MAGIC);
        b.put_u64(8, self.total_blocks);
        b.put_u64(16, self.blocks_per_group);
        b.put_u64(24, self.inodes_per_group);
        b.put_u64(32, self.journal_blocks);
        b.put_u32(40, u32::from(self.mirror_metadata));
        b.put_u64(48, self.free_blocks);
        b.put_u64(56, self.free_inodes);
        b.put_u32(
            64,
            match self.state {
                FsState::Clean => 1,
                FsState::Dirty => 2,
            },
        );
        b.put_u32(68, self.mount_count);
        b
    }

    /// Decode, performing ext3's mount-time sanity check: the magic number.
    /// Returns `None` if the magic is wrong (ext3 refuses to mount).
    pub fn decode(b: &Block) -> Option<Superblock> {
        if b.get_u32(0) != EXT3_MAGIC {
            return None;
        }
        let state = match b.get_u32(64) {
            1 => FsState::Clean,
            _ => FsState::Dirty,
        };
        Some(Superblock {
            total_blocks: b.get_u64(8),
            blocks_per_group: b.get_u64(16),
            inodes_per_group: b.get_u64(24),
            journal_blocks: b.get_u64(32),
            mirror_metadata: b.get_u32(40) != 0,
            free_blocks: b.get_u64(48),
            free_inodes: b.get_u64(56),
            state,
            mount_count: b.get_u32(68),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Superblock {
        let mut s = Superblock::new(Ext3Params::small(), 3000, 1500);
        s.state = FsState::Dirty;
        s.mount_count = 7;
        s
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = sample();
        assert_eq!(Superblock::decode(&s.encode()), Some(s));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut b = sample().encode();
        b.put_u32(0, 0xDEAD);
        assert_eq!(Superblock::decode(&b), None);
    }

    #[test]
    fn zeroed_block_rejected() {
        assert_eq!(Superblock::decode(&Block::zeroed()), None);
    }

    #[test]
    fn params_round_trip() {
        let p = Ext3Params::small();
        let s = Superblock::new(p, 0, 0);
        let q = s.params();
        assert_eq!(q.total_blocks, p.total_blocks);
        assert_eq!(q.blocks_per_group, p.blocks_per_group);
        assert_eq!(q.inodes_per_group, p.inodes_per_group);
        assert_eq!(q.journal_blocks, p.journal_blocks);
    }
}

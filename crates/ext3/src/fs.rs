//! The ext3/ixt3 engine: mkfs, mount, journaling, and the block-level
//! read/write paths where the failure policy lives.
//!
//! Failure-policy code is deliberately centralized here (the paper blames
//! *failure policy diffusion* for commodity file systems' inconsistencies,
//! §5.6); every `PAPER-BUG` marker reproduces a specific behavior §5.1
//! reports for stock ext3, and `IronConfig::fix_bugs` disables it.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use iron_blockdev::{BlockDevice, IoScheduler, RawAccess, ScanReadahead};
use iron_core::checksum::sha1;
use iron_core::recover::{Backoff, ErrorClass, FailurePolicyTable, PolicyHandle, RecoveryAction};
use iron_core::{Block, BlockAddr, Errno, IoKind, SimClock, BLOCK_SIZE};
use iron_vfs::{FsEnv, VfsError, VfsResult};

use crate::alloc;
use crate::cache::BufferCache;
use crate::dir::{self, RawDirEntry};
use crate::inode::DiskInode;
use crate::iron::{IronConfig, SHA1_BLOCK_COST_NS, XOR_BLOCK_COST_NS};
use crate::journal::{
    checkpoint_group, classify_log_block, txn_checksum, Closed, CommitBlock, Committed,
    JournalRecord, JournalSuper, LogSink, Txn, DESC_CAPACITY,
};
use crate::layout::{BlockType, DiskLayout, Ext3Params, ROOT_INO};
use crate::superblock::{FsState, Superblock};

/// Mount-time options.
#[derive(Clone, Debug)]
pub struct Ext3Options {
    /// Which IRON mechanisms are active.
    pub iron: IronConfig,
    /// Commit the running transaction once it holds this many blocks.
    pub commit_threshold: usize,
    /// Group commit: batch up to this many closed transactions under one
    /// descriptor chain / commit block / barrier. `1` (the default) commits
    /// each transaction as it reaches the threshold — classic JBD.
    pub group_commit: usize,
    /// Pipelined checkpointing: defer home-location write-back until this
    /// many blocks are awaiting checkpoint, overlapping it with new
    /// transaction building and deduplicating re-dirtied blocks into one
    /// elevator sweep. `0` (the default) checkpoints at every commit.
    pub checkpoint_lag: usize,
    /// Buffer-cache capacity in blocks.
    pub cache_blocks: usize,
    /// Testing hook: commits stop after the commit block is durable,
    /// leaving the journal dirty and skipping checkpoint — simulating a
    /// crash between commit and checkpoint (used by recovery fingerprints
    /// and crash-consistency tests).
    pub crash_mode: bool,
    /// Testing knob: re-introduce the two seed journaling bugs fixed in
    /// PR 1 — freed blocks are *not* forgotten/revoked from the running
    /// transaction, and replay applies revoke records globally instead of
    /// sequence-scoped. Exists only so the crash-state enumerator can
    /// regression-prove it would have caught the original bugs. Never set
    /// outside tests.
    pub legacy_journal_bugs: bool,
    /// Testing knob: break group commit on purpose — the commit block is
    /// written *before* the batch's journal-data blocks, with no barrier
    /// between them, so a crash can leave a valid descriptor + commit pair
    /// around garbage data. Exists only so the crash-state enumerator can
    /// prove it would catch a broken batch. Never set outside tests.
    pub legacy_group_commit_bug: bool,
    /// Clock for charging simulated CPU costs (checksum/XOR); `None`
    /// disables CPU accounting.
    pub cpu_clock: Option<SimClock>,
    /// The failure-policy table driving ext3's recovery reactions.
    /// Defaults to [`ext3_stock_policy`] — the exact escalation chains
    /// §5.1 observes for stock ext3 — and can be swapped at runtime
    /// through any clone of the handle (e.g. to widen a retry budget or
    /// force degradation). Stock PAPER-BUG paths (ignored write errors)
    /// never consult the table: the bug is precisely that no policy runs.
    pub policy: PolicyHandle,
}

/// The failure-policy table reproducing stock ext3's documented behavior
/// (§5.1 of the paper), expressed as escalation chains:
///
/// * **data reads** — one immediate re-read of the originally requested
///   block (`RRetry`), then redundancy (parity, when `Dp` is on), then
///   `EIO` to the caller (`RPropagate`);
/// * **corrupt data reads** (`Dc` checksum mismatch) — no re-read of
///   bytes that arrived "successfully": straight to redundancy, then
///   `EIO`;
/// * **metadata reads** — redundancy (the `Mr` distant replica, when
///   on), else abort the journal and remount read-only (`RStop`);
/// * **writes** (data or metadata, when the error is noticed at all) —
///   graceful read-only degradation rather than propagating garbage.
pub fn ext3_stock_policy() -> FailurePolicyTable {
    use RecoveryAction::{DegradeReadOnly, Propagate, Redundancy, Retry};
    let data = BlockType::Data.tag();
    FailurePolicyTable::with_default(vec![Propagate])
        .rule(
            Some(data),
            Some(IoKind::Read),
            Some(ErrorClass::Corrupt),
            vec![Redundancy, Propagate],
        )
        .rule(
            Some(data),
            Some(IoKind::Read),
            None,
            vec![
                Retry {
                    budget: 1,
                    backoff: Backoff::none(),
                },
                Redundancy,
                Propagate,
            ],
        )
        .rule(
            None,
            Some(IoKind::Read),
            None,
            vec![Redundancy, DegradeReadOnly],
        )
        .rule(None, Some(IoKind::Write), None, vec![DegradeReadOnly])
}

impl Default for Ext3Options {
    fn default() -> Self {
        Ext3Options {
            iron: IronConfig::off(),
            commit_threshold: 64,
            group_commit: 1,
            checkpoint_lag: 0,
            cache_blocks: 2048,
            crash_mode: false,
            legacy_journal_bugs: false,
            legacy_group_commit_bug: false,
            cpu_clock: None,
            policy: PolicyHandle::new(ext3_stock_policy()),
        }
    }
}

impl Ext3Options {
    /// Options with the given IRON configuration.
    pub fn with_iron(iron: IronConfig) -> Self {
        Ext3Options {
            iron,
            ..Default::default()
        }
    }

    /// The fast commit path: group commit (up to 8 transactions per
    /// commit block, so up to 8 transactions share one barrier pair) plus
    /// pipelined checkpointing (home-location write-back deferred until
    /// ~3 transactions' worth of blocks are pending, deduplicated into
    /// one elevator sweep). Crash-safe by the same oracles as the
    /// classic path — the journal always holds every committed block.
    pub fn pipelined(iron: IronConfig) -> Self {
        Ext3Options {
            group_commit: 8,
            checkpoint_lag: 192,
            ..Ext3Options::with_iron(iron)
        }
    }
}

/// The ext3/ixt3 file system over a block device.
pub struct Ext3Fs<D: BlockDevice + RawAccess> {
    pub(crate) dev: D,
    pub(crate) env: FsEnv,
    pub(crate) opts: Ext3Options,
    pub(crate) layout: DiskLayout,
    pub(crate) sb: Superblock,
    /// Per-group (free_blocks, free_inodes) from the GDT.
    pub(crate) gdt: Vec<(u32, u32)>,
    /// The running transaction, accepting dirty blocks from operations.
    pub(crate) running: Txn,
    /// Group-commit batch: transactions closed at the commit threshold
    /// but not yet logged (merged eagerly; `batched()` counts members).
    closed: Option<Txn<Closed>>,
    /// Committed transactions whose checkpoint is deferred (pipelined
    /// checkpointing). Oldest first; drained by [`Self::checkpoint_now`].
    pending: Vec<Txn<Committed>>,
    /// Blocks freed by transactions that have not committed yet. JBD's
    /// reuse discipline: allocation works against the *committed* bitmap
    /// state, so a block freed in the running transaction (or a closed
    /// batch member) cannot be handed out until the free is durable — an
    /// eager reuse would let an ordered-mode home write clobber contents a
    /// committed mapping still references (found by the iron-crash
    /// enumerator: COW overwrite freed the old block, the next allocation
    /// reused it pre-commit, and a crash left the old file pointing at
    /// foreign bytes). The `legacy_journal_bugs` knob keeps the seed's
    /// eager-reuse behavior.
    pub(crate) uncommitted_frees: BTreeSet<u64>,
    pub(crate) cache: BufferCache,
    /// Next journal sequence number.
    jseq: u64,
    /// Journal log-area write cursor.
    log_head: u64,
    /// Whether the on-disk journal superblock currently says dirty (so a
    /// multi-transaction crash window keeps the first sequence number).
    journal_dirty_on_disk: bool,
    pub(crate) journal_aborted: bool,
    /// In-memory checksum table (truncated SHA-1 per device block; 0 = no
    /// checksum recorded).
    pub(crate) cksums: Vec<u64>,
    /// Checksum-table block indices (relative to `cksum_start`) that are
    /// dirty in memory.
    dirty_cksum_blocks: BTreeSet<u64>,
    /// Dirty per-file parity accumulators (`Dp`): ino → parity block.
    pub(crate) parity_dirty: HashMap<u64, Block>,
    /// Replica write-back set (`Mr`): metadata copies streamed to the
    /// replica log but not yet checkpointed to the distant mirror.
    pub(crate) replica_pending: HashMap<u64, Block>,
    /// Replica-log write cursor.
    replica_log_head: u64,
    /// Commits since the last mirror checkpoint.
    commits_since_mirror_flush: u32,
}

/// [`LogSink`] adapter: appends land at the log cursor as tagged device
/// writes, barriers go straight to the device. The cursor advances even
/// for reserved (deferred) slots so the on-disk layout is identical with
/// and without the `legacy_group_commit_bug` knob.
struct JournalLog<'a, D: BlockDevice> {
    dev: &'a mut D,
    head: &'a mut u64,
}

impl<D: BlockDevice> LogSink for JournalLog<'_, D> {
    fn append(&mut self, block: &Block, ty: BlockType) -> bool {
        let r = self
            .dev
            .write_tagged(BlockAddr(*self.head), block, ty.tag());
        *self.head += 1;
        r.is_ok()
    }

    fn reserve(&mut self) -> u64 {
        let slot = *self.head;
        *self.head += 1;
        slot
    }

    fn write_at(&mut self, addr: u64, block: &Block, ty: BlockType) -> bool {
        self.dev
            .write_tagged(BlockAddr(addr), block, ty.tag())
            .is_ok()
    }

    fn barrier(&mut self) {
        let _ = self.dev.barrier();
    }
}

impl<D: BlockDevice + RawAccess> Ext3Fs<D> {
    // ==================================================================
    // mkfs
    // ==================================================================

    /// Format a device. Writes every static structure: superblock (+ its
    /// never-updated per-group replicas), GDT, journal superblock, bitmaps,
    /// inode tables, the root directory, the checksum table, and — when
    /// `params.mirror_metadata` — the metadata mirror.
    pub fn mkfs(dev: &mut D, params: Ext3Params) -> VfsResult<()> {
        let layout = DiskLayout::compute(params);
        let mut written: Vec<(u64, Block)> = Vec::new();
        let mut push = |addr: u64, b: Block| written.push((addr, b));

        // Journal superblock, clean.
        push(
            layout.journal_super,
            JournalSuper {
                sequence: 1,
                dirty: false,
                log_len: layout.journal_len,
            }
            .encode(),
        );

        // Root directory: inode 2, one data block in group 0.
        let root_dir_block = layout.data_start(0);
        let root_entries = vec![
            RawDirEntry::new(ROOT_INO as u32, iron_vfs::FileType::Directory, "."),
            RawDirEntry::new(ROOT_INO as u32, iron_vfs::FileType::Directory, ".."),
        ];
        push(
            root_dir_block,
            dir::pack_block(&root_entries).expect("fits"),
        );

        let mut root_inode = DiskInode::new(iron_vfs::FileType::Directory, 0o755);
        root_inode.size = BLOCK_SIZE as u64;
        root_inode.blocks_count = 1;
        root_inode.direct[0] = root_dir_block as u32;
        let (root_itb, root_off) = layout.inode_location(ROOT_INO);
        let mut itable_block = Block::zeroed();
        root_inode.encode_into(&mut itable_block, root_off);
        push(root_itb.0, itable_block);

        // Per-group bitmaps and free counts.
        let mut gdt: Vec<(u32, u32)> = Vec::new();
        let mut total_free_blocks = 0u64;
        let mut total_free_inodes = 0u64;
        for g in 0..layout.num_groups {
            let base = layout.group_base(g);
            let mut dbm = Block::zeroed();
            // Reserve bitmap blocks, inode table, and the super replica.
            let reserved_head = 2 + layout.itable_blocks;
            for i in 0..reserved_head {
                alloc::bit_set(&mut dbm, i);
            }
            alloc::bit_set(&mut dbm, params.blocks_per_group - 1); // super replica
            let mut group_free = layout.data_blocks_per_group();
            if g == 0 {
                // Root directory block.
                alloc::bit_set(&mut dbm, root_dir_block - base);
                group_free -= 1;
            }
            push(base, dbm);

            let mut ibm = Block::zeroed();
            let mut group_free_inodes = params.inodes_per_group;
            if g == 0 {
                // Inodes 1 (reserved) and 2 (root).
                alloc::bit_set(&mut ibm, 0);
                alloc::bit_set(&mut ibm, 1);
                group_free_inodes -= 2;
            }
            push(base + 1, ibm);

            gdt.push((group_free as u32, group_free_inodes as u32));
            total_free_blocks += group_free;
            total_free_inodes += group_free_inodes;
        }

        // GDT block.
        let mut gdt_block = Block::zeroed();
        for (g, (fb, fi)) in gdt.iter().enumerate() {
            gdt_block.put_u32(g * 8, *fb);
            gdt_block.put_u32(g * 8 + 4, *fi);
        }
        push(1, gdt_block);

        // Superblock + its per-group replicas (PAPER-BUG fidelity: the
        // replicas are written here and never touched again).
        let sb = Superblock::new(params, total_free_blocks, total_free_inodes);
        let sb_block = sb.encode();
        push(0, sb_block.clone());
        for g in 0..layout.num_groups {
            push(layout.super_replica(g).0, sb_block.clone());
        }

        // Checksum table covering everything written above (zero elsewhere).
        let mut cksums = vec![0u64; params.total_blocks as usize];
        for (addr, b) in &written {
            cksums[*addr as usize] = sha1(&b[..]).truncated64();
        }
        let entries_per_block = BLOCK_SIZE as u64 / 8;
        for i in 0..layout.cksum_len {
            let mut cb = Block::zeroed();
            for e in 0..entries_per_block {
                let idx = (i * entries_per_block + e) as usize;
                if idx < cksums.len() {
                    cb.put_u64((e * 8) as usize, cksums[idx]);
                }
            }
            written.push((layout.cksum_start + i, cb));
        }

        // Write everything (mkfs is assumed to run on a healthy device; a
        // formatting error is fatal).
        let mirror: Vec<(u64, Block)> = if params.mirror_metadata {
            written
                .iter()
                .filter(|(a, _)| *a < params.total_blocks / 2)
                .map(|(a, b)| (layout.replica_of(*a).0, b.clone()))
                .collect()
        } else {
            Vec::new()
        };
        for (addr, b) in written.into_iter().chain(mirror) {
            dev.write_tagged(BlockAddr(addr), &b, layout.classify_static(addr).tag())
                .map_err(VfsError::from)?;
        }
        dev.barrier().map_err(VfsError::from)?;
        Ok(())
    }

    // ==================================================================
    // mount
    // ==================================================================

    /// Mount the file system, replaying the journal if it is dirty.
    ///
    /// Failure policy at mount (§5.1): the superblock and journal
    /// superblock are type-checked (`DSanity`); a read error or failed
    /// check fails the mount (`RStop` + `RPropagate`). Stock ext3 never
    /// consults its superblock replicas (`PAPER-BUG`); with
    /// `Mr` + `fix_bugs` the mirror copy is used.
    pub fn mount(mut dev: D, env: FsEnv, opts: Ext3Options) -> VfsResult<Self> {
        // --- superblock ---
        let sb_block = match dev.read_tagged(BlockAddr(0), BlockType::Super.tag()) {
            Ok(b) => b,
            Err(_) => {
                env.klog
                    .error("ext3", "unable to read superblock; mount failed");
                // PAPER-BUG: stock ext3 has superblock replicas but never
                // reads them. ixt3 (Mr + fix_bugs) recovers from the mirror.
                if opts.iron.meta_replication && opts.iron.fix_bugs {
                    let mirror = BlockAddr(dev.num_blocks() / 2);
                    match dev.read_tagged(mirror, BlockType::Replica.tag()) {
                        Ok(b) => {
                            env.klog.info("ixt3", "superblock recovered from replica");
                            b
                        }
                        Err(_) => return Err(Errno::EIO.into()),
                    }
                } else {
                    return Err(Errno::EIO.into());
                }
            }
        };
        let sb = match Superblock::decode(&sb_block) {
            Some(sb) => sb,
            None => {
                env.klog.error(
                    "ext3",
                    "VFS: Can't find ext3 filesystem (bad superblock magic)",
                );
                // Corrupt primary: ixt3 falls back to the replica; stock
                // ext3 fails the mount (PAPER-BUG: replicas unused).
                if opts.iron.meta_replication && opts.iron.fix_bugs {
                    let mirror = BlockAddr(dev.num_blocks() / 2);
                    match dev
                        .read_tagged(mirror, BlockType::Replica.tag())
                        .ok()
                        .as_ref()
                        .and_then(Superblock::decode)
                    {
                        Some(sb) => {
                            env.klog.info("ixt3", "superblock recovered from replica");
                            sb
                        }
                        None => return Err(Errno::EUCLEAN.into()),
                    }
                } else {
                    return Err(Errno::EUCLEAN.into());
                }
            }
        };
        let layout = DiskLayout::compute(sb.params());

        let mut fs = Ext3Fs {
            dev,
            env,
            layout,
            sb,
            gdt: Vec::new(),
            running: Txn::new(),
            closed: None,
            pending: Vec::new(),
            uncommitted_frees: BTreeSet::new(),
            cache: BufferCache::new(opts.cache_blocks),
            jseq: 1,
            log_head: layout.journal_start,
            journal_dirty_on_disk: false,
            journal_aborted: false,
            cksums: vec![0; layout.params.total_blocks as usize],
            dirty_cksum_blocks: BTreeSet::new(),
            parity_dirty: HashMap::new(),
            replica_pending: HashMap::new(),
            replica_log_head: layout.replica_log_start,
            commits_since_mirror_flush: 0,
            opts,
        };

        // --- journal superblock (type-checked) ---
        let js_block = fs
            .dev
            .read_tagged(
                BlockAddr(fs.layout.journal_super),
                BlockType::JournalSuper.tag(),
            )
            .map_err(|e| {
                fs.env
                    .klog
                    .error("ext3", "unable to read journal superblock; mount failed");
                VfsError::from(e)
            })?;
        let js = match JournalSuper::decode(&js_block) {
            Some(js) => js,
            None => {
                fs.env
                    .klog
                    .error("ext3", "journal superblock magic invalid; mount failed");
                return Err(Errno::EUCLEAN.into());
            }
        };
        fs.jseq = js.sequence;

        if js.dirty || fs.sb.state == FsState::Dirty {
            fs.replay_journal()?;
        }

        // --- checksum table (needed when Mc or Dc verifies reads) ---
        // Loaded only AFTER replay: a committed transaction can carry new
        // checksum-table blocks, and replay just wrote them home. Loading
        // before replay left the in-memory table stale, so every block the
        // transaction re-checksummed failed verification on first read
        // (found by the iron-crash enumerator).
        if fs.opts.iron.meta_checksum || fs.opts.iron.data_checksum {
            fs.load_cksum_table()?;
        }

        // --- group descriptors ---
        // Stock ext3 uses them blindly (no sanity checking); ixt3 verifies
        // the block against the checksum table and falls back to the
        // replica — which likewise must wait until replay has restored the
        // committed copies.
        let gdt_block = fs.read_meta(1, BlockType::GroupDesc).inspect_err(|_e| {
            fs.env
                .klog
                .error("ext3", "unable to read group descriptors; mount failed");
        })?;
        fs.gdt = (0..fs.layout.num_groups as usize)
            .map(|g| (gdt_block.get_u32(g * 8), gdt_block.get_u32(g * 8 + 4)))
            .collect();

        // Mark mounted (dirty until clean unmount).
        fs.sb.state = FsState::Dirty;
        fs.sb.mount_count += 1;
        let enc = fs.sb.encode();
        // PAPER-BUG: the mount-time superblock update's write error is
        // ignored by stock ext3 (write errors generally are).
        let r = fs
            .dev
            .write_tagged(BlockAddr(0), &enc, BlockType::Super.tag());
        if r.is_err() && fs.opts.iron.fix_bugs {
            fs.env
                .klog
                .error("ext3", "superblock update failed at mount");
            return Err(Errno::EIO.into());
        }
        fs.mirror_meta_write(0, &enc);
        fs.note_cksum(0, &enc, true);
        fs.flush_cksum_blocks();
        fs.flush_replicas();

        Ok(fs)
    }

    /// Convenience: mkfs + mount in one step over a fresh device.
    pub fn format_and_mount(
        mut dev: D,
        env: FsEnv,
        params: Ext3Params,
        opts: Ext3Options,
    ) -> VfsResult<Self> {
        Self::mkfs(&mut dev, params)?;
        Self::mount(dev, env, opts)
    }

    /// The mount environment (also available via `SpecificFs::env`).
    pub fn env_ref(&self) -> &FsEnv {
        &self.env
    }

    /// The computed layout.
    pub fn layout(&self) -> &DiskLayout {
        &self.layout
    }

    /// The active options.
    pub fn options(&self) -> &Ext3Options {
        &self.opts
    }

    /// Borrow the underlying device.
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Mutably borrow the underlying device (tests and the scrubber).
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.dev
    }

    /// Consume the file system, returning the device (for crash simulation:
    /// drop the in-memory state, keep the disk image).
    pub fn into_device(self) -> D {
        self.dev
    }

    /// Size of the running transaction (testing hook).
    pub fn txn_len(&self) -> usize {
        self.running.len()
    }

    /// Closed transactions waiting in the group-commit batch (testing
    /// hook).
    pub fn batched_txns(&self) -> usize {
        self.closed.as_ref().map_or(0, Txn::batched)
    }

    /// Blocks committed to the journal but not yet checkpointed to their
    /// home locations (testing hook; nonzero only with `checkpoint_lag`).
    pub fn pending_checkpoint_blocks(&self) -> usize {
        self.pending.iter().map(|t| t.len()).sum()
    }

    /// The recorded checksum for a device block (0 = none recorded). Used
    /// by the disk scrubber.
    pub fn checksum_entry(&self, addr: u64) -> u64 {
        self.cksums.get(addr as usize).copied().unwrap_or(0)
    }

    /// Verify a block against the checksum table (scrubber hook). Returns
    /// `true` when the block matches or has no recorded checksum.
    pub fn verify_block(&mut self, addr: u64, block: &Block) -> bool {
        self.verify_cksum(addr, block)
    }

    // ==================================================================
    // CPU cost accounting
    // ==================================================================

    fn charge_cpu(&self, ns: u64) {
        if let Some(clock) = &self.opts.cpu_clock {
            clock.advance_ns(ns);
        }
    }

    // ==================================================================
    // Checksum table
    // ==================================================================

    fn load_cksum_table(&mut self) -> VfsResult<()> {
        let entries_per_block = BLOCK_SIZE as u64 / 8;
        // Sequential sweep over the on-disk table; hint it like the replay
        // scan so mount-time loading streams at media rate.
        let sched = IoScheduler::new();
        let mut ra = ScanReadahead::new(
            &sched,
            BlockAddr(self.layout.cksum_start),
            self.layout.cksum_len,
        );
        for i in 0..self.layout.cksum_len {
            let addr = BlockAddr(self.layout.cksum_start + i);
            ra.hint(&mut self.dev, addr);
            let block = match self.dev.read_tagged(addr, BlockType::CksumTable.tag()) {
                Ok(b) => b,
                Err(_) => {
                    self.env
                        .klog
                        .error("ixt3", format!("checksum table block {addr} unreadable"));
                    if self.opts.iron.meta_replication {
                        match self
                            .dev
                            .read_tagged(self.layout.replica_of(addr.0), BlockType::Replica.tag())
                        {
                            Ok(b) => {
                                self.env.klog.info(
                                    "ixt3",
                                    format!("checksum table block {addr} recovered from replica"),
                                );
                                b
                            }
                            Err(_) => return Err(Errno::EIO.into()),
                        }
                    } else {
                        return Err(Errno::EIO.into());
                    }
                }
            };
            for e in 0..entries_per_block {
                let idx = (i * entries_per_block + e) as usize;
                if idx < self.cksums.len() {
                    self.cksums[idx] = block.get_u64((e * 8) as usize);
                }
            }
        }
        Ok(())
    }

    /// Record the checksum of `block` for address `addr` (if the relevant
    /// mechanism is active), marking its table block dirty.
    pub(crate) fn note_cksum(&mut self, addr: u64, block: &Block, is_meta: bool) {
        let active = if is_meta {
            self.opts.iron.meta_checksum
        } else {
            self.opts.iron.data_checksum
        };
        if !active {
            return;
        }
        self.charge_cpu(SHA1_BLOCK_COST_NS);
        self.cksums[addr as usize] = sha1(&block[..]).truncated64();
        let entries_per_block = BLOCK_SIZE as u64 / 8;
        self.dirty_cksum_blocks.insert(addr / entries_per_block);
    }

    /// Verify `block` against the checksum table. Returns `true` if OK (or
    /// if no checksum was recorded for the address).
    pub(crate) fn verify_cksum(&mut self, addr: u64, block: &Block) -> bool {
        let expected = self.cksums[addr as usize];
        if expected == 0 {
            return true;
        }
        self.charge_cpu(SHA1_BLOCK_COST_NS);
        sha1(&block[..]).truncated64() == expected
    }

    /// The expected on-medium content of checksum-table block `i`, built
    /// from the authoritative in-memory table. Table blocks carry no
    /// self-checksums (entry 0, avoiding recursion), so the scrubber
    /// verifies them by comparing against this instead.
    pub fn cksum_table_block(&self, i: u64) -> Block {
        let entries_per_block = BLOCK_SIZE as u64 / 8;
        let mut cb = Block::zeroed();
        for e in 0..entries_per_block {
            let idx = (i * entries_per_block + e) as usize;
            if idx < self.cksums.len() {
                cb.put_u64((e * 8) as usize, self.cksums[idx]);
            }
        }
        cb
    }

    /// Collect the dirty checksum-table blocks as a closed transaction to
    /// merge into the commit batch (journaled and checkpointed like any
    /// other metadata). The table's own blocks carry no self-checksums
    /// (entry 0), avoiding recursion.
    fn take_dirty_cksum_txn(&mut self) -> Option<Txn<Closed>> {
        if self.dirty_cksum_blocks.is_empty() {
            return None;
        }
        let dirty: Vec<u64> = std::mem::take(&mut self.dirty_cksum_blocks)
            .into_iter()
            .collect();
        let mut t = Txn::new();
        for i in dirty {
            if i >= self.layout.cksum_len {
                continue;
            }
            let cb = self.cksum_table_block(i);
            let addr = self.layout.cksum_start + i;
            self.cache.insert(BlockAddr(addr), cb.clone());
            t.put(addr, cb, BlockType::CksumTable);
        }
        Some(t.close())
    }

    /// Write the dirty checksum-table blocks to the medium (scrubber
    /// hook: the scrubber verifies the on-medium table against the
    /// in-memory one, so the medium must be current first).
    pub fn flush_cksum_table(&mut self) {
        self.flush_cksum_blocks();
    }

    fn flush_cksum_blocks(&mut self) {
        if self.dirty_cksum_blocks.is_empty() {
            return;
        }
        let dirty: Vec<u64> = std::mem::take(&mut self.dirty_cksum_blocks)
            .into_iter()
            .collect();
        for i in dirty {
            if i >= self.layout.cksum_len {
                continue;
            }
            let cb = self.cksum_table_block(i);
            let addr = self.layout.cksum_start + i;
            // Write errors here follow the same policy as checkpoint writes.
            let r = self
                .dev
                .write_tagged(BlockAddr(addr), &cb, BlockType::CksumTable.tag());
            if r.is_err() && self.opts.iron.fix_bugs {
                self.abort_journal("checksum table write failure");
            }
            self.mirror_meta_write(addr, &cb);
        }
    }

    // ==================================================================
    // Replication (Mr)
    // ==================================================================

    /// Record the mirror copy of a metadata block (no-op unless `Mr`).
    ///
    /// §6.1: "All metadata blocks are written to a separate replica log;
    /// they are later checkpointed to a fixed location … distant from the
    /// original metadata." The log write streams (sequential); the distant
    /// mirror is updated by [`Self::flush_replicas`], amortizing the long
    /// seeks.
    pub(crate) fn mirror_meta_write(&mut self, addr: u64, block: &Block) {
        if !self.opts.iron.meta_replication {
            return;
        }
        if self.layout.replica_log_len > 0 {
            if self.replica_log_head >= self.layout.replica_log_start + self.layout.replica_log_len
            {
                self.replica_log_head = self.layout.replica_log_start;
            }
            let r = self.dev.write_tagged(
                BlockAddr(self.replica_log_head),
                block,
                BlockType::Replica.tag(),
            );
            self.replica_log_head += 1;
            if r.is_err() && self.opts.iron.fix_bugs {
                self.env
                    .klog
                    .error("ixt3", format!("replica log write failed for block {addr}"));
                self.abort_journal("replica write failure");
                return;
            }
        }
        self.replica_pending.insert(addr, block.clone());
    }

    /// Checkpoint pending replicas to the distant mirror, elevator-sorted.
    pub fn flush_replicas(&mut self) {
        if self.replica_pending.is_empty() {
            return;
        }
        let mut pending: Vec<(u64, Block)> = self.replica_pending.drain().collect();
        pending.sort_by_key(|(a, _)| *a);
        for (addr, block) in pending {
            let replica = self.layout.replica_of(addr);
            let r = self
                .dev
                .write_tagged(replica, &block, BlockType::Replica.tag());
            if r.is_err() && self.opts.iron.fix_bugs {
                self.env
                    .klog
                    .error("ixt3", format!("replica write failed for block {addr}"));
                self.abort_journal("replica write failure");
                return;
            }
        }
        self.commits_since_mirror_flush = 0;
    }

    // ==================================================================
    // Journal control
    // ==================================================================

    /// Abort the journal: ext3's `RStop` — log, mark aborted, remount
    /// read-only.
    pub(crate) fn abort_journal(&mut self, why: &str) {
        if self.journal_aborted {
            return;
        }
        self.journal_aborted = true;
        // The journal abort *is* the DegradeReadOnly rung of the policy
        // engine: count it against the shared policy counters so every
        // degradation — whatever site triggered it — is observable.
        self.opts.policy.counters().count_degrade();
        self.env.klog.error(
            "ext3",
            format!("ext3_abort called: {why}; remounting filesystem read-only"),
        );
        self.env.remount_readonly("ext3", "journal has aborted");
    }

    /// Stage a metadata block into the running transaction. (Checksums are
    /// computed once per commit, over the final images.)
    pub(crate) fn write_meta(&mut self, addr: u64, block: Block, ty: BlockType) {
        self.cache.insert(BlockAddr(addr), block.clone());
        self.running.put(addr, block, ty);
    }

    /// Revoke a freed metadata block so neither checkpoint nor journal
    /// replay can resurrect it: the running transaction drops its staged
    /// copy and records the revoke, and every committed-but-not-yet-
    /// checkpointed transaction *forgets* its copy (JBD `journal_forget`)
    /// so a deferred checkpoint cannot write a stale image over the block
    /// once it is reused.
    pub(crate) fn revoke_meta(&mut self, addr: u64) {
        self.running.revoke(addr);
        for t in &mut self.pending {
            t.forget(addr);
        }
        self.cache.invalidate(BlockAddr(addr));
    }

    /// The freshest staged copy of `addr`, if any: the running
    /// transaction, then the group-commit batch, then the newest pending
    /// committed transaction. The read path consults this before the
    /// buffer cache — the cache can evict, and with pipelined
    /// checkpointing the home location is stale until the drain.
    pub(crate) fn staged_copy(&self, addr: u64) -> Option<&Block> {
        self.running
            .get(addr)
            .or_else(|| self.closed.as_ref().and_then(|c| c.get(addr)))
            .or_else(|| self.pending.iter().rev().find_map(|t| t.get(addr)))
    }

    /// Freeze the running transaction into the group-commit batch.
    fn close_running(&mut self) {
        if self.running.is_empty() {
            return;
        }
        let t = std::mem::take(&mut self.running).close();
        self.closed = Some(match self.closed.take() {
            Some(batch) => batch.merge(t),
            None => t,
        });
    }

    /// True if the batch would still fit in the journal after absorbing
    /// the running transaction (counting descriptor/revoke overhead and
    /// the checksum-table blocks staged at commit time).
    fn batch_has_room(&self) -> bool {
        let blocks = self.closed.as_ref().map_or(0, |t| t.len()) + self.running.len();
        let needed =
            blocks as u64 + blocks.div_ceil(DESC_CAPACITY) as u64 + self.layout.cksum_len + 8;
        needed <= self.layout.journal_len
    }

    /// Commit or batch the running transaction once it passes the
    /// threshold. With `group_commit > 1` the transaction is *closed*
    /// into the batch instead — no I/O — until the batch holds that many
    /// transactions (or would outgrow the journal), then the whole batch
    /// is logged under one descriptor chain, commit block, and barrier
    /// pair.
    pub(crate) fn maybe_commit(&mut self) -> VfsResult<()> {
        if self.running.len() < self.opts.commit_threshold {
            return Ok(());
        }
        let batched = self.closed.as_ref().map_or(0, Txn::batched);
        if self.opts.group_commit > 1
            && batched + 1 < self.opts.group_commit
            && self.batch_has_room()
        {
            self.close_running();
            return Ok(());
        }
        self.commit()
    }

    /// Commit the batch (the group-commit queue plus the running
    /// transaction, merged): revoke records, descriptor chain, journal
    /// copies, commit block — then checkpoint now (`checkpoint_lag == 0`)
    /// or queue the committed transaction for a later pipelined drain.
    ///
    /// The write→commit→checkpoint ordering itself lives in the typestate
    /// chain ([`Txn<Closed>::log`] → [`Txn<Logged>::commit`] →
    /// [`checkpoint_group`]); this method supplies the *policy*: stock
    /// ext3 (`PAPER-BUG`s, §5.1) ignores journal and checkpoint write
    /// errors, `fix_bugs` aborts the journal and propagates `EIO`.
    ///
    /// With `Tc` the pre-commit barrier is skipped and the commit block
    /// carries a checksum over the transaction (§6.1).
    pub fn commit(&mut self) -> VfsResult<()> {
        self.close_running();
        let batch = match self.closed.take() {
            Some(b) if !b.is_empty() => b,
            _ => {
                self.flush_parity()?;
                return Ok(());
            }
        };
        if self.journal_aborted {
            // The batch is dropped: an aborted journal accepts nothing.
            return Err(Errno::EROFS.into());
        }
        let seq = self.jseq;

        // Metadata checksums are computed once per commit over the final
        // block images, and the dirty checksum-table blocks then join the
        // batch — the paper places checksums "first into the journal, and
        // then checkpoint[s them] to their final location, distant from
        // the blocks they checksum."
        let batch = if self.opts.iron.meta_checksum || self.opts.iron.data_checksum {
            if self.opts.iron.meta_checksum {
                for (addr, b, _) in batch.blocks() {
                    self.note_cksum(addr, &b, true);
                }
            }
            match self.take_dirty_cksum_txn() {
                Some(ct) => batch.merge(ct),
                None => batch,
            }
        } else {
            batch
        };

        // Space check: drain pending checkpoints (which frees the whole
        // log) if the batch wouldn't fit; without pending transactions
        // fall back to the legacy cursor reset.
        let needed = batch.log_space_needed();
        if self.log_head + needed > self.layout.journal_start + self.layout.journal_len {
            if !self.opts.crash_mode && !self.pending.is_empty() {
                self.drain_checkpoints()?;
            } else {
                self.log_head = self.layout.journal_start;
            }
        }

        // Mark the journal dirty before logging. The recorded sequence is
        // the first *unflushed* transaction: replay applies transactions
        // from that sequence onward and stops at anything older (stale log
        // tails from already-checkpointed transactions). With pipelined
        // checkpointing the journal simply stays dirty across commits
        // until the drain, so the first pending sequence is preserved.
        if !self.journal_dirty_on_disk {
            let js_dirty = JournalSuper {
                sequence: seq,
                dirty: true,
                log_len: self.layout.journal_len,
            };
            let r = self.dev.write_tagged(
                BlockAddr(self.layout.journal_super),
                &js_dirty.encode(),
                BlockType::JournalSuper.tag(),
            );
            if r.is_err() {
                // Stock ext3 ignores even this (PAPER-BUG); fixed engine
                // aborts.
                if self.opts.iron.fix_bugs {
                    self.abort_journal("journal superblock write failure");
                    return Err(Errno::EIO.into());
                }
            }
            self.journal_dirty_on_disk = true;
        }

        // Log the batch. (`legacy_group_commit_bug` defers the journal
        // data until after the commit block — the deliberately broken
        // ordering the crash enumerator must catch.)
        let defer_data = self.opts.legacy_group_commit_bug;
        let logged = {
            let mut sink = JournalLog {
                dev: &mut self.dev,
                head: &mut self.log_head,
            };
            batch.log(seq, &mut sink, defer_data)
        };
        if logged.log_write_failed() {
            if self.opts.iron.fix_bugs {
                // ixt3: a failed journal write must not be committed —
                // dropping the Txn<Logged> aborts it (nothing replays
                // without a commit block).
                self.env
                    .klog
                    .error("ext3", "journal write failed; aborting transaction");
                self.abort_journal("journal write failure");
                return Err(Errno::EIO.into());
            }
            // PAPER-BUG: stock ext3 "still writes the rest of the
            // transaction, including the commit block, to the journal;
            // thus, if the journal is later used for recovery, the file
            // system can easily become corrupted."
            self.env
                .klog
                .warn("ext3", "journal write error ignored (stock ext3 behavior)");
        }

        // Transactional checksum (Tc) removes the pre-commit barrier; the
        // commit transition issues the barriers and the commit block.
        let with_tc = self.opts.iron.txn_checksum;
        if with_tc {
            self.charge_cpu(SHA1_BLOCK_COST_NS * logged.log_block_count() as u64 / 4);
        }
        let committed = {
            let mut sink = JournalLog {
                dev: &mut self.dev,
                head: &mut self.log_head,
            };
            logged.commit(with_tc, &mut sink)
        };
        if committed.commit_write_failed() {
            if self.opts.iron.fix_bugs {
                committed.abandon();
                self.abort_journal("commit block write failure");
                return Err(Errno::EIO.into());
            }
            // PAPER-BUG: commit-block write error ignored; stock ext3
            // proceeds to checkpoint as if the transaction committed.
            self.env.klog.warn(
                "ext3",
                "commit block write error ignored (stock ext3 behavior)",
            );
        }

        self.jseq = seq + 1;
        // The batch's frees are durable once its commit block is written:
        // freed blocks become allocatable again.
        self.uncommitted_frees.clear();

        if self.opts.crash_mode {
            // Simulated crash window: committed but never checkpointed.
            committed.abandon();
            return Ok(());
        }

        self.pending.push(committed);
        // Parity before the drain: the clean journal superblock (written
        // at the end of a drain, behind the fix_bugs barrier) must never
        // become durable while parity accumulators are still volatile.
        self.flush_parity()?;
        let pending_blocks: usize = self.pending.iter().map(|t| t.len()).sum();
        if self.opts.checkpoint_lag == 0 || pending_blocks > self.opts.checkpoint_lag {
            self.drain_checkpoints()?;
        }
        Ok(())
    }

    /// Drain every pending committed transaction to its home location in
    /// one deduplicated elevator sweep, then mark the journal clean. The
    /// public entry point for "make the medium current" callers (unmount,
    /// the scrubber, benches).
    pub fn checkpoint_now(&mut self) -> VfsResult<()> {
        self.drain_checkpoints()
    }

    /// Checkpoint: home-location writes, elevator-sorted (the kernel's
    /// writeback submits checkpoint I/O in address order) and deduplicated
    /// across the pending group, then the mirror copies as a second sorted
    /// sweep — batching keeps the distant-replica cost at two long seeks
    /// per drain instead of two per block.
    fn drain_checkpoints(&mut self) -> VfsResult<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let group = std::mem::take(&mut self.pending);
        let drained = group.len() as u32;
        let fix_bugs = self.opts.iron.fix_bugs;
        let policy = self.opts.policy.clone();
        let cpu_clock = self.opts.cpu_clock.clone();
        let klog = self.env.klog.clone();
        let dev = &mut self.dev;
        let mut failed_addrs: Vec<u64> = Vec::new();
        let sweep = checkpoint_group(group, |addr, b, ty| {
            let mut ok = dev.write_tagged(BlockAddr(addr), b, ty.tag()).is_ok();
            if !ok && fix_bugs {
                // Enact any leading Retry rungs of the metadata-write
                // chain right here, while the failed image is in hand;
                // later rungs (DegradeReadOnly) are applied by the
                // post-sweep abort below. The stock chain has no retry,
                // so this is dormant until a policy configures one.
                let chain = policy.chain_for(ty.tag(), IoKind::Write, ErrorClass::Io);
                'chain: for action in chain {
                    let RecoveryAction::Retry { budget, backoff } = action else {
                        break 'chain;
                    };
                    for reissue in 1..=budget {
                        let delay = backoff.delay_ns(reissue);
                        if delay > 0 {
                            if let Some(c) = &cpu_clock {
                                c.advance_ns(delay);
                            }
                            policy.counters().add_backoff_ns(delay);
                        }
                        policy.record(
                            &klog,
                            "ext3",
                            action,
                            &format!("checkpoint write {addr} re-issue {reissue}/{budget}"),
                        );
                        if dev.write_tagged(BlockAddr(addr), b, ty.tag()).is_ok() {
                            ok = true;
                            policy.counters().count_masked();
                            break 'chain;
                        }
                    }
                    policy.counters().count_exhausted();
                }
            }
            if !ok {
                failed_addrs.push(addr);
                // PAPER-BUG (stock): checkpoint write errors are ignored
                // ("when checkpointing a transaction to its final
                // location") — the block silently never reaches home.
            }
            ok
        });
        if fix_bugs {
            for addr in &failed_addrs {
                self.env
                    .klog
                    .error("ext3", format!("checkpoint write of block {addr} failed"));
            }
        }
        for (addr, b, ty) in &sweep.written {
            if ty.is_metadata() || *ty == BlockType::CksumTable {
                self.mirror_meta_write(*addr, b);
            }
        }
        self.commits_since_mirror_flush += drained;
        if self.commits_since_mirror_flush >= 16 {
            self.flush_replicas();
        }

        if sweep.write_failed && fix_bugs {
            self.abort_journal("checkpoint write failure");
            return Err(Errno::EIO.into());
        }

        // Order checkpoint before the clean journal superblock. Stock
        // ext3 issues both in one barrier epoch, so under a write-back
        // drive cache the clean marker can land while home-location
        // writes are still volatile — a crash there skips replay and
        // loses the committed transaction (found by the iron-crash
        // enumerator; kept paper-faithful for stock ext3, fixed in ixt3).
        if fix_bugs {
            let _ = self.dev.barrier();
        }

        // Mark the journal clean again; only retired (checkpointed)
        // transactions can advance the clean sequence.
        let mut clean_seq = self.jseq;
        for t in sweep.txns {
            clean_seq = clean_seq.max(t.retire() + 1);
        }
        let js_clean = JournalSuper {
            sequence: clean_seq,
            dirty: false,
            log_len: self.layout.journal_len,
        };
        let r = self.dev.write_tagged(
            BlockAddr(self.layout.journal_super),
            &js_clean.encode(),
            BlockType::JournalSuper.tag(),
        );
        if r.is_err() && fix_bugs {
            self.abort_journal("journal superblock write failure");
        }
        self.journal_dirty_on_disk = false;
        self.log_head = self.layout.journal_start;
        Ok(())
    }

    /// Flush dirty per-file parity accumulators (`Dp`).
    pub(crate) fn flush_parity(&mut self) -> VfsResult<()> {
        if self.parity_dirty.is_empty() {
            return Ok(());
        }
        let mut dirty: Vec<(u64, Block)> = self.parity_dirty.drain().collect();
        // Elevator order by parity-block address for the flush sweep.
        let mut with_addr: Vec<(u64, u64, Block)> = Vec::with_capacity(dirty.len());
        for (ino, block) in dirty.drain(..) {
            let di = self.raw_iget(ino)?;
            with_addr.push((di.parity as u64, ino, block));
        }
        with_addr.sort_by_key(|(addr, _, _)| *addr);
        for (_, ino, block) in with_addr {
            let di = self.raw_iget(ino)?;
            if di.parity == 0 {
                continue;
            }
            let addr = di.parity as u64;
            let r = self
                .dev
                .write_tagged(BlockAddr(addr), &block, BlockType::Parity.tag());
            if r.is_err() {
                if self.opts.iron.fix_bugs {
                    self.env
                        .klog
                        .error("ixt3", format!("parity write failed for inode {ino}"));
                    self.abort_journal("parity write failure");
                    return Err(Errno::EIO.into());
                }
            } else {
                self.cache.insert(BlockAddr(addr), block);
            }
        }
        Ok(())
    }

    /// XOR `old` out of and `new` into the parity accumulator for `ino`.
    pub(crate) fn parity_update(&mut self, ino: u64, parity_addr: u64, old: &Block, new: &Block) {
        self.charge_cpu(XOR_BLOCK_COST_NS * 2);
        let acc = match self.parity_dirty.entry(ino) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                // Load the current parity block (cache → disk → zeros).
                let cur = self
                    .cache
                    .get(BlockAddr(parity_addr))
                    .or_else(|| {
                        self.dev
                            .read_tagged(BlockAddr(parity_addr), BlockType::Parity.tag())
                            .ok()
                    })
                    .unwrap_or_else(Block::zeroed);
                e.insert(cur)
            }
        };
        for i in 0..BLOCK_SIZE {
            acc[i] ^= old[i] ^ new[i];
        }
    }

    // ==================================================================
    // Journal replay (mount-time recovery)
    // ==================================================================

    /// Replay the journal after an unclean shutdown.
    ///
    /// Stock ext3 type-checks journal descriptor and commit blocks
    /// (`DSanity`) but replays journal *data* blindly — a corrupted
    /// journal-data block is written straight over its home location. With
    /// `Tc`, the transaction checksum catches it and the transaction is
    /// skipped (the paper's crash-semantics argument for `Tc`).
    fn replay_journal(&mut self) -> VfsResult<()> {
        self.env
            .klog
            .info("ext3", "recovery required; replaying journal");
        let start = self.layout.journal_start;
        let end = start + self.layout.journal_len;

        // Pass 1: scan transactions (descriptor…data…commit), collecting
        // revokes and the set of committed transactions.
        #[derive(Debug)]
        struct PendingTxn {
            sequence: u64,
            entries: Vec<(u64, BlockType)>,
            data: Vec<Block>,
            images: Vec<Block>,
            checksum: Option<u64>,
        }
        let mut committed: Vec<PendingTxn> = Vec::new();
        // Revokes are sequence-scoped, as in JBD: a revoke recorded at
        // sequence S suppresses copies of the block logged at sequence <= S
        // only. A later transaction that re-logs the block (after reuse)
        // must still be replayed. Scanned revokes are *tentative* until
        // their own transaction's commit block is seen: a revoke from an
        // uncommitted (crash-torn) transaction must not suppress replay of
        // an earlier committed transaction's staged copy. Found by the
        // iron-crash enumerator on the pipelined profile: with checkpoint
        // lag a committed batch's home blocks aren't written yet, and a
        // torn successor's revoke silently discarded the only good copy of
        // a freed-then-staged directory block.
        let mut scanned_revokes: Vec<(u64, Vec<u64>)> = Vec::new();
        // Revoke blocks logged since the last commit. commit() includes
        // them in the transactional checksum (they are written first, before
        // the descriptor), so replay must hash the same block set — found by
        // the iron-crash enumerator: a fully-durable transaction carrying a
        // revoke failed Tc on replay because the revoke image was missing
        // from the replay-side hash.
        let mut pending_revoke_images: Vec<Block> = Vec::new();
        // The scan is strictly ascending over the whole journal region, so
        // plan it into elevator sweeps and hint each one ahead of the reads:
        // the disk streams the swept blocks from its track buffer instead of
        // re-positioning per block. Purely a timing hint — the tagged read
        // stream (what fault injection and traces see) is unchanged.
        let sched = IoScheduler::new();
        let mut ra = ScanReadahead::new(&sched, BlockAddr(start), self.layout.journal_len);
        let mut pos = start;
        'scan: while pos < end {
            ra.hint(&mut self.dev, BlockAddr(pos));
            let block = match self
                .dev
                .read_tagged(BlockAddr(pos), BlockType::JournalDesc.tag())
            {
                Ok(b) => b,
                Err(_) => {
                    // Read failure in the log: stop recovery, mount
                    // read-only (RStop + RPropagate).
                    self.env.klog.error(
                        "ext3",
                        format!("journal block {pos} unreadable; aborting recovery"),
                    );
                    self.env.remount_readonly("ext3", "journal recovery failed");
                    return Ok(());
                }
            };
            match classify_log_block(&block) {
                Some(JournalRecord::Revoke(r)) => {
                    if r.sequence < self.jseq {
                        break 'scan;
                    }
                    scanned_revokes.push((r.sequence, r.addrs));
                    pending_revoke_images.push(block.clone());
                    pos += 1;
                }
                Some(JournalRecord::Descriptor(desc)) => {
                    if desc.sequence < self.jseq {
                        // Stale log tail from an already-checkpointed
                        // transaction: recovery ends here.
                        break 'scan;
                    }
                    let mut images = std::mem::take(&mut pending_revoke_images);
                    images.push(block.clone());
                    let mut data = Vec::new();
                    let n = desc.entries.len() as u64;
                    for i in 0..n {
                        let daddr = pos + 1 + i;
                        if daddr >= end {
                            break 'scan; // truncated transaction
                        }
                        ra.hint(&mut self.dev, BlockAddr(daddr));
                        match self
                            .dev
                            .read_tagged(BlockAddr(daddr), BlockType::JournalData.tag())
                        {
                            Ok(b) => {
                                images.push(b.clone());
                                data.push(b);
                            }
                            Err(_) => {
                                self.env.klog.error(
                                    "ext3",
                                    format!(
                                        "journal data block {daddr} unreadable; aborting recovery"
                                    ),
                                );
                                self.env.remount_readonly("ext3", "journal recovery failed");
                                return Ok(());
                            }
                        }
                    }
                    let cpos = pos + 1 + n;
                    if cpos >= end {
                        break 'scan;
                    }
                    ra.hint(&mut self.dev, BlockAddr(cpos));
                    let cblock = match self
                        .dev
                        .read_tagged(BlockAddr(cpos), BlockType::JournalCommit.tag())
                    {
                        Ok(b) => b,
                        Err(_) => {
                            self.env.klog.error(
                                "ext3",
                                format!("commit block {cpos} unreadable; aborting recovery"),
                            );
                            self.env.remount_readonly("ext3", "journal recovery failed");
                            return Ok(());
                        }
                    };
                    match CommitBlock::decode(&cblock) {
                        // JBD validates the commit sequence against the
                        // transaction it closes: a stale commit block left
                        // over from an earlier pass through the log must
                        // not validate a torn transaction whose own commit
                        // never landed (found by the iron-crash
                        // enumerator: the stale commit completed a
                        // partially-written transaction and replay copied
                        // leftover journal bytes over home metadata).
                        Some(c) if c.sequence == desc.sequence => {
                            committed.push(PendingTxn {
                                sequence: desc.sequence,
                                entries: desc.entries,
                                data,
                                images,
                                checksum: c.txn_checksum,
                            });
                            pos = cpos + 1;
                        }
                        _ => {
                            // No commit block for this transaction: either
                            // the crash landed mid-commit (normal), the
                            // commit block is corrupt, or it belongs to an
                            // older transaction — the transaction is not
                            // replayed and recovery ends here.
                            self.env.klog.warn(
                                "ext3",
                                format!(
                                    "journal block {cpos} is not this transaction's commit; \
                                     transaction ignored"
                                ),
                            );
                            break 'scan;
                        }
                    }
                }
                _ => {
                    if !block.is_zeroed() {
                        // The journal's type checks rejected this block
                        // (corrupt descriptor or stray contents): recovery
                        // stops here, as in real JBD.
                        self.env.klog.warn(
                            "ext3",
                            format!("journal block {pos} invalid; recovery ends"),
                        );
                    }
                    break 'scan;
                }
            }
        }

        // Transactional checksums are validated *before* the revoke pass:
        // recovery stops at the first transaction whose checksum
        // mismatches, so a revoke carried by a discarded transaction must
        // not suppress replay of an earlier committed transaction's staged
        // copy (found by the batched-commit crash campaigns: a torn batch
        // with its commit block but missing journal data fails Tc, yet its
        // revoke records would otherwise silence the predecessor's
        // directory blocks).
        if self.opts.iron.txn_checksum {
            let mut valid = committed.len();
            for (i, txn) in committed.iter().enumerate() {
                if let Some(expected) = txn.checksum {
                    let refs: Vec<&Block> = txn.images.iter().collect();
                    if txn_checksum(&refs) != expected {
                        // Tc detects the damaged transaction; it and
                        // everything after it are not replayed
                        // (DRedundancy + RStop at transaction granularity).
                        self.env.klog.error(
                            "ixt3",
                            "transactional checksum mismatch; recovery stops here",
                        );
                        valid = i;
                        break;
                    }
                }
            }
            committed.truncate(valid);
        }

        // Only revokes whose carrying transaction committed take effect
        // (JBD's revoke pass runs over committed transactions only).
        let committed_seqs: BTreeSet<u64> = committed.iter().map(|t| t.sequence).collect();
        let mut revoked: BTreeMap<u64, u64> = BTreeMap::new();
        for (sequence, addrs) in scanned_revokes {
            if !committed_seqs.contains(&sequence) {
                continue;
            }
            for a in addrs {
                let e = revoked.entry(a).or_insert(sequence);
                *e = (*e).max(sequence);
            }
        }

        // Pass 2: apply, in order. Redo logging is sequential: once a
        // transaction fails its checksum, later transactions may depend on
        // it, so recovery STOPS there (the paper's Tc semantics — "reliably
        // detect the crash and not replay the transaction" — generalized to
        // mid-log damage). The checksum cut already happened above, before
        // the revoke pass, so `committed` holds only transactions that
        // really replay.
        let mut mirror_writes: Vec<(u64, Block)> = Vec::new();
        for txn in &committed {
            for ((addr, ty), data) in txn.entries.iter().zip(&txn.data) {
                let suppressed = if self.opts.legacy_journal_bugs {
                    // Seed bug (see Ext3Options::legacy_journal_bugs): a
                    // revoke suppressed *every* logged copy of the block,
                    // including ones re-logged after reuse.
                    revoked.contains_key(addr)
                } else {
                    revoked.get(addr).is_some_and(|&rs| rs >= txn.sequence)
                };
                if suppressed {
                    continue;
                }
                // PAPER-NOTE: stock ext3 replays journal data with no
                // content checks — corrupted journal data lands on the home
                // location. (Detected only under Tc, above.)
                let r = self.dev.write_tagged(BlockAddr(*addr), data, ty.tag());
                if r.is_err() && self.opts.iron.fix_bugs {
                    self.env
                        .klog
                        .error("ext3", format!("replay write of block {addr} failed"));
                    self.env.remount_readonly("ext3", "journal recovery failed");
                    return Ok(());
                }
                self.note_cksum(*addr, data, ty.is_metadata());
                if self.opts.iron.meta_replication && ty.is_metadata() {
                    mirror_writes.push((*addr, data.clone()));
                }
            }
        }
        for (addr, b) in mirror_writes {
            self.mirror_meta_write(addr, &b);
        }
        self.flush_cksum_blocks();

        // Journal is clean again.
        let js = JournalSuper {
            sequence: self.jseq + committed.len() as u64,
            dirty: false,
            log_len: self.layout.journal_len,
        };
        self.jseq = js.sequence;
        let r = self.dev.write_tagged(
            BlockAddr(self.layout.journal_super),
            &js.encode(),
            BlockType::JournalSuper.tag(),
        );
        if r.is_err() && self.opts.iron.fix_bugs {
            self.env
                .klog
                .error("ext3", "journal superblock write failed after recovery");
            self.env
                .remount_readonly("ext3", "journal superblock write failure");
        }
        self.env.klog.info(
            "ext3",
            format!(
                "recovery complete; {} transaction(s) replayed",
                committed.len()
            ),
        );
        Ok(())
    }
}

//! The IRON switchboard: which §6 mechanisms are active.
//!
//! Table 6 of the paper evaluates all 32 combinations of five mechanisms;
//! [`IronConfig::all_combinations`] enumerates them in the paper's row
//! order. `fix_bugs` additionally disables every `PAPER-BUG` in the engine —
//! the paper notes "In the process of building ixt3, we also fixed numerous
//! bugs within ext3."

use std::fmt;

/// Which IRON mechanisms are enabled in the ext3/ixt3 engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct IronConfig {
    /// `Mc`: checksum metadata blocks; verify on read.
    pub meta_checksum: bool,
    /// `Mr`: replicate metadata to the distant mirror region; read the
    /// replica when the primary fails or fails its checksum.
    pub meta_replication: bool,
    /// `Dc`: checksum data blocks; verify on read.
    pub data_checksum: bool,
    /// `Dp`: per-file parity block; reconstruct a lost data block.
    pub data_parity: bool,
    /// `Tc`: transactional checksums — commit without the pre-commit
    /// barrier; recovery validates the transaction checksum.
    pub txn_checksum: bool,
    /// Fix the stock-ext3 `PAPER-BUG`s (check write error codes, propagate
    /// truncate/rmdir errors, check link counts, squelch post-abort writes).
    pub fix_bugs: bool,
    /// `Rm` (extension): remap data blocks whose *write* fails to a fresh
    /// location instead of aborting — the `RRemap` level of Table 2, which
    /// the paper describes ("when a write to a given block fails, the file
    /// system could choose to simply write the block to another location")
    /// but no studied system implements. Off in the paper's Figure 3
    /// configuration; the `remap` tests and ablation exercise it.
    pub remap_writes: bool,
}

impl IronConfig {
    /// Stock ext3: nothing enabled, bugs intact.
    pub fn off() -> Self {
        IronConfig::default()
    }

    /// Full ixt3: every mechanism on, bugs fixed (Figure 3's configuration).
    pub fn full() -> Self {
        IronConfig {
            meta_checksum: true,
            meta_replication: true,
            data_checksum: true,
            data_parity: true,
            txn_checksum: true,
            fix_bugs: true,
            remap_writes: false,
        }
    }

    /// True if any on-read verification or redundancy is active.
    pub fn any_iron(&self) -> bool {
        self.meta_checksum
            || self.meta_replication
            || self.data_checksum
            || self.data_parity
            || self.txn_checksum
    }

    /// The 32 Table-6 variants, in the paper's row order (row 0 = baseline
    /// ext3 … row 31 = all five). The paper's rows enumerate combinations
    /// of {Mc, Mr, Dc, Dp, Tc} by subset size; we enumerate the same sets
    /// by bitmask, which covers the same 32 configurations.
    ///
    /// All variants have `fix_bugs` set (ixt3 is the bug-fixed engine).
    pub fn all_combinations() -> Vec<IronConfig> {
        (0u8..32)
            .map(|mask| IronConfig {
                meta_checksum: mask & 1 != 0,
                meta_replication: mask & 2 != 0,
                data_checksum: mask & 4 != 0,
                data_parity: mask & 8 != 0,
                txn_checksum: mask & 16 != 0,
                fix_bugs: true,
                remap_writes: false,
            })
            .collect()
    }

    /// Table-6-style label, e.g. `"Mc Mr Tc"`; baseline renders as
    /// `"(ext3)"`.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.meta_checksum {
            parts.push("Mc");
        }
        if self.meta_replication {
            parts.push("Mr");
        }
        if self.data_checksum {
            parts.push("Dc");
        }
        if self.data_parity {
            parts.push("Dp");
        }
        if self.txn_checksum {
            parts.push("Tc");
        }
        if self.remap_writes {
            parts.push("Rm");
        }
        if parts.is_empty() {
            "(ext3)".to_string()
        } else {
            parts.join(" ")
        }
    }
}

impl fmt::Display for IronConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Simulated CPU cost of computing a SHA-1 over one 4 KiB block, charged to
/// the simulated clock when checksumming is active (~25 µs, a 2.4 GHz P4 of
/// the paper's era at roughly 160 MB/s SHA-1 throughput).
pub const SHA1_BLOCK_COST_NS: u64 = 25_000;

/// Simulated CPU cost of XORing one 4 KiB block into a parity accumulator.
pub const XOR_BLOCK_COST_NS: u64 = 1_500;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_all_false() {
        let c = IronConfig::off();
        assert!(!c.any_iron());
        assert!(!c.fix_bugs);
        assert_eq!(c.label(), "(ext3)");
    }

    #[test]
    fn full_enables_everything() {
        let c = IronConfig::full();
        assert!(c.any_iron());
        assert!(c.meta_checksum && c.meta_replication && c.data_checksum);
        assert!(c.data_parity && c.txn_checksum && c.fix_bugs);
        assert_eq!(c.label(), "Mc Mr Dc Dp Tc");
    }

    #[test]
    fn thirty_two_distinct_combinations() {
        let all = IronConfig::all_combinations();
        assert_eq!(all.len(), 32);
        let mut labels: Vec<String> = all.iter().map(IronConfig::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 32, "every combination is distinct");
        assert_eq!(all[0].label(), "(ext3)");
        assert!(all.iter().all(|c| c.fix_bugs));
    }
}

//! Journal block formats and the typestate transaction API.
//!
//! ext3-style full-block journaling (JBD): a transaction is a descriptor
//! block naming the home addresses, the journaled copies themselves, and a
//! commit block. Revoke blocks name addresses that must *not* be replayed.
//! The commit block optionally carries a **transactional checksum** over the
//! whole transaction (the paper's `Tc`, §6.1) — that is what lets ixt3 issue
//! the commit without waiting for the journal data, and what lets recovery
//! reject a partially written transaction.
//!
//! The in-memory transaction is a **typestate chain** (SquirrelFS-style):
//!
//! ```text
//! Txn<Building> --close()--> Txn<Closed> --log()--> Txn<Logged>
//!     --commit()--> Txn<Committed> --checkpoint_group()--> Txn<Checkpointed>
//!     --retire()--> sequence number
//! ```
//!
//! Each transition consumes the previous state, so the orderings the
//! paper's §2.2 failure analysis blames for most loss windows are
//! unrepresentable:
//!
//! * `revoke` exists only on [`Txn<Building>`] — a frozen or logged
//!   transaction cannot change its revoke set after its records are
//!   on disk;
//! * `forget` exists only on [`Txn<Committed>`] (JBD's `journal_forget`):
//!   dropping a freed block from the *checkpoint* set is meaningful only
//!   after the log copy is durable and before it is written home — the
//!   PR-1 freed-blocks-not-forgotten bug is now a type error;
//! * checkpointing is only reachable *through* [`Txn<Logged>::commit`],
//!   which issues the durable-commit barrier internally — home-location
//!   writes cannot start before the commit block is on its way;
//! * the clean journal superblock needs the sequence number that only
//!   [`Txn<Checkpointed>::retire`] returns — the journal cannot be marked
//!   clean while any committed transaction is still un-checkpointed.
//!
//! Group commit batches several [`Txn<Closed>`] into one logged unit via
//! [`Txn<Closed>::merge`]; pipelined checkpointing holds [`Txn<Committed>`]
//! back and later drains them in one deduplicated elevator sweep via
//! [`checkpoint_group`].

use std::collections::{BTreeMap, BTreeSet, HashMap};

use iron_core::checksum::{crc32_update, sha1};
use iron_core::{Block, BLOCK_SIZE};

use crate::layout::BlockType;

/// Magic for the journal superblock.
pub const JSUPER_MAGIC: u32 = 0xC03B_3998; // JBD's real magic
/// Block-type discriminator within journal control blocks.
const JDESC_KIND: u32 = 1;
const JCOMMIT_KIND: u32 = 2;
const JREVOKE_KIND: u32 = 5;

/// Decoded journal superblock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalSuper {
    /// Next transaction sequence number.
    pub sequence: u64,
    /// True if the log may contain committed-but-not-checkpointed
    /// transactions (recovery needed).
    pub dirty: bool,
    /// Length of the log area in blocks.
    pub log_len: u64,
}

impl JournalSuper {
    /// Serialize.
    pub fn encode(&self) -> Block {
        let mut b = Block::zeroed();
        b.put_u32(0, JSUPER_MAGIC);
        b.put_u64(8, self.sequence);
        b.put_u32(16, u32::from(self.dirty));
        b.put_u64(24, self.log_len);
        b
    }

    /// Decode; `None` on bad magic (ext3 *does* type-check its journal
    /// superblock — §5.1).
    pub fn decode(b: &Block) -> Option<JournalSuper> {
        if b.get_u32(0) != JSUPER_MAGIC {
            return None;
        }
        Some(JournalSuper {
            sequence: b.get_u64(8),
            dirty: b.get_u32(16) != 0,
            log_len: b.get_u64(24),
        })
    }
}

/// Maximum home-address records in one descriptor block.
pub const DESC_CAPACITY: usize = (BLOCK_SIZE - 32) / 12;

/// A journal descriptor block: the home addresses (and types) of the
/// journaled copies that follow it in the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DescriptorBlock {
    /// Transaction sequence number.
    pub sequence: u64,
    /// (home address, block type) per following journal-data block.
    pub entries: Vec<(u64, BlockType)>,
}

impl DescriptorBlock {
    /// Serialize.
    ///
    /// # Panics
    /// Panics if there are more than [`DESC_CAPACITY`] entries.
    pub fn encode(&self) -> Block {
        assert!(self.entries.len() <= DESC_CAPACITY, "descriptor overflow");
        let mut b = Block::zeroed();
        b.put_u32(0, JSUPER_MAGIC);
        b.put_u32(4, JDESC_KIND);
        b.put_u64(8, self.sequence);
        b.put_u32(16, self.entries.len() as u32);
        let mut off = 32;
        for (addr, ty) in &self.entries {
            b.put_u64(off, *addr);
            b[off + 8] = ty.code();
            off += 12;
        }
        b
    }

    /// Decode; `None` on bad magic/kind/counts (ext3 type-checks journal
    /// descriptor blocks).
    pub fn decode(b: &Block) -> Option<DescriptorBlock> {
        if b.get_u32(0) != JSUPER_MAGIC || b.get_u32(4) != JDESC_KIND {
            return None;
        }
        let count = b.get_u32(16) as usize;
        if count > DESC_CAPACITY {
            return None;
        }
        let mut entries = Vec::with_capacity(count);
        let mut off = 32;
        for _ in 0..count {
            let addr = b.get_u64(off);
            let ty = BlockType::from_code(b[off + 8])?;
            entries.push((addr, ty));
            off += 12;
        }
        Some(DescriptorBlock {
            sequence: b.get_u64(8),
            entries,
        })
    }
}

/// A journal commit block, optionally carrying a transactional checksum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitBlock {
    /// Transaction sequence number.
    pub sequence: u64,
    /// Transactional checksum over descriptor + journal data (present only
    /// when `Tc` is enabled).
    pub txn_checksum: Option<u64>,
}

impl CommitBlock {
    /// Serialize.
    pub fn encode(&self) -> Block {
        let mut b = Block::zeroed();
        b.put_u32(0, JSUPER_MAGIC);
        b.put_u32(4, JCOMMIT_KIND);
        b.put_u64(8, self.sequence);
        match self.txn_checksum {
            Some(c) => {
                b.put_u32(16, 1);
                b.put_u64(24, c);
            }
            None => b.put_u32(16, 0),
        }
        b
    }

    /// Decode; `None` on bad magic/kind.
    pub fn decode(b: &Block) -> Option<CommitBlock> {
        if b.get_u32(0) != JSUPER_MAGIC || b.get_u32(4) != JCOMMIT_KIND {
            return None;
        }
        let txn_checksum = if b.get_u32(16) != 0 {
            Some(b.get_u64(24))
        } else {
            None
        };
        Some(CommitBlock {
            sequence: b.get_u64(8),
            txn_checksum,
        })
    }
}

/// A revoke block: home addresses that must not be replayed from earlier
/// transactions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RevokeBlock {
    /// Transaction sequence number.
    pub sequence: u64,
    /// Revoked home addresses.
    pub addrs: Vec<u64>,
}

/// Maximum addresses in one revoke block.
pub const REVOKE_CAPACITY: usize = (BLOCK_SIZE - 32) / 8;

impl RevokeBlock {
    /// Serialize.
    ///
    /// # Panics
    /// Panics if there are more than [`REVOKE_CAPACITY`] addresses.
    pub fn encode(&self) -> Block {
        assert!(self.addrs.len() <= REVOKE_CAPACITY, "revoke overflow");
        let mut b = Block::zeroed();
        b.put_u32(0, JSUPER_MAGIC);
        b.put_u32(4, JREVOKE_KIND);
        b.put_u64(8, self.sequence);
        b.put_u32(16, self.addrs.len() as u32);
        let mut off = 32;
        for a in &self.addrs {
            b.put_u64(off, *a);
            off += 8;
        }
        b
    }

    /// Decode; `None` on bad magic/kind/count.
    pub fn decode(b: &Block) -> Option<RevokeBlock> {
        if b.get_u32(0) != JSUPER_MAGIC || b.get_u32(4) != JREVOKE_KIND {
            return None;
        }
        let count = b.get_u32(16) as usize;
        if count > REVOKE_CAPACITY {
            return None;
        }
        let mut addrs = Vec::with_capacity(count);
        let mut off = 32;
        for _ in 0..count {
            addrs.push(b.get_u64(off));
            off += 8;
        }
        Some(RevokeBlock {
            sequence: b.get_u64(8),
            addrs,
        })
    }
}

/// Which kind of journal block a log block decodes as.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalRecord {
    /// A descriptor block.
    Descriptor(DescriptorBlock),
    /// A commit block.
    Commit(CommitBlock),
    /// A revoke block.
    Revoke(RevokeBlock),
}

/// Classify a journal log block (used by recovery and by the gray-box
/// classifier in `iron-fingerprint`).
pub fn classify_log_block(b: &Block) -> Option<JournalRecord> {
    if b.get_u32(0) != JSUPER_MAGIC {
        return None;
    }
    match b.get_u32(4) {
        JDESC_KIND => DescriptorBlock::decode(b).map(JournalRecord::Descriptor),
        JCOMMIT_KIND => CommitBlock::decode(b).map(JournalRecord::Commit),
        JREVOKE_KIND => RevokeBlock::decode(b).map(JournalRecord::Revoke),
        _ => None,
    }
}

/// Compute a transactional checksum over the descriptor and journal-data
/// blocks of a transaction (`Tc`, §6.1). CRC32 folded over every block,
/// strengthened with a truncated SHA-1 of the running state.
pub fn txn_checksum(blocks: &[&Block]) -> u64 {
    let mut crc = 0xFFFF_FFFFu32;
    for b in blocks {
        crc = crc32_update(crc, &b[..]);
    }
    let crc = crc ^ 0xFFFF_FFFF;
    // Widen to 64 bits via SHA-1 so collisions across reordered blocks are
    // not a concern for recovery decisions.
    let mut seed = [0u8; 8];
    seed.copy_from_slice(&(crc as u64).to_le_bytes());
    let mut material = Vec::with_capacity(8 + blocks.len() * 8);
    material.extend_from_slice(&seed);
    for b in blocks {
        material.extend_from_slice(&sha1(&b[..]).0[..8]);
    }
    sha1(&material).truncated64()
}

// ======================================================================
// Typestate transaction chain
// ======================================================================

/// Where the next journal write goes. Implemented by the file system (it
/// owns the device and the log cursor); the typestate transitions drive it
/// so the *order* of log writes and barriers is fixed by the types, not by
/// call-site discipline.
pub trait LogSink {
    /// Write `block` into the next log slot; `false` on a device write
    /// error (recorded, policy applied by the caller's `fix_bugs` check).
    fn append(&mut self, block: &Block, ty: BlockType) -> bool;
    /// Reserve the next log slot without writing it, returning its
    /// address (used only by the deliberate group-commit-bug knob, which
    /// defers journal-data writes until after the commit block).
    fn reserve(&mut self) -> u64;
    /// Write `block` into a previously reserved slot.
    fn write_at(&mut self, addr: u64, block: &Block, ty: BlockType) -> bool;
    /// Issue an ordering barrier to the device.
    fn barrier(&mut self);
}

/// State: accepting `put`/`revoke` from running operations.
#[derive(Debug, Default)]
pub struct Building {
    order: Vec<u64>,
    map: HashMap<u64, (Block, BlockType)>,
    revoked: BTreeSet<u64>,
}

/// State: frozen block set awaiting (group) commit. Accepts `merge` of
/// later closed transactions but no new dirty blocks or revokes.
#[derive(Debug)]
pub struct Closed {
    order: Vec<u64>,
    map: HashMap<u64, (Block, BlockType)>,
    revoked: BTreeSet<u64>,
    /// How many closed transactions were merged into this batch.
    merged: usize,
}

/// State: revoke/descriptor/data records are in the log; the commit block
/// is not. Dropping a `Txn<Logged>` aborts the transaction (nothing will
/// replay without a commit block).
#[derive(Debug)]
pub struct Logged {
    sequence: u64,
    map: HashMap<u64, (Block, BlockType)>,
    /// Every log image in log order (revokes, descriptors, data) — the
    /// `Tc` checksum input.
    log_images: Vec<Block>,
    log_write_failed: bool,
    /// Journal-data writes deferred until after the commit block
    /// (deliberate-bug knob only): (reserved slot, image, type).
    deferred: Vec<(u64, Block, BlockType)>,
}

/// State: the commit block is durable (the transition issued the
/// barrier); home locations may still be stale until checkpoint.
#[derive(Debug)]
#[must_use = "a committed transaction must be checkpointed (or explicitly abandoned)"]
pub struct Committed {
    sequence: u64,
    map: HashMap<u64, (Block, BlockType)>,
    commit_write_failed: bool,
    log_write_failed: bool,
}

/// State: home-location writes issued; retire() yields the sequence the
/// clean journal superblock may advance to.
#[derive(Debug)]
pub struct Checkpointed {
    sequence: u64,
    write_failed: bool,
}

/// A journal transaction in typestate `S`. See the module docs for the
/// chain and what each transition forbids.
#[derive(Debug, Default)]
pub struct Txn<S = Building> {
    st: S,
}

impl Txn<Building> {
    /// An empty running transaction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stage a dirty metadata block.
    pub fn put(&mut self, addr: u64, block: Block, ty: BlockType) {
        if !self.st.map.contains_key(&addr) {
            self.st.order.push(addr);
        }
        self.st.map.insert(addr, (block, ty));
        self.st.revoked.remove(&addr);
    }

    /// Fetch the staged copy of `addr`, if any.
    pub fn get(&self, addr: u64) -> Option<&Block> {
        self.st.map.get(&addr).map(|(b, _)| b)
    }

    /// Revoke `addr`: drop any staged copy and record the revocation so
    /// replay won't resurrect older logged copies.
    pub fn revoke(&mut self, addr: u64) {
        if self.st.map.remove(&addr).is_some() {
            self.st.order.retain(|a| *a != addr);
        }
        self.st.revoked.insert(addr);
    }

    /// Addresses revoked in this transaction.
    pub fn revoked(&self) -> impl Iterator<Item = u64> + '_ {
        self.st.revoked.iter().copied()
    }

    /// Number of dirty blocks.
    pub fn len(&self) -> usize {
        self.st.order.len()
    }

    /// True if there is nothing to commit.
    pub fn is_empty(&self) -> bool {
        self.st.order.is_empty() && self.st.revoked.is_empty()
    }

    /// Freeze the block set: no further `put`/`revoke` is possible on the
    /// result — group-commit batching and logging operate on closed
    /// transactions only.
    pub fn close(self) -> Txn<Closed> {
        Txn {
            st: Closed {
                order: self.st.order,
                map: self.st.map,
                revoked: self.st.revoked,
                merged: 1,
            },
        }
    }
}

impl Txn<Closed> {
    /// Group commit: absorb `later` (a transaction closed *after* this
    /// one) into this batch. Later puts override earlier staged copies;
    /// later revokes drop earlier staged copies — exactly the state the
    /// disk would reach replaying the two transactions in order, so the
    /// merged batch can be logged under a single sequence number with one
    /// descriptor chain, one commit block, and one barrier.
    pub fn merge(mut self, later: Txn<Closed>) -> Txn<Closed> {
        for addr in later.st.order {
            let (b, t) = later.st.map[&addr].clone();
            if !self.st.map.contains_key(&addr) {
                self.st.order.push(addr);
            }
            self.st.map.insert(addr, (b, t));
            self.st.revoked.remove(&addr);
        }
        for addr in later.st.revoked {
            if self.st.map.remove(&addr).is_some() {
                self.st.order.retain(|a| *a != addr);
            }
            self.st.revoked.insert(addr);
        }
        self.st.merged += later.st.merged;
        self
    }

    /// Fetch the staged copy of `addr`, if any (read path: a closed
    /// batch is newer than anything committed or on disk).
    pub fn get(&self, addr: u64) -> Option<&Block> {
        self.st.map.get(&addr).map(|(b, _)| b)
    }

    /// Number of dirty blocks.
    pub fn len(&self) -> usize {
        self.st.order.len()
    }

    /// True if there is nothing to commit.
    pub fn is_empty(&self) -> bool {
        self.st.order.is_empty() && self.st.revoked.is_empty()
    }

    /// How many closed transactions this batch merges.
    pub fn batched(&self) -> usize {
        self.st.merged
    }

    /// Final block images, in first-dirty order (checksum staging).
    pub fn blocks(&self) -> Vec<(u64, Block, BlockType)> {
        self.st
            .order
            .iter()
            .map(|a| {
                let (b, t) = &self.st.map[a];
                (*a, b.clone(), *t)
            })
            .collect()
    }

    /// Log blocks this batch will occupy: revoke chunks + descriptor
    /// chunks + data + the commit block.
    pub fn log_space_needed(&self) -> u64 {
        1 + self.st.order.len() as u64
            + self.st.order.len().div_ceil(DESC_CAPACITY) as u64
            + self.st.revoked.len().div_ceil(REVOKE_CAPACITY.max(1)) as u64
    }

    /// Write this batch's revoke records, descriptors, and journal-data
    /// copies to the log under `sequence`. With `defer_data` (the
    /// deliberate group-commit-bug knob) the data slots are only
    /// *reserved*; [`Txn<Logged>::commit`] then writes the commit block
    /// before filling them — the broken ordering the crash enumerator
    /// must catch.
    pub fn log<W: LogSink>(self, sequence: u64, sink: &mut W, defer_data: bool) -> Txn<Logged> {
        let mut failed = false;
        let mut log_images: Vec<Block> = Vec::new();
        let mut deferred: Vec<(u64, Block, BlockType)> = Vec::new();

        // Ordered-mode barrier: home-location data writes issued while the
        // batch's transactions were building must reach the platter before
        // any journal block. JBD waits for ordered data writeback here; Tc
        // removes only the *pre-commit* barrier (journal data vs. commit
        // block), never this one — the transactional checksum covers the
        // log copies, not home data, so a commit racing ordered data would
        // validate a transaction whose file contents never landed (found
        // by the iron-crash enumerator on the batched workloads).
        sink.barrier();

        let revoked: Vec<u64> = self.st.revoked.iter().copied().collect();
        for chunk in revoked.chunks(REVOKE_CAPACITY.max(1)) {
            let rb = RevokeBlock {
                sequence,
                addrs: chunk.to_vec(),
            }
            .encode();
            failed |= !sink.append(&rb, BlockType::JournalRevoke);
            log_images.push(rb);
        }

        let blocks = self.blocks();
        for chunk in blocks.chunks(DESC_CAPACITY) {
            let desc = DescriptorBlock {
                sequence,
                entries: chunk.iter().map(|(a, _, t)| (*a, *t)).collect(),
            }
            .encode();
            failed |= !sink.append(&desc, BlockType::JournalDesc);
            log_images.push(desc);
            for (_, b, _) in chunk {
                if defer_data {
                    let slot = sink.reserve();
                    deferred.push((slot, b.clone(), BlockType::JournalData));
                } else {
                    failed |= !sink.append(b, BlockType::JournalData);
                }
                log_images.push(b.clone());
            }
        }

        Txn {
            st: Logged {
                sequence,
                map: self.st.map,
                log_images,
                log_write_failed: failed,
                deferred,
            },
        }
    }
}

impl Txn<Logged> {
    /// This transaction's sequence number.
    pub fn sequence(&self) -> u64 {
        self.st.sequence
    }

    /// True if any log write failed (`fix_bugs` aborts here by *dropping*
    /// the `Txn<Logged>` — without a commit block nothing replays).
    pub fn log_write_failed(&self) -> bool {
        self.st.log_write_failed
    }

    /// Number of log images (revokes + descriptors + data) — the `Tc`
    /// checksum input size, for CPU-cost accounting.
    pub fn log_block_count(&self) -> usize {
        self.st.log_images.len()
    }

    /// Write the commit block and make it durable. This transition owns
    /// the commit-path ordering:
    ///
    /// * without `Tc` (`with_tc == false`) a barrier is issued *before*
    ///   the commit block so it cannot pass its own journal data;
    /// * with `Tc` the pre-barrier is skipped and the commit block
    ///   carries a checksum over every log image (§6.1);
    /// * a barrier is always issued *after* the commit block — a
    ///   `Txn<Committed>` is durable by construction, and checkpoint
    ///   writes (only reachable from `Committed`) cannot overtake it.
    ///
    /// The deliberate-bug knob's deferred data writes happen *after* the
    /// commit block and *inside* its barrier epoch — precisely the
    /// commit-before-data window the crash enumerator must flag.
    pub fn commit<W: LogSink>(self, with_tc: bool, sink: &mut W) -> Txn<Committed> {
        let txn_cksum = if with_tc {
            let refs: Vec<&Block> = self.st.log_images.iter().collect();
            Some(txn_checksum(&refs))
        } else {
            if self.st.deferred.is_empty() {
                sink.barrier();
            }
            None
        };
        let commit = CommitBlock {
            sequence: self.st.sequence,
            txn_checksum: txn_cksum,
        }
        .encode();
        let commit_write_failed = !sink.append(&commit, BlockType::JournalCommit);
        let mut log_write_failed = self.st.log_write_failed;
        for (slot, b, ty) in &self.st.deferred {
            log_write_failed |= !sink.write_at(*slot, b, *ty);
        }
        sink.barrier();
        Txn {
            st: Committed {
                sequence: self.st.sequence,
                map: self.st.map,
                commit_write_failed,
                log_write_failed,
            },
        }
    }
}

impl Txn<Committed> {
    /// This transaction's sequence number.
    pub fn sequence(&self) -> u64 {
        self.st.sequence
    }

    /// True if the commit-block write failed.
    pub fn commit_write_failed(&self) -> bool {
        self.st.commit_write_failed
    }

    /// True if any journal write (including deferred data) failed.
    pub fn log_write_failed(&self) -> bool {
        self.st.log_write_failed
    }

    /// Fetch the not-yet-checkpointed copy of `addr`, if any (read path:
    /// with pipelined checkpointing the home location is stale until the
    /// drain, and the FS-internal cache may have evicted the block).
    pub fn get(&self, addr: u64) -> Option<&Block> {
        self.st.map.get(&addr).map(|(b, _)| b)
    }

    /// Blocks still awaiting checkpoint.
    pub fn len(&self) -> usize {
        self.st.map.len()
    }

    /// JBD `journal_forget`: drop `addr` from the checkpoint set. Called
    /// when a later transaction frees the block — the log copy stays (a
    /// later revoke record suppresses it on replay), but a deferred
    /// checkpoint must not write the stale image over a reused block.
    pub fn forget(&mut self, addr: u64) {
        self.st.map.remove(&addr);
    }

    /// Testing hook for simulated crash windows (`crash_mode`): drop the
    /// transaction without checkpointing, leaving home locations stale
    /// and the journal dirty. The explicit name exists so "committed but
    /// never checkpointed" is a grep-able decision, not a silent drop.
    pub fn abandon(self) {
        drop(self);
    }
}

/// The result of checkpointing a group of committed transactions.
pub struct CheckpointSweep {
    /// The checkpointed transactions, oldest first.
    pub txns: Vec<Txn<Checkpointed>>,
    /// What the sweep actually wrote: deduplicated across the group
    /// (newest copy wins), address-sorted. The FS mirrors metadata from
    /// this list.
    pub written: Vec<(u64, Block, BlockType)>,
    /// True if any home-location write failed.
    pub write_failed: bool,
}

/// Checkpoint a group of committed transactions (oldest first) in one
/// elevator sweep: blocks dirtied by several transactions in the group
/// are written once, with the newest image — the kernel's writeback
/// submits checkpoint I/O in address order, and deduplication is where
/// pipelined checkpointing wins over checkpoint-per-commit.
///
/// `write_home` performs one home-location write, returning `false` on a
/// device error.
pub fn checkpoint_group<F>(group: Vec<Txn<Committed>>, mut write_home: F) -> CheckpointSweep
where
    F: FnMut(u64, &Block, BlockType) -> bool,
{
    let mut merged: BTreeMap<u64, (Block, BlockType)> = BTreeMap::new();
    for txn in &group {
        for (addr, (b, ty)) in &txn.st.map {
            merged.insert(*addr, (b.clone(), *ty));
        }
    }
    let mut write_failed = false;
    let mut written = Vec::with_capacity(merged.len());
    for (addr, (b, ty)) in merged {
        write_failed |= !write_home(addr, &b, ty);
        written.push((addr, b, ty));
    }
    let txns = group
        .into_iter()
        .map(|t| Txn {
            st: Checkpointed {
                sequence: t.st.sequence,
                write_failed,
            },
        })
        .collect();
    CheckpointSweep {
        txns,
        written,
        write_failed,
    }
}

impl Txn<Checkpointed> {
    /// This transaction's sequence number.
    pub fn sequence(&self) -> u64 {
        self.st.sequence
    }

    /// True if the checkpoint sweep that produced this state had a
    /// failed home write.
    pub fn checkpoint_write_failed(&self) -> bool {
        self.st.write_failed
    }

    /// Consume the transaction; the returned sequence is what the clean
    /// journal superblock may record. This is the only way a transaction
    /// leaves the chain successfully, so "journal marked clean before
    /// checkpoint finished" cannot be written by accident.
    pub fn retire(self) -> u64 {
        self.st.sequence
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_super_round_trip() {
        let js = JournalSuper {
            sequence: 42,
            dirty: true,
            log_len: 256,
        };
        assert_eq!(JournalSuper::decode(&js.encode()), Some(js));
        assert_eq!(JournalSuper::decode(&Block::zeroed()), None);
    }

    #[test]
    fn descriptor_round_trip() {
        let d = DescriptorBlock {
            sequence: 9,
            entries: vec![(100, BlockType::Inode), (200, BlockType::Dir)],
        };
        assert_eq!(DescriptorBlock::decode(&d.encode()), Some(d));
    }

    #[test]
    fn descriptor_rejects_commit_block() {
        let c = CommitBlock {
            sequence: 9,
            txn_checksum: None,
        };
        assert_eq!(DescriptorBlock::decode(&c.encode()), None);
    }

    #[test]
    fn commit_round_trip_with_and_without_checksum() {
        for cks in [None, Some(0xDEAD_BEEF_u64)] {
            let c = CommitBlock {
                sequence: 3,
                txn_checksum: cks,
            };
            assert_eq!(CommitBlock::decode(&c.encode()), Some(c));
        }
    }

    #[test]
    fn revoke_round_trip() {
        let r = RevokeBlock {
            sequence: 5,
            addrs: vec![1, 2, 77],
        };
        assert_eq!(RevokeBlock::decode(&r.encode()), Some(r));
    }

    #[test]
    fn classify_distinguishes_kinds() {
        let d = DescriptorBlock {
            sequence: 1,
            entries: vec![],
        };
        let c = CommitBlock {
            sequence: 1,
            txn_checksum: None,
        };
        let r = RevokeBlock {
            sequence: 1,
            addrs: vec![],
        };
        assert!(matches!(
            classify_log_block(&d.encode()),
            Some(JournalRecord::Descriptor(_))
        ));
        assert!(matches!(
            classify_log_block(&c.encode()),
            Some(JournalRecord::Commit(_))
        ));
        assert!(matches!(
            classify_log_block(&r.encode()),
            Some(JournalRecord::Revoke(_))
        ));
        assert_eq!(classify_log_block(&Block::filled(0xAA)), None);
    }

    #[test]
    fn txn_checksum_detects_any_block_change() {
        let a = Block::filled(1);
        let b = Block::filled(2);
        let base = txn_checksum(&[&a, &b]);
        let mut b2 = b.clone();
        b2[100] ^= 1;
        assert_ne!(txn_checksum(&[&a, &b2]), base);
        assert_ne!(txn_checksum(&[&b, &a]), base, "order matters");
        assert_eq!(txn_checksum(&[&a, &b]), base, "deterministic");
    }

    #[test]
    fn txn_staging_and_revoke() {
        let mut t = Txn::new();
        assert!(t.is_empty());
        t.put(10, Block::filled(1), BlockType::Inode);
        t.put(20, Block::filled(2), BlockType::Dir);
        t.put(10, Block::filled(3), BlockType::Inode); // overwrite keeps order
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(10), Some(&Block::filled(3)));

        t.revoke(20);
        assert_eq!(t.len(), 1);
        assert!(t.revoked().any(|a| a == 20));
        // Re-dirtying un-revokes.
        t.put(20, Block::filled(4), BlockType::Dir);
        assert!(!t.revoked().any(|a| a == 20));

        let closed = t.close();
        let blocks = closed.blocks();
        assert_eq!(blocks[0].0, 10);
        assert_eq!(blocks[1].0, 20);
    }

    /// An in-memory log that records what the typestate transitions wrote
    /// and when barriers fired, so the tests can check ordering.
    #[derive(Default)]
    struct VecLog {
        events: Vec<String>,
        head: u64,
    }

    impl LogSink for VecLog {
        fn append(&mut self, block: &Block, ty: BlockType) -> bool {
            self.events.push(format!("w:{}@{}", ty.tag(), self.head));
            let _ = block;
            self.head += 1;
            true
        }
        fn reserve(&mut self) -> u64 {
            let slot = self.head;
            self.head += 1;
            slot
        }
        fn write_at(&mut self, addr: u64, _block: &Block, ty: BlockType) -> bool {
            self.events.push(format!("w:{}@{addr}", ty.tag()));
            true
        }
        fn barrier(&mut self) {
            self.events.push("barrier".into());
        }
    }

    #[test]
    fn merge_applies_later_puts_and_revokes() {
        let mut a = Txn::new();
        a.put(10, Block::filled(1), BlockType::Inode);
        a.put(20, Block::filled(2), BlockType::Dir);
        let mut b = Txn::new();
        b.put(10, Block::filled(9), BlockType::Inode); // overrides a's copy
        b.revoke(20); // frees a's block
        b.put(30, Block::filled(3), BlockType::DataBitmap);
        let batch = a.close().merge(b.close());
        assert_eq!(batch.batched(), 2);
        assert_eq!(batch.get(10), Some(&Block::filled(9)));
        assert_eq!(batch.get(20), None, "merged revoke drops staged copy");
        assert_eq!(batch.get(30), Some(&Block::filled(3)));
        // 2 data blocks + 1 descriptor + 1 revoke chunk + 1 commit.
        assert_eq!(batch.log_space_needed(), 5);
    }

    #[test]
    fn commit_without_tc_barriers_before_and_after_commit_block() {
        let mut t = Txn::new();
        t.put(10, Block::filled(1), BlockType::Inode);
        let mut log = VecLog::default();
        let logged = t.close().log(7, &mut log, false);
        assert_eq!(logged.sequence(), 7);
        assert!(!logged.log_write_failed());
        let committed = logged.commit(false, &mut log);
        assert!(!committed.commit_write_failed());
        assert_eq!(
            log.events,
            vec![
                "barrier", // ordered data durable before any journal write
                "w:j-desc@0",
                "w:j-data@1",
                "barrier", // pre-commit: data durable before the commit block
                "w:j-commit@2",
                "barrier", // commit durable before any checkpoint
            ]
        );
        committed.abandon();
    }

    #[test]
    fn commit_with_tc_skips_the_pre_barrier() {
        let mut t = Txn::new();
        t.put(10, Block::filled(1), BlockType::Inode);
        let mut log = VecLog::default();
        let committed = t.close().log(7, &mut log, false).commit(true, &mut log);
        assert_eq!(
            log.events,
            vec![
                "barrier", // the ordered-data barrier stays even under Tc
                "w:j-desc@0",
                "w:j-data@1",
                "w:j-commit@2",
                "barrier",
            ]
        );
        committed.abandon();
    }

    #[test]
    fn deferred_data_bug_knob_writes_commit_block_first() {
        let mut t = Txn::new();
        t.put(10, Block::filled(1), BlockType::Inode);
        t.put(20, Block::filled(2), BlockType::Dir);
        let mut log = VecLog::default();
        let committed = t.close().log(3, &mut log, true).commit(false, &mut log);
        // Descriptor at 0, data slots 1-2 reserved but EMPTY, commit at 3,
        // then the data lands after the commit block with no barrier
        // between — the broken group commit the enumerator must catch.
        assert_eq!(
            log.events,
            vec![
                "barrier",
                "w:j-desc@0",
                "w:j-commit@3",
                "w:j-data@1",
                "w:j-data@2",
                "barrier",
            ]
        );
        committed.abandon();
    }

    #[test]
    fn checkpoint_group_dedups_and_sorts_and_retires() {
        let mut a = Txn::new();
        a.put(50, Block::filled(1), BlockType::Inode);
        a.put(10, Block::filled(2), BlockType::Dir);
        let mut b = Txn::new();
        b.put(50, Block::filled(9), BlockType::Inode); // newer copy of 50
        b.put(30, Block::filled(3), BlockType::DataBitmap);
        let mut log = VecLog::default();
        let ca = a.close().log(1, &mut log, false).commit(false, &mut log);
        let mut cb = b.close().log(2, &mut log, false).commit(false, &mut log);

        // journal_forget on the committed (not yet checkpointed) txn.
        cb.forget(30);
        assert_eq!(cb.get(30), None);

        let mut writes: Vec<(u64, u8)> = Vec::new();
        let sweep = checkpoint_group(vec![ca, cb], |addr, b, _ty| {
            writes.push((addr, b[0]));
            true
        });
        // Address-sorted, deduped (50 written once, with b's image), and
        // the forgotten block never written.
        assert_eq!(writes, vec![(10, 2), (50, 9)]);
        assert!(!sweep.write_failed);
        let seqs: Vec<u64> = sweep.txns.into_iter().map(Txn::retire).collect();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn desc_capacity_fits_in_block() {
        let entries: Vec<(u64, BlockType)> = (0..DESC_CAPACITY as u64)
            .map(|i| (i, BlockType::Data))
            .collect();
        let d = DescriptorBlock {
            sequence: 1,
            entries,
        };
        let decoded = DescriptorBlock::decode(&d.encode()).unwrap();
        assert_eq!(decoded.entries.len(), DESC_CAPACITY);
    }
}

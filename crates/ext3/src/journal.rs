//! Journal block formats and the in-memory running transaction.
//!
//! ext3-style full-block journaling (JBD): a transaction is a descriptor
//! block naming the home addresses, the journaled copies themselves, and a
//! commit block. Revoke blocks name addresses that must *not* be replayed.
//! The commit block optionally carries a **transactional checksum** over the
//! whole transaction (the paper's `Tc`, §6.1) — that is what lets ixt3 issue
//! the commit without waiting for the journal data, and what lets recovery
//! reject a partially written transaction.

use std::collections::{BTreeSet, HashMap};

use iron_core::checksum::{crc32_update, sha1};
use iron_core::{Block, BLOCK_SIZE};

use crate::layout::BlockType;

/// Magic for the journal superblock.
pub const JSUPER_MAGIC: u32 = 0xC03B_3998; // JBD's real magic
/// Block-type discriminator within journal control blocks.
const JDESC_KIND: u32 = 1;
const JCOMMIT_KIND: u32 = 2;
const JREVOKE_KIND: u32 = 5;

/// Decoded journal superblock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalSuper {
    /// Next transaction sequence number.
    pub sequence: u64,
    /// True if the log may contain committed-but-not-checkpointed
    /// transactions (recovery needed).
    pub dirty: bool,
    /// Length of the log area in blocks.
    pub log_len: u64,
}

impl JournalSuper {
    /// Serialize.
    pub fn encode(&self) -> Block {
        let mut b = Block::zeroed();
        b.put_u32(0, JSUPER_MAGIC);
        b.put_u64(8, self.sequence);
        b.put_u32(16, u32::from(self.dirty));
        b.put_u64(24, self.log_len);
        b
    }

    /// Decode; `None` on bad magic (ext3 *does* type-check its journal
    /// superblock — §5.1).
    pub fn decode(b: &Block) -> Option<JournalSuper> {
        if b.get_u32(0) != JSUPER_MAGIC {
            return None;
        }
        Some(JournalSuper {
            sequence: b.get_u64(8),
            dirty: b.get_u32(16) != 0,
            log_len: b.get_u64(24),
        })
    }
}

/// Maximum home-address records in one descriptor block.
pub const DESC_CAPACITY: usize = (BLOCK_SIZE - 32) / 12;

/// A journal descriptor block: the home addresses (and types) of the
/// journaled copies that follow it in the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DescriptorBlock {
    /// Transaction sequence number.
    pub sequence: u64,
    /// (home address, block type) per following journal-data block.
    pub entries: Vec<(u64, BlockType)>,
}

impl DescriptorBlock {
    /// Serialize.
    ///
    /// # Panics
    /// Panics if there are more than [`DESC_CAPACITY`] entries.
    pub fn encode(&self) -> Block {
        assert!(self.entries.len() <= DESC_CAPACITY, "descriptor overflow");
        let mut b = Block::zeroed();
        b.put_u32(0, JSUPER_MAGIC);
        b.put_u32(4, JDESC_KIND);
        b.put_u64(8, self.sequence);
        b.put_u32(16, self.entries.len() as u32);
        let mut off = 32;
        for (addr, ty) in &self.entries {
            b.put_u64(off, *addr);
            b[off + 8] = ty.code();
            off += 12;
        }
        b
    }

    /// Decode; `None` on bad magic/kind/counts (ext3 type-checks journal
    /// descriptor blocks).
    pub fn decode(b: &Block) -> Option<DescriptorBlock> {
        if b.get_u32(0) != JSUPER_MAGIC || b.get_u32(4) != JDESC_KIND {
            return None;
        }
        let count = b.get_u32(16) as usize;
        if count > DESC_CAPACITY {
            return None;
        }
        let mut entries = Vec::with_capacity(count);
        let mut off = 32;
        for _ in 0..count {
            let addr = b.get_u64(off);
            let ty = BlockType::from_code(b[off + 8])?;
            entries.push((addr, ty));
            off += 12;
        }
        Some(DescriptorBlock {
            sequence: b.get_u64(8),
            entries,
        })
    }
}

/// A journal commit block, optionally carrying a transactional checksum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitBlock {
    /// Transaction sequence number.
    pub sequence: u64,
    /// Transactional checksum over descriptor + journal data (present only
    /// when `Tc` is enabled).
    pub txn_checksum: Option<u64>,
}

impl CommitBlock {
    /// Serialize.
    pub fn encode(&self) -> Block {
        let mut b = Block::zeroed();
        b.put_u32(0, JSUPER_MAGIC);
        b.put_u32(4, JCOMMIT_KIND);
        b.put_u64(8, self.sequence);
        match self.txn_checksum {
            Some(c) => {
                b.put_u32(16, 1);
                b.put_u64(24, c);
            }
            None => b.put_u32(16, 0),
        }
        b
    }

    /// Decode; `None` on bad magic/kind.
    pub fn decode(b: &Block) -> Option<CommitBlock> {
        if b.get_u32(0) != JSUPER_MAGIC || b.get_u32(4) != JCOMMIT_KIND {
            return None;
        }
        let txn_checksum = if b.get_u32(16) != 0 {
            Some(b.get_u64(24))
        } else {
            None
        };
        Some(CommitBlock {
            sequence: b.get_u64(8),
            txn_checksum,
        })
    }
}

/// A revoke block: home addresses that must not be replayed from earlier
/// transactions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RevokeBlock {
    /// Transaction sequence number.
    pub sequence: u64,
    /// Revoked home addresses.
    pub addrs: Vec<u64>,
}

/// Maximum addresses in one revoke block.
pub const REVOKE_CAPACITY: usize = (BLOCK_SIZE - 32) / 8;

impl RevokeBlock {
    /// Serialize.
    ///
    /// # Panics
    /// Panics if there are more than [`REVOKE_CAPACITY`] addresses.
    pub fn encode(&self) -> Block {
        assert!(self.addrs.len() <= REVOKE_CAPACITY, "revoke overflow");
        let mut b = Block::zeroed();
        b.put_u32(0, JSUPER_MAGIC);
        b.put_u32(4, JREVOKE_KIND);
        b.put_u64(8, self.sequence);
        b.put_u32(16, self.addrs.len() as u32);
        let mut off = 32;
        for a in &self.addrs {
            b.put_u64(off, *a);
            off += 8;
        }
        b
    }

    /// Decode; `None` on bad magic/kind/count.
    pub fn decode(b: &Block) -> Option<RevokeBlock> {
        if b.get_u32(0) != JSUPER_MAGIC || b.get_u32(4) != JREVOKE_KIND {
            return None;
        }
        let count = b.get_u32(16) as usize;
        if count > REVOKE_CAPACITY {
            return None;
        }
        let mut addrs = Vec::with_capacity(count);
        let mut off = 32;
        for _ in 0..count {
            addrs.push(b.get_u64(off));
            off += 8;
        }
        Some(RevokeBlock {
            sequence: b.get_u64(8),
            addrs,
        })
    }
}

/// Which kind of journal block a log block decodes as.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalRecord {
    /// A descriptor block.
    Descriptor(DescriptorBlock),
    /// A commit block.
    Commit(CommitBlock),
    /// A revoke block.
    Revoke(RevokeBlock),
}

/// Classify a journal log block (used by recovery and by the gray-box
/// classifier in `iron-fingerprint`).
pub fn classify_log_block(b: &Block) -> Option<JournalRecord> {
    if b.get_u32(0) != JSUPER_MAGIC {
        return None;
    }
    match b.get_u32(4) {
        JDESC_KIND => DescriptorBlock::decode(b).map(JournalRecord::Descriptor),
        JCOMMIT_KIND => CommitBlock::decode(b).map(JournalRecord::Commit),
        JREVOKE_KIND => RevokeBlock::decode(b).map(JournalRecord::Revoke),
        _ => None,
    }
}

/// Compute a transactional checksum over the descriptor and journal-data
/// blocks of a transaction (`Tc`, §6.1). CRC32 folded over every block,
/// strengthened with a truncated SHA-1 of the running state.
pub fn txn_checksum(blocks: &[&Block]) -> u64 {
    let mut crc = 0xFFFF_FFFFu32;
    for b in blocks {
        crc = crc32_update(crc, &b[..]);
    }
    let crc = crc ^ 0xFFFF_FFFF;
    // Widen to 64 bits via SHA-1 so collisions across reordered blocks are
    // not a concern for recovery decisions.
    let mut seed = [0u8; 8];
    seed.copy_from_slice(&(crc as u64).to_le_bytes());
    let mut material = Vec::with_capacity(8 + blocks.len() * 8);
    material.extend_from_slice(&seed);
    for b in blocks {
        material.extend_from_slice(&sha1(&b[..]).0[..8]);
    }
    sha1(&material).truncated64()
}

/// The in-memory running transaction: dirty metadata blocks in first-dirty
/// order, plus revoked addresses.
#[derive(Debug, Default)]
pub struct Txn {
    order: Vec<u64>,
    map: HashMap<u64, (Block, BlockType)>,
    /// Addresses revoked in this transaction.
    pub revoked: BTreeSet<u64>,
}

impl Txn {
    /// An empty transaction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stage a dirty metadata block.
    pub fn put(&mut self, addr: u64, block: Block, ty: BlockType) {
        if !self.map.contains_key(&addr) {
            self.order.push(addr);
        }
        self.map.insert(addr, (block, ty));
        self.revoked.remove(&addr);
    }

    /// Fetch the staged copy of `addr`, if any.
    pub fn get(&self, addr: u64) -> Option<&Block> {
        self.map.get(&addr).map(|(b, _)| b)
    }

    /// Revoke `addr`: drop any staged copy and record the revocation.
    pub fn revoke(&mut self, addr: u64) {
        if self.map.remove(&addr).is_some() {
            self.order.retain(|a| *a != addr);
        }
        self.revoked.insert(addr);
    }

    /// Dirty blocks in first-dirty order.
    pub fn blocks(&self) -> Vec<(u64, Block, BlockType)> {
        self.order
            .iter()
            .map(|a| {
                let (b, t) = &self.map[a];
                (*a, b.clone(), *t)
            })
            .collect()
    }

    /// Number of dirty blocks.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if there is nothing to commit.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty() && self.revoked.is_empty()
    }

    /// Reset after commit.
    pub fn clear(&mut self) {
        self.order.clear();
        self.map.clear();
        self.revoked.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_super_round_trip() {
        let js = JournalSuper {
            sequence: 42,
            dirty: true,
            log_len: 256,
        };
        assert_eq!(JournalSuper::decode(&js.encode()), Some(js));
        assert_eq!(JournalSuper::decode(&Block::zeroed()), None);
    }

    #[test]
    fn descriptor_round_trip() {
        let d = DescriptorBlock {
            sequence: 9,
            entries: vec![(100, BlockType::Inode), (200, BlockType::Dir)],
        };
        assert_eq!(DescriptorBlock::decode(&d.encode()), Some(d));
    }

    #[test]
    fn descriptor_rejects_commit_block() {
        let c = CommitBlock {
            sequence: 9,
            txn_checksum: None,
        };
        assert_eq!(DescriptorBlock::decode(&c.encode()), None);
    }

    #[test]
    fn commit_round_trip_with_and_without_checksum() {
        for cks in [None, Some(0xDEAD_BEEF_u64)] {
            let c = CommitBlock {
                sequence: 3,
                txn_checksum: cks,
            };
            assert_eq!(CommitBlock::decode(&c.encode()), Some(c));
        }
    }

    #[test]
    fn revoke_round_trip() {
        let r = RevokeBlock {
            sequence: 5,
            addrs: vec![1, 2, 77],
        };
        assert_eq!(RevokeBlock::decode(&r.encode()), Some(r));
    }

    #[test]
    fn classify_distinguishes_kinds() {
        let d = DescriptorBlock {
            sequence: 1,
            entries: vec![],
        };
        let c = CommitBlock {
            sequence: 1,
            txn_checksum: None,
        };
        let r = RevokeBlock {
            sequence: 1,
            addrs: vec![],
        };
        assert!(matches!(
            classify_log_block(&d.encode()),
            Some(JournalRecord::Descriptor(_))
        ));
        assert!(matches!(
            classify_log_block(&c.encode()),
            Some(JournalRecord::Commit(_))
        ));
        assert!(matches!(
            classify_log_block(&r.encode()),
            Some(JournalRecord::Revoke(_))
        ));
        assert_eq!(classify_log_block(&Block::filled(0xAA)), None);
    }

    #[test]
    fn txn_checksum_detects_any_block_change() {
        let a = Block::filled(1);
        let b = Block::filled(2);
        let base = txn_checksum(&[&a, &b]);
        let mut b2 = b.clone();
        b2[100] ^= 1;
        assert_ne!(txn_checksum(&[&a, &b2]), base);
        assert_ne!(txn_checksum(&[&b, &a]), base, "order matters");
        assert_eq!(txn_checksum(&[&a, &b]), base, "deterministic");
    }

    #[test]
    fn txn_staging_and_revoke() {
        let mut t = Txn::new();
        assert!(t.is_empty());
        t.put(10, Block::filled(1), BlockType::Inode);
        t.put(20, Block::filled(2), BlockType::Dir);
        t.put(10, Block::filled(3), BlockType::Inode); // overwrite keeps order
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(10), Some(&Block::filled(3)));
        let blocks = t.blocks();
        assert_eq!(blocks[0].0, 10);
        assert_eq!(blocks[1].0, 20);

        t.revoke(20);
        assert_eq!(t.len(), 1);
        assert!(t.revoked.contains(&20));
        // Re-dirtying un-revokes.
        t.put(20, Block::filled(4), BlockType::Dir);
        assert!(!t.revoked.contains(&20));

        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn desc_capacity_fits_in_block() {
        let entries: Vec<(u64, BlockType)> = (0..DESC_CAPACITY as u64)
            .map(|i| (i, BlockType::Data))
            .collect();
        let d = DescriptorBlock {
            sequence: 1,
            entries,
        };
        let decoded = DescriptorBlock::decode(&d.encode()).unwrap();
        assert_eq!(decoded.entries.len(), DESC_CAPACITY);
    }
}

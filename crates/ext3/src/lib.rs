//! # iron-ext3
//!
//! A behavioral model of Linux ext3 (§5.1 of the paper), faithful to the
//! paper's *measured* failure policy — including its bugs — plus the IRON
//! machinery of §6 (checksumming, metadata replication, data parity,
//! transactional checksums) behind an [`IronConfig`] switchboard. Stock
//! ext3 is `IronConfig::off()`; the `iron-ixt3` crate wraps this engine
//! with the paper's ixt3 presets.
//!
//! ## On-disk structures (Table 4)
//!
//! | structure | here |
//! |---|---|
//! | inode | [`inode::DiskInode`], 128-byte records in per-group tables |
//! | directory | [`dir`] — ext2-style variable-length entries |
//! | data bitmap / inode bitmap | per-group bitmap blocks ([`alloc`]) |
//! | indirect | single/double indirect pointer blocks |
//! | data | user data blocks |
//! | super | [`superblock::Superblock`] at block 0 |
//! | group descriptor | [`layout::DiskLayout`]-governed table at block 1 |
//! | journal super/revoke/descriptor/commit/data | [`journal`] |
//!
//! ## The measured failure policy (what §5.1 reports, what we implement)
//!
//! * Read failures: error codes checked (`DErrorCode`); errors propagate
//!   (`RPropagate`) and metadata read failures abort the journal → read-only
//!   remount (`RStop`). Data reads go through a prefetch path that retries
//!   only the originally requested block (`RRetry`, sparingly).
//! * Write failures: **ignored** (`DZero`/`RZero`) — the paper's headline
//!   ext3 flaw. Journal write errors don't stop the commit (`PAPER-BUG`),
//!   and a post-abort data write is not squelched (`PAPER-BUG`).
//! * Sanity checks: superblock and journal block magics, inode size check
//!   at `open`; **no** checks for directories, bitmaps, indirect blocks.
//! * `truncate`/`rmdir` fail silently on indirect/dir read errors
//!   (`PAPER-BUG`); `unlink` doesn't check `links_count` and a corrupted
//!   zero count crashes the kernel (`PAPER-BUG`); superblock replicas are
//!   written at mkfs and never updated or consulted (`PAPER-BUG`).
//!
//! Every deliberate bug is marked `PAPER-BUG` in the source and pinned by a
//! test; `IronConfig::fix_bugs` turns each one off (that is what the paper
//! means by "in the process of building ixt3, we also fixed numerous bugs
//! within ext3").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod cache;
pub mod dir;
pub mod fs;
pub mod fsck;
pub mod inode;
pub mod iron;
pub mod journal;
pub mod layout;
pub mod ops;
pub mod superblock;

pub use fs::{Ext3Fs, Ext3Options};
pub use fsck::Ext3Image;
pub use iron::IronConfig;
pub use layout::{BlockType, DiskLayout, Ext3Params};
pub use superblock::Superblock;

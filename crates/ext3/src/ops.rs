//! File-system operations: the [`SpecificFs`] implementation and its
//! supporting machinery (inode I/O, allocation, block maps, directories),
//! with ext3's per-operation failure policy — bugs included.

use iron_blockdev::{retry::classify, BlockDevice, RawAccess};
use iron_core::recover::{ErrorClass, RecoveryAction};
use iron_core::{Block, BlockAddr, Errno, IoKind, BLOCK_SIZE};
use iron_vfs::{DirEntry, FileType, FsEnv, InodeAttr, MountState, SpecificFs, StatFs, VfsResult};

use crate::alloc;
use crate::dir::{self, ftype_from_code, RawDirEntry};
use crate::fs::Ext3Fs;
use crate::inode::{DiskInode, NDIRECT, PTRS_PER_BLOCK};
use crate::layout::{BlockType, FIRST_FREE_INO, ROOT_INO};
use crate::superblock::FsState;

type Ino = u64;

impl<D: BlockDevice + RawAccess> Ext3Fs<D> {
    // ==================================================================
    // Metadata read path — the centerpiece of the failure policy.
    // ==================================================================

    /// Read a metadata block with full policy:
    ///
    /// * staged transaction copy and buffer cache are consulted first;
    /// * a device error is detected via the error code (`DErrorCode`),
    ///   logged, and the metadata-read escalation chain from the policy
    ///   table runs — stock ext3's chain is `Redundancy` (skipped without
    ///   `Mr`) then `DegradeReadOnly` (abort the journal, `EIO`);
    /// * with `Mc`, contents are verified against the checksum table
    ///   (`DRedundancy`); a mismatch walks the same chain under the
    ///   `Corrupt` error class, so `Mr` recovers from the distant replica
    ///   (`RRedundancy`).
    pub(crate) fn read_meta(&mut self, addr: u64, ty: BlockType) -> VfsResult<Block> {
        if let Some(b) = self.staged_copy(addr) {
            return Ok(b.clone());
        }
        if let Some(b) = self.cache.get(BlockAddr(addr)) {
            return Ok(b);
        }
        match self.dev.read_tagged(BlockAddr(addr), ty.tag()) {
            Ok(b) => {
                if self.opts.iron.meta_checksum && !self.verify_cksum(addr, &b) {
                    self.env.klog.error(
                        "ixt3",
                        format!("checksum mismatch on metadata block {addr} ({})", ty.tag()),
                    );
                    return self.meta_read_chain(addr, ty, ErrorClass::Corrupt);
                }
                self.cache.insert(BlockAddr(addr), b.clone());
                Ok(b)
            }
            Err(e) => {
                self.env.klog.error(
                    "ext3",
                    format!("I/O error reading metadata block {addr} ({})", ty.tag()),
                );
                self.meta_read_chain(addr, ty, classify(&e))
            }
        }
    }

    /// Charge a backoff delay to the CPU clock (if accounting is on) and
    /// the shared policy counters.
    fn charge_backoff(&self, ns: u64) {
        if ns == 0 {
            return;
        }
        if let Some(c) = &self.opts.cpu_clock {
            c.advance_ns(ns);
        }
        self.opts.policy.counters().add_backoff_ns(ns);
    }

    /// Walk the policy chain for a failed metadata read.
    fn meta_read_chain(&mut self, addr: u64, ty: BlockType, class: ErrorClass) -> VfsResult<Block> {
        let chain = self.opts.policy.chain_for(ty.tag(), IoKind::Read, class);
        for action in chain {
            match action {
                RecoveryAction::Retry { budget, backoff } => {
                    // Bytes that arrived but failed their checksum are not
                    // re-read by default policy; when a chain does retry a
                    // corrupt read, verify each re-read inline.
                    for reissue in 1..=budget {
                        self.charge_backoff(backoff.delay_ns(reissue));
                        self.opts.policy.record(
                            &self.env.klog,
                            "ext3",
                            action,
                            &format!("metadata read {addr} re-issue {reissue}/{budget}"),
                        );
                        if let Ok(b) = self.dev.read_tagged(BlockAddr(addr), ty.tag()) {
                            if !self.opts.iron.meta_checksum || self.verify_cksum(addr, &b) {
                                self.opts.policy.counters().count_masked();
                                self.cache.insert(BlockAddr(addr), b.clone());
                                return Ok(b);
                            }
                        }
                    }
                    self.opts.policy.counters().count_exhausted();
                }
                RecoveryAction::Redundancy => {
                    if let Some(b) = self.meta_replica(addr) {
                        self.opts.policy.counters().count_redundancy();
                        return Ok(b);
                    }
                }
                RecoveryAction::Remap => {}
                RecoveryAction::DegradeReadOnly => {
                    self.abort_journal("metadata read failure");
                    return Err(Errno::EIO.into());
                }
                RecoveryAction::Propagate => {
                    self.opts.policy.counters().count_propagate();
                    return Err(Errno::EIO.into());
                }
                RecoveryAction::Stop => {
                    self.opts.policy.counters().count_stop();
                    return Err(self
                        .env
                        .panic("ext3", format!("unrecoverable metadata read, block {addr}")));
                }
            }
        }
        Err(Errno::EIO.into())
    }

    /// The `Mr` redundancy rung: recover a metadata block from its
    /// distant replica, freshest copy first. `None` when replication is
    /// off or every copy is bad.
    fn meta_replica(&mut self, addr: u64) -> Option<Block> {
        if !self.opts.iron.meta_replication {
            return None;
        }
        // A replica still in the write-back set is the freshest copy.
        if let Some(b) = self.replica_pending.get(&addr).cloned() {
            self.env.klog.info(
                "ixt3",
                format!("metadata block {addr} recovered from replica"),
            );
            self.cache.insert(BlockAddr(addr), b.clone());
            return Some(b);
        }
        let raddr = self.layout().replica_of(addr);
        match self.dev.read_tagged(raddr, BlockType::Replica.tag()) {
            Ok(b) => {
                let ok = !self.opts.iron.meta_checksum || self.verify_cksum(addr, &b);
                if ok {
                    self.env.klog.info(
                        "ixt3",
                        format!("metadata block {addr} recovered from replica"),
                    );
                    self.cache.insert(BlockAddr(addr), b.clone());
                    return Some(b);
                }
                self.env
                    .klog
                    .error("ixt3", format!("replica of metadata block {addr} also bad"));
            }
            Err(_) => {
                self.env.klog.error(
                    "ixt3",
                    format!("replica read failed for metadata block {addr}"),
                );
            }
        }
        None
    }

    // ==================================================================
    // Data block paths.
    // ==================================================================

    /// Read a data block. `file` supplies parity context when available.
    ///
    /// The data-read escalation chain comes from the policy table; the
    /// stock chain reproduces §5.1 exactly — one immediate re-read of the
    /// originally requested block ("when a prefetch read fails, ext3
    /// retries only the originally requested block", `RRetry`), then
    /// redundancy, then `EIO` with no journal abort (`RPropagate`). With
    /// `Dc`, contents are checksum-verified (a mismatch walks the chain
    /// under the `Corrupt` class, which stock policy does *not* re-read);
    /// with `Dp`, the `Redundancy` rung reconstructs the block from the
    /// file's other blocks and its parity block.
    pub(crate) fn read_data_block(
        &mut self,
        file: Option<(Ino, DiskInode)>,
        addr: u64,
    ) -> VfsResult<Block> {
        if let Some(b) = self.cache.get(BlockAddr(addr)) {
            return Ok(b);
        }
        match self.dev.read_tagged(BlockAddr(addr), BlockType::Data.tag()) {
            Ok(b) => {
                if self.opts.iron.data_checksum && !self.verify_cksum(addr, &b) {
                    self.env
                        .klog
                        .error("ixt3", format!("checksum mismatch on data block {addr}"));
                    return self.data_read_chain(file, addr, ErrorClass::Corrupt);
                }
                self.cache.insert(BlockAddr(addr), b.clone());
                Ok(b)
            }
            Err(e) => {
                self.env
                    .klog
                    .error("ext3", format!("I/O error reading data block {addr}"));
                self.data_read_chain(file, addr, classify(&e))
            }
        }
    }

    /// Walk the policy chain for a failed data read.
    fn data_read_chain(
        &mut self,
        file: Option<(Ino, DiskInode)>,
        addr: u64,
        class: ErrorClass,
    ) -> VfsResult<Block> {
        let tag = BlockType::Data.tag();
        let chain = self.opts.policy.chain_for(tag, IoKind::Read, class);
        for action in chain {
            match action {
                RecoveryAction::Retry { budget, backoff } => {
                    for reissue in 1..=budget {
                        self.charge_backoff(backoff.delay_ns(reissue));
                        self.opts.policy.record(
                            &self.env.klog,
                            "ext3",
                            action,
                            &format!("data read {addr} re-issue {reissue}/{budget}"),
                        );
                        if let Ok(b) = self.dev.read_tagged(BlockAddr(addr), tag) {
                            // A re-read is accepted only if it passes the
                            // same content check the chain was entered
                            // under (inline, so attempts stay bounded).
                            if !self.opts.iron.data_checksum || self.verify_cksum(addr, &b) {
                                self.opts.policy.counters().count_masked();
                                self.cache.insert(BlockAddr(addr), b.clone());
                                return Ok(b);
                            }
                        }
                    }
                    self.opts.policy.counters().count_exhausted();
                }
                RecoveryAction::Redundancy => {
                    if let Some(b) = self.data_parity_recover(file, addr) {
                        self.opts.policy.counters().count_redundancy();
                        return Ok(b);
                    }
                }
                RecoveryAction::Remap => {}
                RecoveryAction::DegradeReadOnly => {
                    self.abort_journal("data read failure");
                    return Err(Errno::EIO.into());
                }
                RecoveryAction::Propagate => {
                    self.opts.policy.counters().count_propagate();
                    return Err(Errno::EIO.into());
                }
                RecoveryAction::Stop => {
                    self.opts.policy.counters().count_stop();
                    return Err(self
                        .env
                        .panic("ext3", format!("unrecoverable data read, block {addr}")));
                }
            }
        }
        Err(Errno::EIO.into())
    }

    /// The `Dp` redundancy rung: rebuild a lost data block from parity.
    /// `None` when parity is off, unavailable for this file, or the
    /// reconstruction fails (including its verification checksum).
    fn data_parity_recover(&mut self, file: Option<(Ino, DiskInode)>, addr: u64) -> Option<Block> {
        if !self.opts.iron.data_parity {
            return None;
        }
        let (ino, di) = file?;
        if di.parity == 0 {
            return None;
        }
        match self.reconstruct_from_parity(ino, di, addr) {
            // A reconstruction is only as good as the parity it came
            // from: a crash can tear data and parity together, so the
            // rebuilt block must pass the same checksum the original
            // failed — otherwise silent garbage would be returned as
            // file data (found by the iron-crash enumerator).
            Ok(b) => {
                if self.opts.iron.data_checksum && !self.verify_cksum(addr, &b) {
                    self.env.klog.error(
                        "ixt3",
                        format!(
                            "parity reconstruction of block {addr} failed its \
                             checksum; returning EIO"
                        ),
                    );
                    return None;
                }
                self.env.klog.info(
                    "ixt3",
                    format!("data block {addr} reconstructed from parity"),
                );
                self.cache.insert(BlockAddr(addr), b.clone());
                Some(b)
            }
            Err(_) => {
                self.env.klog.error(
                    "ixt3",
                    format!("parity reconstruction failed for block {addr}"),
                );
                None
            }
        }
    }

    /// XOR together the file's other data blocks and its parity block to
    /// rebuild `failed`.
    fn reconstruct_from_parity(
        &mut self,
        ino: Ino,
        di: DiskInode,
        failed: u64,
    ) -> VfsResult<Block> {
        let mut acc = if let Some(p) = self.parity_dirty.get(&ino) {
            p.clone()
        } else {
            self.dev
                .read_tagged(BlockAddr(di.parity as u64), BlockType::Parity.tag())
                .map_err(iron_vfs::VfsError::from)?
        };
        for baddr in self.file_blocks(&di)? {
            if baddr == failed {
                continue;
            }
            let b = match self.cache.get(BlockAddr(baddr)) {
                Some(b) => b,
                None => self
                    .dev
                    .read_tagged(BlockAddr(baddr), BlockType::Data.tag())
                    .map_err(iron_vfs::VfsError::from)?,
            };
            for i in 0..BLOCK_SIZE {
                acc[i] ^= b[i];
            }
        }
        Ok(acc)
    }

    /// Write a data block in place (ordered-mode approximation).
    ///
    /// PAPER-BUG (stock): the write's error code is dropped on the floor —
    /// "when a write fails, ext3 does not record the error code; hence,
    /// write errors are often ignored". The page cache still holds the new
    /// contents, so subsequent reads *hide* the failure. With `fix_bugs`
    /// the error aborts the journal and propagates.
    pub(crate) fn write_data_block(&mut self, addr: u64, block: &Block) -> VfsResult<()> {
        self.note_cksum(addr, block, false);
        let r = self
            .dev
            .write_tagged(BlockAddr(addr), block, BlockType::Data.tag());
        self.cache.insert(BlockAddr(addr), block.clone());
        match r {
            Ok(()) => Ok(()),
            Err(e) => {
                if self.opts.iron.fix_bugs {
                    self.env
                        .klog
                        .error("ext3", format!("I/O error writing data block {addr}"));
                    self.data_write_chain(addr, block, classify(&e))
                } else {
                    // PAPER-BUG: silently ignored — the bug is precisely
                    // that no policy chain runs at all.
                    Ok(())
                }
            }
        }
    }

    /// Walk the policy chain for a failed data write (only reached with
    /// `fix_bugs`; the stock chain degrades to read-only immediately).
    fn data_write_chain(&mut self, addr: u64, block: &Block, class: ErrorClass) -> VfsResult<()> {
        let tag = BlockType::Data.tag();
        let chain = self.opts.policy.chain_for(tag, IoKind::Write, class);
        for action in chain {
            match action {
                RecoveryAction::Retry { budget, backoff } => {
                    for reissue in 1..=budget {
                        self.charge_backoff(backoff.delay_ns(reissue));
                        self.opts.policy.record(
                            &self.env.klog,
                            "ext3",
                            action,
                            &format!("data write {addr} re-issue {reissue}/{budget}"),
                        );
                        if self.dev.write_tagged(BlockAddr(addr), block, tag).is_ok() {
                            self.opts.policy.counters().count_masked();
                            return Ok(());
                        }
                    }
                    self.opts.policy.counters().count_exhausted();
                }
                // In-place data writes have no redundant copy to fall
                // back on; remapping is handled earlier in the write path
                // (the `Rm` probe in `write_file`), not here.
                RecoveryAction::Redundancy | RecoveryAction::Remap => {}
                RecoveryAction::DegradeReadOnly => {
                    self.abort_journal("data write failure");
                    return Err(Errno::EIO.into());
                }
                RecoveryAction::Propagate => {
                    self.opts.policy.counters().count_propagate();
                    return Err(Errno::EIO.into());
                }
                RecoveryAction::Stop => {
                    self.opts.policy.counters().count_stop();
                    return Err(self
                        .env
                        .panic("ext3", format!("unrecoverable data write, block {addr}")));
                }
            }
        }
        Err(Errno::EIO.into())
    }

    // ==================================================================
    // Inode I/O.
    // ==================================================================

    /// Read an inode without any sanity checking (internal paths that must
    /// not double-report).
    pub(crate) fn raw_iget(&mut self, ino: Ino) -> VfsResult<DiskInode> {
        let (blk, off) = self.layout().inode_location(ino);
        let b = self.read_meta(blk.0, BlockType::Inode)?;
        Ok(DiskInode::decode_from(&b, off))
    }

    /// Read an inode, applying ext3's sanity checks: a free slot is
    /// `ENOENT`; invalid type bits or an overly-large size are detected
    /// (`DSanity`) and propagate as `EUCLEAN`.
    pub(crate) fn iget(&mut self, ino: Ino) -> VfsResult<DiskInode> {
        if ino == 0 || ino > self.layout().total_inodes() {
            return Err(Errno::ENOENT.into());
        }
        let di = self.raw_iget(ino)?;
        if di.is_free() {
            return Err(Errno::ENOENT.into());
        }
        if !di.sanity_check() {
            self.env.klog.error(
                "ext3",
                format!("corrupted inode {ino}: bad mode/size (sanity check failed)"),
            );
            return Err(Errno::EUCLEAN.into());
        }
        Ok(di)
    }

    /// Write an inode back (read-modify-write of its table block, staged in
    /// the journal).
    pub(crate) fn iput(&mut self, ino: Ino, di: &DiskInode) -> VfsResult<()> {
        let (blk, off) = self.layout().inode_location(ino);
        let mut b = self.read_meta(blk.0, BlockType::Inode)?;
        di.encode_into(&mut b, off);
        self.write_meta(blk.0, b, BlockType::Inode);
        Ok(())
    }

    // ==================================================================
    // Allocation.
    // ==================================================================

    /// Allocate a data block, preferring `hint_group`. No sanity checking
    /// of bitmap contents (§5.1): a corrupted bitmap silently misallocates.
    pub(crate) fn alloc_block(&mut self, hint_group: u64) -> VfsResult<u64> {
        let ng = self.layout().num_groups;
        let bpg = self.layout().params.blocks_per_group;
        for i in 0..ng {
            let g = (hint_group + i) % ng;
            let bm_addr = self.layout().data_bitmap(g).0;
            let mut bm = self.read_meta(bm_addr, BlockType::DataBitmap)?;
            let data_lo = self.layout().data_start(g) - self.layout().group_base(g);
            // Allocate against the committed bitmap state: bits freed by
            // not-yet-committed transactions are still busy (see
            // `uncommitted_frees`).
            let mut view = bm.clone();
            for &a in &self.uncommitted_frees {
                if self.layout().group_of_block(a) == Some(g) {
                    alloc::bit_set(&mut view, a - self.layout().group_base(g));
                }
            }
            if let Some(bit) = alloc::find_free(&view, bpg, data_lo) {
                alloc::bit_set(&mut bm, bit);
                self.write_meta(bm_addr, bm, BlockType::DataBitmap);
                self.sb.free_blocks = self.sb.free_blocks.saturating_sub(1);
                if let Some(gd) = self.gdt.get_mut(g as usize) {
                    gd.0 = gd.0.saturating_sub(1);
                }
                self.write_counters();
                return Ok(self.layout().group_base(g) + bit);
            }
        }
        Err(Errno::ENOSPC.into())
    }

    /// Free a data block.
    pub(crate) fn free_block(&mut self, addr: u64) -> VfsResult<()> {
        let Some(g) = self.layout().group_of_block(addr) else {
            return Ok(()); // out-of-layout pointer: freed "nowhere", silently
        };
        let bm_addr = self.layout().data_bitmap(g).0;
        let mut bm = self.read_meta(bm_addr, BlockType::DataBitmap)?;
        let bit = addr - self.layout().group_base(g);
        alloc::bit_clear(&mut bm, bit);
        self.write_meta(bm_addr, bm, BlockType::DataBitmap);
        self.sb.free_blocks += 1;
        if let Some(gd) = self.gdt.get_mut(g as usize) {
            gd.0 += 1;
        }
        self.write_counters();
        // Forget (JBD `journal_forget`): drop any copy of this block staged
        // in the running transaction and revoke it, so neither checkpoint
        // nor replay can write a stale image over the block once it is
        // reused — e.g. a freed directory block reallocated as file data.
        // The legacy knob re-introduces the seed bug of skipping this.
        if !self.opts.legacy_journal_bugs {
            self.revoke_meta(addr);
            self.uncommitted_frees.insert(addr);
        }
        Ok(())
    }

    /// Allocate an inode.
    pub(crate) fn alloc_inode(&mut self) -> VfsResult<Ino> {
        let ipg = self.layout().params.inodes_per_group;
        for g in 0..self.layout().num_groups {
            let bm_addr = self.layout().inode_bitmap(g).0;
            let mut bm = self.read_meta(bm_addr, BlockType::InodeBitmap)?;
            if let Some(bit) = alloc::find_free(&bm, ipg, 0) {
                alloc::bit_set(&mut bm, bit);
                self.write_meta(bm_addr, bm, BlockType::InodeBitmap);
                self.sb.free_inodes = self.sb.free_inodes.saturating_sub(1);
                if let Some(gd) = self.gdt.get_mut(g as usize) {
                    gd.1 = gd.1.saturating_sub(1);
                }
                self.write_counters();
                let ino = g * ipg + bit + 1;
                debug_assert!(ino >= FIRST_FREE_INO || ino == ROOT_INO || g > 0);
                return Ok(ino);
            }
        }
        Err(Errno::ENOSPC.into())
    }

    /// Free an inode (clears its bitmap bit and zeroes its table slot).
    pub(crate) fn free_inode(&mut self, ino: Ino) -> VfsResult<()> {
        let ipg = self.layout().params.inodes_per_group;
        let g = (ino - 1) / ipg;
        let bit = (ino - 1) % ipg;
        let bm_addr = self.layout().inode_bitmap(g).0;
        let mut bm = self.read_meta(bm_addr, BlockType::InodeBitmap)?;
        alloc::bit_clear(&mut bm, bit);
        self.write_meta(bm_addr, bm, BlockType::InodeBitmap);
        self.sb.free_inodes += 1;
        if let Some(gd) = self.gdt.get_mut(g as usize) {
            gd.1 += 1;
        }
        self.write_counters();
        self.iput(ino, &DiskInode::empty())
    }

    /// Stage the superblock and GDT with updated counters.
    fn write_counters(&mut self) {
        let sb_block = self.sb.encode();
        self.write_meta(0, sb_block, BlockType::Super);
        let mut gdt_block = Block::zeroed();
        for (g, (fb, fi)) in self.gdt.iter().enumerate() {
            gdt_block.put_u32(g * 8, *fb);
            gdt_block.put_u32(g * 8 + 4, *fi);
        }
        self.write_meta(1, gdt_block, BlockType::GroupDesc);
    }

    // ==================================================================
    // Block map (direct / indirect / double-indirect).
    // ==================================================================

    /// Map a file block index to a device address (0 = hole). Indirect
    /// blocks are read with **no sanity checking** — corrupted pointers are
    /// followed blindly (§5.1).
    pub(crate) fn get_file_block(&mut self, di: &DiskInode, idx: u64) -> VfsResult<u64> {
        let ppb = PTRS_PER_BLOCK as u64;
        if idx < NDIRECT as u64 {
            return Ok(di.direct[idx as usize] as u64);
        }
        let idx = idx - NDIRECT as u64;
        if idx < ppb {
            if di.indirect == 0 {
                return Ok(0);
            }
            let ib = self.read_meta(di.indirect as u64, BlockType::Indirect)?;
            return Ok(ib.get_u32(idx as usize * 4) as u64);
        }
        let idx = idx - ppb;
        if idx < ppb * ppb {
            if di.double_indirect == 0 {
                return Ok(0);
            }
            let l1 = self.read_meta(di.double_indirect as u64, BlockType::Indirect)?;
            let l2_ptr = l1.get_u32((idx / ppb) as usize * 4) as u64;
            if l2_ptr == 0 {
                return Ok(0);
            }
            let l2 = self.read_meta(l2_ptr, BlockType::Indirect)?;
            return Ok(l2.get_u32((idx % ppb) as usize * 4) as u64);
        }
        Err(Errno::EFBIG.into())
    }

    /// Point file block `idx` at `addr`, allocating indirect blocks as
    /// needed. Updates `di` in place (caller must `iput`).
    pub(crate) fn set_file_block(
        &mut self,
        di: &mut DiskInode,
        idx: u64,
        addr: u64,
        hint_group: u64,
    ) -> VfsResult<()> {
        let ppb = PTRS_PER_BLOCK as u64;
        if idx < NDIRECT as u64 {
            di.direct[idx as usize] = addr as u32;
            return Ok(());
        }
        let idx = idx - NDIRECT as u64;
        if idx < ppb {
            if di.indirect == 0 {
                let nb = self.alloc_block(hint_group)?;
                di.indirect = nb as u32;
                di.blocks_count += 1;
                self.write_meta(nb, Block::zeroed(), BlockType::Indirect);
            }
            let iaddr = di.indirect as u64;
            let mut ib = self.read_meta(iaddr, BlockType::Indirect)?;
            ib.put_u32(idx as usize * 4, addr as u32);
            self.write_meta(iaddr, ib, BlockType::Indirect);
            return Ok(());
        }
        let idx = idx - ppb;
        if idx < ppb * ppb {
            if di.double_indirect == 0 {
                let nb = self.alloc_block(hint_group)?;
                di.double_indirect = nb as u32;
                di.blocks_count += 1;
                self.write_meta(nb, Block::zeroed(), BlockType::Indirect);
            }
            let l1_addr = di.double_indirect as u64;
            let mut l1 = self.read_meta(l1_addr, BlockType::Indirect)?;
            let slot = (idx / ppb) as usize * 4;
            let mut l2_ptr = l1.get_u32(slot) as u64;
            if l2_ptr == 0 {
                l2_ptr = self.alloc_block(hint_group)?;
                di.blocks_count += 1;
                self.write_meta(l2_ptr, Block::zeroed(), BlockType::Indirect);
                l1.put_u32(slot, l2_ptr as u32);
                self.write_meta(l1_addr, l1, BlockType::Indirect);
            }
            let mut l2 = self.read_meta(l2_ptr, BlockType::Indirect)?;
            l2.put_u32((idx % ppb) as usize * 4, addr as u32);
            self.write_meta(l2_ptr, l2, BlockType::Indirect);
            return Ok(());
        }
        Err(Errno::EFBIG.into())
    }

    /// Every allocated data-block address of a file, in index order.
    pub(crate) fn file_blocks(&mut self, di: &DiskInode) -> VfsResult<Vec<u64>> {
        let nblocks = di.size.div_ceil(BLOCK_SIZE as u64);
        let mut out = Vec::new();
        for idx in 0..nblocks {
            let a = self.get_file_block(di, idx)?;
            if a != 0 {
                out.push(a);
            }
        }
        Ok(out)
    }

    // ==================================================================
    // Directories.
    // ==================================================================

    /// All entries of a directory (parsed leniently, per ext3).
    pub(crate) fn dir_entries_all(&mut self, di: &DiskInode) -> VfsResult<Vec<RawDirEntry>> {
        let nblocks = di.size.div_ceil(BLOCK_SIZE as u64);
        let mut out = Vec::new();
        for idx in 0..nblocks {
            let addr = self.get_file_block(di, idx)?;
            if addr == 0 {
                continue;
            }
            let b = self.read_meta(addr, BlockType::Dir)?;
            out.extend(dir::parse_block(&b));
        }
        Ok(out)
    }

    /// Rewrite a directory's entries, growing/shrinking its blocks.
    pub(crate) fn dir_write_entries(
        &mut self,
        dir_ino: Ino,
        di: &mut DiskInode,
        entries: &[RawDirEntry],
    ) -> VfsResult<()> {
        let blocks = dir::pack_blocks(entries);
        let old_nblocks = di.size.div_ceil(BLOCK_SIZE as u64);
        let hint = (dir_ino - 1) / self.layout().params.inodes_per_group;
        for (idx, b) in blocks.iter().enumerate() {
            let mut addr = self.get_file_block(di, idx as u64)?;
            if addr == 0 {
                addr = self.alloc_block(hint)?;
                di.blocks_count += 1;
                self.set_file_block(di, idx as u64, addr, hint)?;
            }
            self.write_meta(addr, b.clone(), BlockType::Dir);
        }
        // Shrink: free surplus blocks.
        for idx in blocks.len() as u64..old_nblocks {
            let addr = self.get_file_block(di, idx)?;
            if addr != 0 {
                self.free_block(addr)?;
                di.blocks_count = di.blocks_count.saturating_sub(1);
                self.set_file_block(di, idx, 0, hint)?;
            }
        }
        di.size = (blocks.len() * BLOCK_SIZE) as u64;
        self.iput(dir_ino, di)
    }

    /// Find `name` in a directory.
    pub(crate) fn dir_find(
        &mut self,
        di: &DiskInode,
        name: &str,
    ) -> VfsResult<Option<RawDirEntry>> {
        Ok(self
            .dir_entries_all(di)?
            .into_iter()
            .find(|e| e.name == name))
    }

    /// The allocated data-block addresses of a file, in index order —
    /// public so the fingerprinting framework and tests can aim faults at
    /// a specific file's blocks (type-aware injection needs addresses for
    /// dynamic block types).
    pub fn blocks_of(&mut self, ino: Ino) -> VfsResult<Vec<u64>> {
        let di = self.iget(ino)?;
        self.file_blocks(&di)
    }

    /// The (single/double) indirect block addresses of a file, in tree
    /// order — fault-injection targets for the `indirect` block type.
    pub fn indirect_blocks_of(&mut self, ino: Ino) -> VfsResult<Vec<u64>> {
        let di = self.iget(ino)?;
        let mut out = Vec::new();
        if di.indirect != 0 {
            out.push(di.indirect as u64);
        }
        if di.double_indirect != 0 {
            out.push(di.double_indirect as u64);
            let l1 = self.read_meta(di.double_indirect as u64, BlockType::Indirect)?;
            for i in 0..PTRS_PER_BLOCK {
                let p = l1.get_u32(i * 4) as u64;
                if p != 0 {
                    out.push(p);
                }
            }
        }
        Ok(out)
    }

    /// The parity-block address of a file (`Dp`), if any.
    pub fn parity_block_of(&mut self, ino: Ino) -> VfsResult<Option<u64>> {
        let di = self.iget(ino)?;
        Ok((di.parity != 0).then_some(di.parity as u64))
    }

    /// Group hint for allocating near an inode.
    fn group_hint(&self, ino: Ino) -> u64 {
        (ino - 1) / self.layout().params.inodes_per_group
    }

    // ==================================================================
    // File body management.
    // ==================================================================

    /// Free every data/indirect block of a file (used by unlink and
    /// truncate-to-zero). Read errors on indirect blocks are swallowed when
    /// bugs are intact — PAPER-BUG: "while dealing with indirect blocks …
    /// it updates the bitmaps and super block incorrectly, leaking space"
    /// (that is ReiserFS's flavor; ext3's flavor is the silent truncate,
    /// handled by the caller).
    fn free_file_blocks(&mut self, di: &mut DiskInode) -> VfsResult<()> {
        let nblocks = di.size.div_ceil(BLOCK_SIZE as u64);
        for idx in 0..nblocks {
            let addr = self.get_file_block(di, idx)?;
            if addr != 0 {
                self.free_block(addr)?;
            }
        }
        if di.indirect != 0 {
            self.free_block(di.indirect as u64)?;
            di.indirect = 0;
        }
        if di.double_indirect != 0 {
            let l1_addr = di.double_indirect as u64;
            let l1 = self.read_meta(l1_addr, BlockType::Indirect)?;
            for i in 0..PTRS_PER_BLOCK {
                let p = l1.get_u32(i * 4) as u64;
                if p != 0 {
                    self.free_block(p)?;
                }
            }
            self.free_block(l1_addr)?;
            di.double_indirect = 0;
        }
        di.direct = [0; NDIRECT];
        di.blocks_count = if di.parity != 0 { 1 } else { 0 };
        di.size = 0;
        Ok(())
    }

    /// Create an inode of the given type, allocating its parity block when
    /// `Dp` is on.
    fn new_inode(&mut self, ftype: FileType, perm: u32) -> VfsResult<Ino> {
        let ino = self.alloc_inode()?;
        let mut di = DiskInode::new(ftype, perm);
        if self.opts.iron.data_parity && ftype == FileType::Regular {
            let p = self.alloc_block(self.group_hint(ino))?;
            di.parity = p as u32;
            di.blocks_count += 1;
            // Preallocated parity starts as zeros (§6.1: "we preallocate
            // parity blocks and assign them to files when they are
            // created").
            let r = self
                .dev
                .write_tagged(BlockAddr(p), &Block::zeroed(), BlockType::Parity.tag());
            if r.is_err() && self.opts.iron.fix_bugs {
                self.env
                    .klog
                    .error("ixt3", "parity preallocation write failed");
                self.abort_journal("parity write failure");
                return Err(Errno::EIO.into());
            }
            self.cache.insert(BlockAddr(p), Block::zeroed());
        }
        self.iput(ino, &di)?;
        Ok(ino)
    }
}

impl<D: BlockDevice + RawAccess> SpecificFs for Ext3Fs<D> {
    fn env(&self) -> &FsEnv {
        self.env_ref()
    }

    fn root_ino(&self) -> u64 {
        ROOT_INO
    }

    fn lookup(&mut self, dir: Ino, name: &str) -> VfsResult<Ino> {
        self.env.check_alive()?;
        let di = self.iget(dir)?;
        if di.file_type() != Some(FileType::Directory) {
            return Err(Errno::ENOTDIR.into());
        }
        match self.dir_find(&di, name)? {
            Some(e) => Ok(e.ino as u64),
            None => Err(Errno::ENOENT.into()),
        }
    }

    fn getattr(&mut self, ino: Ino) -> VfsResult<InodeAttr> {
        self.env.check_alive()?;
        Ok(self.iget(ino)?.attr(ino))
    }

    fn chmod(&mut self, ino: Ino, mode: u32) -> VfsResult<()> {
        self.env.check_writable()?;
        let mut di = self.iget(ino)?;
        di.mode = (di.mode & 0xF000) | (mode & 0o7777);
        self.iput(ino, &di)?;
        self.maybe_commit()
    }

    fn chown(&mut self, ino: Ino, uid: u32, gid: u32) -> VfsResult<()> {
        self.env.check_writable()?;
        let mut di = self.iget(ino)?;
        di.uid = uid;
        di.gid = gid;
        self.iput(ino, &di)?;
        self.maybe_commit()
    }

    fn utimes(&mut self, ino: Ino, mtime: u64) -> VfsResult<()> {
        self.env.check_writable()?;
        let mut di = self.iget(ino)?;
        di.mtime = mtime;
        self.iput(ino, &di)?;
        self.maybe_commit()
    }

    fn create(&mut self, dir: Ino, name: &str, mode: u32) -> VfsResult<Ino> {
        self.env.check_writable()?;
        let mut dd = self.iget(dir)?;
        if dd.file_type() != Some(FileType::Directory) {
            return Err(Errno::ENOTDIR.into());
        }
        if self.dir_find(&dd, name)?.is_some() {
            return Err(Errno::EEXIST.into());
        }
        let ino = self.new_inode(FileType::Regular, mode)?;
        let mut entries = self.dir_entries_all(&dd)?;
        entries.push(RawDirEntry::new(ino as u32, FileType::Regular, name));
        self.dir_write_entries(dir, &mut dd, &entries)?;
        self.maybe_commit()?;
        Ok(ino)
    }

    fn mkdir(&mut self, dir: Ino, name: &str, mode: u32) -> VfsResult<Ino> {
        self.env.check_writable()?;
        let mut dd = self.iget(dir)?;
        if dd.file_type() != Some(FileType::Directory) {
            return Err(Errno::ENOTDIR.into());
        }
        if self.dir_find(&dd, name)?.is_some() {
            return Err(Errno::EEXIST.into());
        }
        let ino = self.new_inode(FileType::Directory, mode)?;
        let mut child = self.raw_iget(ino)?;
        let child_entries = vec![
            RawDirEntry::new(ino as u32, FileType::Directory, "."),
            RawDirEntry::new(dir as u32, FileType::Directory, ".."),
        ];
        self.dir_write_entries(ino, &mut child, &child_entries)?;
        let mut entries = self.dir_entries_all(&dd)?;
        entries.push(RawDirEntry::new(ino as u32, FileType::Directory, name));
        dd.links_count += 1; // child's ".." link
        self.dir_write_entries(dir, &mut dd, &entries)?;
        self.maybe_commit()?;
        Ok(ino)
    }

    fn unlink(&mut self, dir: Ino, name: &str) -> VfsResult<()> {
        self.env.check_writable()?;
        let mut dd = self.iget(dir)?;
        let Some(entry) = self.dir_find(&dd, name)? else {
            return Err(Errno::ENOENT.into());
        };
        let ino = entry.ino as u64;
        let mut di = self.iget(ino)?;
        if di.file_type() == Some(FileType::Directory) {
            return Err(Errno::EISDIR.into());
        }
        // PAPER-BUG: ext3's unlink "does not check the linkscount field
        // before modifying it and therefore a corrupted value can lead to a
        // system crash."
        if di.links_count == 0 {
            if self.opts.iron.fix_bugs {
                self.env
                    .klog
                    .error("ext3", format!("inode {ino} has zero link count"));
                return Err(Errno::EUCLEAN.into());
            }
            return Err(self.env.panic(
                "ext3",
                format!("kernel BUG: inode {ino} links_count underflow in unlink"),
            ));
        }
        let mut entries = self.dir_entries_all(&dd)?;
        entries.retain(|e| e.name != name);
        self.dir_write_entries(dir, &mut dd, &entries)?;
        di.links_count -= 1;
        if di.links_count == 0 {
            self.free_file_blocks(&mut di)?;
            if di.parity != 0 {
                self.free_block(di.parity as u64)?;
                self.parity_dirty.remove(&ino);
            }
            self.free_inode(ino)?;
        } else {
            self.iput(ino, &di)?;
        }
        self.maybe_commit()
    }

    fn rmdir(&mut self, dir: Ino, name: &str) -> VfsResult<()> {
        self.env.check_writable()?;
        // PAPER-BUG: rmdir "fails silently" — internal I/O errors are not
        // propagated to the caller.
        let inner = (|| -> VfsResult<()> {
            let mut dd = self.iget(dir)?;
            let Some(entry) = self.dir_find(&dd, name)? else {
                return Err(Errno::ENOENT.into());
            };
            let ino = entry.ino as u64;
            let mut di = self.iget(ino)?;
            if di.file_type() != Some(FileType::Directory) {
                return Err(Errno::ENOTDIR.into());
            }
            let child_entries = self.dir_entries_all(&di)?;
            if child_entries
                .iter()
                .any(|e| e.name != "." && e.name != "..")
            {
                return Err(Errno::ENOTEMPTY.into());
            }
            let mut entries = self.dir_entries_all(&dd)?;
            entries.retain(|e| e.name != name);
            dd.links_count = dd.links_count.saturating_sub(1);
            self.dir_write_entries(dir, &mut dd, &entries)?;
            self.free_file_blocks(&mut di)?;
            self.free_inode(ino)?;
            self.maybe_commit()
        })();
        match inner {
            Err(iron_vfs::VfsError::Errno(Errno::EIO)) if !self.opts.iron.fix_bugs => {
                // Swallowed: the user sees success while the directory
                // remains (the paper's silent rmdir failure).
                Ok(())
            }
            other => other,
        }
    }

    fn link(&mut self, ino: Ino, dir: Ino, name: &str) -> VfsResult<()> {
        self.env.check_writable()?;
        let mut dd = self.iget(dir)?;
        if self.dir_find(&dd, name)?.is_some() {
            return Err(Errno::EEXIST.into());
        }
        let mut di = self.iget(ino)?;
        di.links_count += 1;
        self.iput(ino, &di)?;
        let mut entries = self.dir_entries_all(&dd)?;
        entries.push(RawDirEntry::new(
            ino as u32,
            di.file_type().unwrap_or(FileType::Regular),
            name,
        ));
        self.dir_write_entries(dir, &mut dd, &entries)?;
        self.maybe_commit()
    }

    fn symlink(&mut self, dir: Ino, name: &str, target: &str) -> VfsResult<Ino> {
        self.env.check_writable()?;
        let mut dd = self.iget(dir)?;
        if self.dir_find(&dd, name)?.is_some() {
            return Err(Errno::EEXIST.into());
        }
        if target.len() > BLOCK_SIZE {
            return Err(Errno::ENAMETOOLONG.into());
        }
        let ino = self.new_inode(FileType::Symlink, 0o777)?;
        let mut di = self.raw_iget(ino)?;
        let baddr = self.alloc_block(self.group_hint(ino))?;
        self.set_file_block(&mut di, 0, baddr, self.group_hint(ino))?;
        di.blocks_count += 1;
        di.size = target.len() as u64;
        self.write_data_block(baddr, &Block::from_bytes(target.as_bytes()))?;
        self.iput(ino, &di)?;
        let mut entries = self.dir_entries_all(&dd)?;
        entries.push(RawDirEntry::new(ino as u32, FileType::Symlink, name));
        self.dir_write_entries(dir, &mut dd, &entries)?;
        self.maybe_commit()?;
        Ok(ino)
    }

    fn readlink(&mut self, ino: Ino) -> VfsResult<String> {
        self.env.check_alive()?;
        let di = self.iget(ino)?;
        if di.file_type() != Some(FileType::Symlink) {
            return Err(Errno::EINVAL.into());
        }
        let addr = self.get_file_block(&di, 0)?;
        if addr == 0 {
            return Ok(String::new());
        }
        let b = self.read_data_block(Some((ino, di)), addr)?;
        Ok(String::from_utf8_lossy(b.get_bytes(0, di.size as usize)).into_owned())
    }

    fn rename(
        &mut self,
        src_dir: Ino,
        src_name: &str,
        dst_dir: Ino,
        dst_name: &str,
    ) -> VfsResult<()> {
        self.env.check_writable()?;
        let sd = self.iget(src_dir)?;
        let Some(entry) = self.dir_find(&sd, src_name)? else {
            return Err(Errno::ENOENT.into());
        };
        let moved_ino = entry.ino as u64;
        let moved_is_dir = ftype_from_code(entry.ftype) == FileType::Directory;

        // Replace an existing destination file.
        let dd = self.iget(dst_dir)?;
        if let Some(existing) = self.dir_find(&dd, dst_name)? {
            if existing.ino as u64 != moved_ino {
                if ftype_from_code(existing.ftype) == FileType::Directory {
                    return Err(Errno::EISDIR.into());
                }
                self.unlink(dst_dir, dst_name)?;
            } else {
                return Ok(()); // same object
            }
        }

        // Remove from source.
        let mut sd = self.iget(src_dir)?;
        let mut src_entries = self.dir_entries_all(&sd)?;
        src_entries.retain(|e| e.name != src_name);
        if moved_is_dir && src_dir != dst_dir {
            sd.links_count = sd.links_count.saturating_sub(1);
        }
        self.dir_write_entries(src_dir, &mut sd, &src_entries)?;

        // Add to destination.
        let mut dd = self.iget(dst_dir)?;
        let mut dst_entries = self.dir_entries_all(&dd)?;
        dst_entries.push(RawDirEntry {
            ino: moved_ino as u32,
            ftype: entry.ftype,
            name: dst_name.to_string(),
        });
        if moved_is_dir && src_dir != dst_dir {
            dd.links_count += 1;
        }
        self.dir_write_entries(dst_dir, &mut dd, &dst_entries)?;

        // Fix the moved directory's "..".
        if moved_is_dir && src_dir != dst_dir {
            let mut md = self.iget(moved_ino)?;
            let mut mentries = self.dir_entries_all(&md)?;
            for e in &mut mentries {
                if e.name == ".." {
                    e.ino = dst_dir as u32;
                }
            }
            self.dir_write_entries(moved_ino, &mut md, &mentries)?;
        }
        self.maybe_commit()
    }

    fn read(&mut self, ino: Ino, off: u64, len: usize) -> VfsResult<Vec<u8>> {
        self.env.check_alive()?;
        let di = self.iget(ino)?;
        if di.file_type() == Some(FileType::Directory) {
            return Err(Errno::EISDIR.into());
        }
        if off >= di.size {
            return Ok(Vec::new());
        }
        let end = (off + len as u64).min(di.size);
        let mut out = Vec::with_capacity((end - off) as usize);
        let bs = BLOCK_SIZE as u64;
        let mut pos = off;
        while pos < end {
            let idx = pos / bs;
            let within = (pos % bs) as usize;
            let take = ((end - pos) as usize).min(BLOCK_SIZE - within);
            let addr = self.get_file_block(&di, idx)?;
            if addr == 0 {
                out.extend(std::iter::repeat_n(0u8, take));
            } else {
                let b = self.read_data_block(Some((ino, di)), addr)?;
                out.extend_from_slice(b.get_bytes(within, take));
            }
            pos += take as u64;
        }
        Ok(out)
    }

    fn write(&mut self, ino: Ino, off: u64, data: &[u8]) -> VfsResult<usize> {
        self.env.check_writable()?;
        let mut di = self.iget(ino)?;
        if di.file_type() == Some(FileType::Directory) {
            return Err(Errno::EISDIR.into());
        }
        let hint = self.group_hint(ino);
        let bs = BLOCK_SIZE as u64;
        let mut pos = off;
        let end = off + data.len() as u64;
        if end > DiskInode::max_file_size() {
            return Err(Errno::EFBIG.into());
        }
        let mut src = 0usize;
        while pos < end {
            let idx = pos / bs;
            let within = (pos % bs) as usize;
            let take = ((end - pos) as usize).min(BLOCK_SIZE - within);
            let mut addr = self.get_file_block(&di, idx)?;
            let preexisting = addr != 0;
            let old = if addr == 0 {
                Block::zeroed()
            } else if within == 0 && take == BLOCK_SIZE && !self.opts.iron.data_parity {
                // Full-block overwrite without parity: old contents unneeded.
                Block::zeroed()
            } else {
                self.read_data_block(Some((ino, di)), addr)?
            };
            if addr == 0 {
                addr = self.alloc_block(hint)?;
                di.blocks_count += 1;
                self.set_file_block(&mut di, idx, addr, hint)?;
            }
            let mut new = old.clone();
            new.put_bytes(within, &data[src..src + take]);
            if self.opts.iron.data_parity && di.parity != 0 {
                self.parity_update(ino, di.parity as u64, &old, &new);
            }
            // `Rm` extension: a failed data write is remapped to a fresh
            // block instead of aborting (RRemap, Table 2). The raw write is
            // probed first so the stock error-swallowing path is bypassed.
            if self.opts.iron.remap_writes {
                let probe = self
                    .dev
                    .write_tagged(BlockAddr(addr), &new, BlockType::Data.tag());
                if probe.is_err() {
                    let fresh = self.alloc_block(hint)?;
                    self.env.klog.warn(
                        "ixt3",
                        format!("data write to block {addr} failed; remapped to {fresh}"),
                    );
                    self.write_data_block(fresh, &new)?;
                    self.free_block(addr)?;
                    self.set_file_block(&mut di, idx, fresh, hint)?;
                } else {
                    self.note_cksum(addr, &new, false);
                    self.cache.insert(BlockAddr(addr), new.clone());
                }
            } else if self.opts.iron.data_checksum && preexisting {
                // `Dc` overwrites are copy-on-write: an in-place overwrite
                // of a mapped block can leave new bytes under the old
                // *committed* checksum (or old bytes under the new one)
                // across a crash — the mismatch reads as EIO after an
                // otherwise clean recovery (found by the iron-crash
                // enumerator once the ordered-data barrier made the
                // data/commit split a pure epoch prefix). Writing a fresh
                // block instead lets the mapping, bitmaps, and checksum
                // entry flip atomically in the journal: before the commit
                // the old block/checksum pair is intact, after it the new
                // pair is — and the ordered barrier puts the fresh
                // contents on the platter before the commit block.
                let fresh = self.alloc_block(hint)?;
                self.write_data_block(fresh, &new)?;
                self.free_block(addr)?;
                self.set_file_block(&mut di, idx, fresh, hint)?;
            } else {
                self.write_data_block(addr, &new)?;
            }
            pos += take as u64;
            src += take;
        }
        if end > di.size {
            di.size = end;
        }
        self.iput(ino, &di)?;
        self.maybe_commit()?;
        Ok(data.len())
    }

    fn truncate(&mut self, ino: Ino, size: u64) -> VfsResult<()> {
        self.env.check_writable()?;
        // PAPER-BUG: like rmdir, ext3's truncate swallows internal I/O
        // errors ("truncate and rmdir fail silently").
        let inner = (|| -> VfsResult<()> {
            let mut di = self.iget(ino)?;
            if di.file_type() == Some(FileType::Directory) {
                return Err(Errno::EISDIR.into());
            }
            if size >= di.size {
                // Extension: becomes a hole; reads return zeros.
                di.size = size;
                self.iput(ino, &di)?;
                return self.maybe_commit();
            }
            let bs = BLOCK_SIZE as u64;
            let keep_blocks = size.div_ceil(bs);
            let old_blocks = di.size.div_ceil(bs);
            let hint = self.group_hint(ino);
            for idx in keep_blocks..old_blocks {
                let addr = self.get_file_block(&di, idx)?;
                if addr != 0 {
                    if self.opts.iron.data_parity && di.parity != 0 {
                        let old = self.read_data_block(Some((ino, di)), addr)?;
                        self.parity_update(ino, di.parity as u64, &old, &Block::zeroed());
                    }
                    self.free_block(addr)?;
                    di.blocks_count = di.blocks_count.saturating_sub(1);
                    self.set_file_block(&mut di, idx, 0, hint)?;
                }
            }
            // Zero the tail of a partial final block.
            if !size.is_multiple_of(bs) {
                let idx = size / bs;
                let addr = self.get_file_block(&di, idx)?;
                if addr != 0 {
                    let mut b = self.read_data_block(Some((ino, di)), addr)?;
                    let keep = (size % bs) as usize;
                    let old = b.clone();
                    for byte in &mut b[keep..] {
                        *byte = 0;
                    }
                    if self.opts.iron.data_parity && di.parity != 0 {
                        self.parity_update(ino, di.parity as u64, &old, &b);
                    }
                    if self.opts.iron.data_checksum {
                        // Same COW-under-Dc rule as `write`: the zeroed
                        // tail must swap in atomically with its checksum.
                        let fresh = self.alloc_block(hint)?;
                        self.write_data_block(fresh, &b)?;
                        self.free_block(addr)?;
                        self.set_file_block(&mut di, idx, fresh, hint)?;
                    } else {
                        self.write_data_block(addr, &b)?;
                    }
                }
            }
            di.size = size;
            self.iput(ino, &di)?;
            self.maybe_commit()
        })();
        match inner {
            Err(iron_vfs::VfsError::Errno(Errno::EIO)) if !self.opts.iron.fix_bugs => Ok(()),
            other => other,
        }
    }

    fn readdir(&mut self, dirino: Ino) -> VfsResult<Vec<DirEntry>> {
        self.env.check_alive()?;
        let di = self.iget(dirino)?;
        if di.file_type() != Some(FileType::Directory) {
            return Err(Errno::ENOTDIR.into());
        }
        Ok(self
            .dir_entries_all(&di)?
            .into_iter()
            .map(|e| DirEntry {
                name: e.name,
                ino: e.ino as u64,
                ftype: ftype_from_code(e.ftype),
            })
            .collect())
    }

    fn fsync(&mut self, _ino: Ino) -> VfsResult<()> {
        self.env.check_alive()?;
        self.commit()?;
        self.dev.flush().map_err(iron_vfs::VfsError::from)
    }

    fn sync(&mut self) -> VfsResult<()> {
        self.env.check_alive()?;
        self.commit()?;
        self.dev.flush().map_err(iron_vfs::VfsError::from)
    }

    fn statfs(&mut self) -> VfsResult<StatFs> {
        self.env.check_alive()?;
        Ok(StatFs {
            block_size: BLOCK_SIZE as u32,
            blocks: self.layout().num_groups * self.layout().data_blocks_per_group(),
            blocks_free: self.sb.free_blocks,
            inodes: self.layout().total_inodes(),
            inodes_free: self.sb.free_inodes,
        })
    }

    fn unmount(&mut self) -> VfsResult<()> {
        self.env.check_alive()?;
        self.commit()?;
        self.checkpoint_now()?;
        self.flush_replicas();
        self.sb.state = FsState::Clean;
        let enc = self.sb.encode();
        let r = self
            .dev
            .write_tagged(BlockAddr(0), &enc, BlockType::Super.tag());
        if r.is_err() && self.opts.iron.fix_bugs {
            self.env
                .klog
                .error("ext3", "superblock write failed at unmount");
            return Err(Errno::EIO.into());
        }
        self.note_cksum(0, &enc, true);
        self.mirror_meta_write(0, &enc);
        let _ = self.dev.flush();
        self.env.set_state(MountState::Unmounted);
        Ok(())
    }
}

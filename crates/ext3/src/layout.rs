//! Disk layout: where every structure lives.
//!
//! ```text
//! block 0                 superblock
//! block 1                 group descriptor table
//! block 2                 journal superblock
//! blocks 3..3+J           journal log area
//! blocks ..+C             checksum table (reserved; used when Mc/Dc on)
//! groups                  each: [data bitmap][inode bitmap][inode table][data…][super replica]
//! upper half (Mr only)    metadata replica mirror: block b ↦ b + total/2
//! ```
//!
//! Real ext3 embeds the journal in an inode and scatters superblock copies
//! through the groups; we use fixed regions for clarity (DESIGN.md §3). The
//! per-group super replica mirrors ext3's never-updated copies — the paper
//! notes "these copies are never updated after file system creation and
//! hence are not useful" (`PAPER-BUG`, preserved).

use iron_core::{BlockAddr, BlockTag, BLOCK_SIZE};

/// Inode size on disk, bytes.
pub const INODE_SIZE: usize = 128;
/// Inodes per inode-table block.
pub const INODES_PER_BLOCK: u64 = (BLOCK_SIZE / INODE_SIZE) as u64;
/// The root directory's inode number (as in real ext2/ext3).
pub const ROOT_INO: u64 = 2;
/// First allocatable inode (1 is reserved, 2 is root).
pub const FIRST_FREE_INO: u64 = 3;

/// ext3 block types (Table 4 of the paper), used as I/O tags and as the
/// rows of the Figure 2/3 matrices.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BlockType {
    /// Inode table block.
    Inode,
    /// Directory data block.
    Dir,
    /// Data (block) bitmap.
    DataBitmap,
    /// Inode bitmap.
    InodeBitmap,
    /// Indirect pointer block.
    Indirect,
    /// User data block.
    Data,
    /// Superblock.
    Super,
    /// Group descriptor table.
    GroupDesc,
    /// Journal superblock.
    JournalSuper,
    /// Journal revoke block.
    JournalRevoke,
    /// Journal descriptor block.
    JournalDesc,
    /// Journal commit block.
    JournalCommit,
    /// Journaled copy of a metadata block.
    JournalData,
    /// Checksum-table block (ixt3 only).
    CksumTable,
    /// Metadata replica block (ixt3 only).
    Replica,
    /// Per-file parity block (ixt3 only).
    Parity,
}

impl BlockType {
    /// The thirteen stock-ext3 types, in the row order of Figure 2.
    pub const FIGURE2_ROWS: [BlockType; 13] = [
        BlockType::Inode,
        BlockType::Dir,
        BlockType::DataBitmap,
        BlockType::InodeBitmap,
        BlockType::Indirect,
        BlockType::Data,
        BlockType::Super,
        BlockType::GroupDesc,
        BlockType::JournalSuper,
        BlockType::JournalRevoke,
        BlockType::JournalDesc,
        BlockType::JournalCommit,
        BlockType::JournalData,
    ];

    /// The I/O tag for this type (matches the paper's row labels).
    pub fn tag(self) -> BlockTag {
        BlockTag(match self {
            BlockType::Inode => "inode",
            BlockType::Dir => "dir",
            BlockType::DataBitmap => "bitmap",
            BlockType::InodeBitmap => "i-bitmap",
            BlockType::Indirect => "indirect",
            BlockType::Data => "data",
            BlockType::Super => "super",
            BlockType::GroupDesc => "g-desc",
            BlockType::JournalSuper => "j-super",
            BlockType::JournalRevoke => "j-revoke",
            BlockType::JournalDesc => "j-desc",
            BlockType::JournalCommit => "j-commit",
            BlockType::JournalData => "j-data",
            BlockType::CksumTable => "cksum",
            BlockType::Replica => "m-replica",
            BlockType::Parity => "d-parity",
        })
    }

    /// True for the block types the IRON engine treats as *metadata* (the
    /// ones metadata checksumming/replication cover).
    pub fn is_metadata(self) -> bool {
        !matches!(
            self,
            BlockType::Data | BlockType::Parity | BlockType::CksumTable | BlockType::Replica
        )
    }

    /// A small stable numeric code used in journal descriptor records.
    pub fn code(self) -> u8 {
        match self {
            BlockType::Inode => 1,
            BlockType::Dir => 2,
            BlockType::DataBitmap => 3,
            BlockType::InodeBitmap => 4,
            BlockType::Indirect => 5,
            BlockType::Data => 6,
            BlockType::Super => 7,
            BlockType::GroupDesc => 8,
            BlockType::JournalSuper => 9,
            BlockType::JournalRevoke => 10,
            BlockType::JournalDesc => 11,
            BlockType::JournalCommit => 12,
            BlockType::JournalData => 13,
            BlockType::CksumTable => 14,
            BlockType::Replica => 15,
            BlockType::Parity => 16,
        }
    }

    /// Inverse of [`Self::code`].
    pub fn from_code(code: u8) -> Option<BlockType> {
        Some(match code {
            1 => BlockType::Inode,
            2 => BlockType::Dir,
            3 => BlockType::DataBitmap,
            4 => BlockType::InodeBitmap,
            5 => BlockType::Indirect,
            6 => BlockType::Data,
            7 => BlockType::Super,
            8 => BlockType::GroupDesc,
            9 => BlockType::JournalSuper,
            10 => BlockType::JournalRevoke,
            11 => BlockType::JournalDesc,
            12 => BlockType::JournalCommit,
            13 => BlockType::JournalData,
            14 => BlockType::CksumTable,
            15 => BlockType::Replica,
            16 => BlockType::Parity,
            _ => return None,
        })
    }
}

/// Formatting parameters.
#[derive(Clone, Copy, Debug)]
pub struct Ext3Params {
    /// Total device blocks.
    pub total_blocks: u64,
    /// Blocks per block group.
    pub blocks_per_group: u64,
    /// Inodes per block group.
    pub inodes_per_group: u64,
    /// Journal log-area blocks (excluding the journal superblock).
    pub journal_blocks: u64,
    /// Reserve the upper half of the device as a metadata replica mirror.
    pub mirror_metadata: bool,
}

impl Ext3Params {
    /// A small file system suitable for tests: 4096 blocks = 16 MiB.
    pub fn small() -> Self {
        Ext3Params {
            total_blocks: 4096,
            blocks_per_group: 1024,
            inodes_per_group: 512,
            journal_blocks: 256,
            mirror_metadata: false,
        }
    }

    /// A medium file system for benchmarks: 32768 blocks = 128 MiB.
    pub fn medium() -> Self {
        Ext3Params {
            total_blocks: 32768,
            blocks_per_group: 4096,
            inodes_per_group: 2048,
            journal_blocks: 1024,
            mirror_metadata: false,
        }
    }
}

/// Computed disk layout.
#[derive(Clone, Copy, Debug)]
pub struct DiskLayout {
    /// The parameters this layout was computed from.
    pub params: Ext3Params,
    /// Journal superblock address.
    pub journal_super: u64,
    /// First block of the journal log area.
    pub journal_start: u64,
    /// Number of journal log blocks.
    pub journal_len: u64,
    /// First block of the checksum table.
    pub cksum_start: u64,
    /// Number of checksum-table blocks.
    pub cksum_len: u64,
    /// First block of the replica log (`Mr` only; the paper's "separate
    /// replica log" that metadata copies stream into before being
    /// checkpointed to the distant mirror).
    pub replica_log_start: u64,
    /// Replica-log length (0 when the mirror is disabled).
    pub replica_log_len: u64,
    /// First block of group 0.
    pub groups_start: u64,
    /// Number of block groups.
    pub num_groups: u64,
    /// Blocks usable by the file system proper (excludes the mirror).
    pub fs_blocks: u64,
    /// Inode-table blocks per group.
    pub itable_blocks: u64,
}

/// Checksum entry size on disk (8-byte truncated SHA-1).
pub const CKSUM_ENTRY: u64 = 8;

impl DiskLayout {
    /// Compute the layout for the given parameters.
    ///
    /// # Panics
    /// Panics if the device is too small to hold at least one block group.
    pub fn compute(params: Ext3Params) -> DiskLayout {
        let fs_blocks = if params.mirror_metadata {
            params.total_blocks / 2
        } else {
            params.total_blocks
        };
        let journal_super = 2;
        let journal_start = 3;
        let journal_len = params.journal_blocks;
        let cksum_start = journal_start + journal_len;
        // One 8-byte entry per device block (covering the whole device keeps
        // indexing trivial; unused when checksumming is off).
        let cksum_len = (params.total_blocks * CKSUM_ENTRY).div_ceil(BLOCK_SIZE as u64);
        let replica_log_start = cksum_start + cksum_len;
        let replica_log_len = if params.mirror_metadata {
            params.journal_blocks
        } else {
            0
        };
        let groups_start = replica_log_start + replica_log_len;
        assert!(
            groups_start + params.blocks_per_group <= fs_blocks,
            "device too small for one block group"
        );
        let num_groups = (fs_blocks - groups_start) / params.blocks_per_group;
        let itable_blocks = params.inodes_per_group.div_ceil(INODES_PER_BLOCK);
        DiskLayout {
            params,
            journal_super,
            journal_start,
            journal_len,
            cksum_start,
            cksum_len,
            replica_log_start,
            replica_log_len,
            groups_start,
            num_groups,
            fs_blocks,
            itable_blocks,
        }
    }

    /// The superblock address.
    pub fn super_block(&self) -> BlockAddr {
        BlockAddr(0)
    }

    /// The group descriptor table address.
    pub fn gdt_block(&self) -> BlockAddr {
        BlockAddr(1)
    }

    /// First block of group `g`.
    pub fn group_base(&self, g: u64) -> u64 {
        self.groups_start + g * self.params.blocks_per_group
    }

    /// Data-bitmap block of group `g`.
    pub fn data_bitmap(&self, g: u64) -> BlockAddr {
        BlockAddr(self.group_base(g))
    }

    /// Inode-bitmap block of group `g`.
    pub fn inode_bitmap(&self, g: u64) -> BlockAddr {
        BlockAddr(self.group_base(g) + 1)
    }

    /// First inode-table block of group `g`.
    pub fn inode_table(&self, g: u64) -> u64 {
        self.group_base(g) + 2
    }

    /// The never-updated superblock replica of group `g` (`PAPER-BUG`
    /// fidelity: present but useless).
    pub fn super_replica(&self, g: u64) -> BlockAddr {
        BlockAddr(self.group_base(g) + self.params.blocks_per_group - 1)
    }

    /// First data block of group `g`.
    pub fn data_start(&self, g: u64) -> u64 {
        self.inode_table(g) + self.itable_blocks
    }

    /// Data blocks per group (excludes the super-replica block).
    pub fn data_blocks_per_group(&self) -> u64 {
        self.params.blocks_per_group - 2 - self.itable_blocks - 1
    }

    /// Total inode count.
    pub fn total_inodes(&self) -> u64 {
        self.num_groups * self.params.inodes_per_group
    }

    /// (inode-table block, byte offset) of inode `ino`.
    ///
    /// Inode numbers are 1-based; `ino - 1` indexes the global inode space.
    pub fn inode_location(&self, ino: u64) -> (BlockAddr, usize) {
        let idx = ino - 1;
        let g = idx / self.params.inodes_per_group;
        let within = idx % self.params.inodes_per_group;
        let block = self.inode_table(g) + within / INODES_PER_BLOCK;
        let offset = (within % INODES_PER_BLOCK) as usize * INODE_SIZE;
        (BlockAddr(block), offset)
    }

    /// Checksum-table location (block, byte offset) for device block `b`.
    pub fn cksum_location(&self, b: u64) -> (BlockAddr, usize) {
        let entries_per_block = BLOCK_SIZE as u64 / CKSUM_ENTRY;
        let block = self.cksum_start + b / entries_per_block;
        let offset = (b % entries_per_block) as usize * CKSUM_ENTRY as usize;
        (BlockAddr(block), offset)
    }

    /// Mirror address of metadata block `b` (only valid when
    /// `params.mirror_metadata`).
    pub fn replica_of(&self, b: u64) -> BlockAddr {
        debug_assert!(self.params.mirror_metadata);
        BlockAddr(b + self.params.total_blocks / 2)
    }

    /// The group that owns data block `b`, if any.
    pub fn group_of_block(&self, b: u64) -> Option<u64> {
        if b < self.groups_start
            || b >= self.groups_start + self.num_groups * self.params.blocks_per_group
        {
            return None;
        }
        Some((b - self.groups_start) / self.params.blocks_per_group)
    }

    /// Classify a block address by the static layout alone. Dynamic types
    /// (dir vs data vs indirect) cannot be decided from the address; those
    /// come back as `Data` and are refined by the gray-box classifier in
    /// `iron-fingerprint`.
    pub fn classify_static(&self, b: u64) -> BlockType {
        if b == 0 {
            return BlockType::Super;
        }
        if b == 1 {
            return BlockType::GroupDesc;
        }
        if b == self.journal_super {
            return BlockType::JournalSuper;
        }
        if b >= self.journal_start && b < self.journal_start + self.journal_len {
            return BlockType::JournalData; // refined by journal contents
        }
        if b >= self.cksum_start && b < self.cksum_start + self.cksum_len {
            return BlockType::CksumTable;
        }
        if b >= self.replica_log_start && b < self.replica_log_start + self.replica_log_len {
            return BlockType::Replica;
        }
        if self.params.mirror_metadata && b >= self.params.total_blocks / 2 {
            return BlockType::Replica;
        }
        if let Some(g) = self.group_of_block(b) {
            let base = self.group_base(g);
            if b == base {
                return BlockType::DataBitmap;
            }
            if b == base + 1 {
                return BlockType::InodeBitmap;
            }
            if b >= self.inode_table(g) && b < self.inode_table(g) + self.itable_blocks {
                return BlockType::Inode;
            }
            if b == self.super_replica(g).0 {
                return BlockType::Super;
            }
        }
        BlockType::Data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_layout_is_consistent() {
        let l = DiskLayout::compute(Ext3Params::small());
        assert_eq!(l.journal_super, 2);
        assert_eq!(l.journal_start, 3);
        assert_eq!(l.cksum_start, 3 + 256);
        // 4096 blocks * 8 bytes / 4096 = 8 blocks of checksum table.
        assert_eq!(l.cksum_len, 8);
        assert_eq!(l.replica_log_len, 0, "no mirror, no replica log");
        assert_eq!(l.groups_start, 267);
        assert!(l.num_groups >= 3);
        assert_eq!(l.itable_blocks, 512 / 32);
        assert!(l.data_blocks_per_group() > 900);
    }

    #[test]
    fn inode_locations_do_not_collide() {
        let l = DiskLayout::compute(Ext3Params::small());
        let a = l.inode_location(1);
        let b = l.inode_location(2);
        let c = l.inode_location(33);
        assert_eq!(a.0, b.0, "inodes 1,2 share the first table block");
        assert_ne!(a.1, b.1);
        assert_ne!(a.0, c.0, "inode 33 lives in the second table block");
        // Crossing into group 1.
        let d = l.inode_location(513);
        assert_eq!(d.0 .0, l.inode_table(1));
        assert_eq!(d.1, 0);
    }

    #[test]
    fn cksum_location_covers_whole_device() {
        let l = DiskLayout::compute(Ext3Params::small());
        let (first, off0) = l.cksum_location(0);
        assert_eq!(first.0, l.cksum_start);
        assert_eq!(off0, 0);
        let (last, _) = l.cksum_location(4095);
        assert!(last.0 < l.cksum_start + l.cksum_len);
    }

    #[test]
    fn classify_static_matches_layout() {
        let l = DiskLayout::compute(Ext3Params::small());
        assert_eq!(l.classify_static(0), BlockType::Super);
        assert_eq!(l.classify_static(1), BlockType::GroupDesc);
        assert_eq!(l.classify_static(2), BlockType::JournalSuper);
        assert_eq!(l.classify_static(10), BlockType::JournalData);
        assert_eq!(l.classify_static(l.cksum_start), BlockType::CksumTable);
        let g0 = l.group_base(0);
        assert_eq!(l.classify_static(g0), BlockType::DataBitmap);
        assert_eq!(l.classify_static(g0 + 1), BlockType::InodeBitmap);
        assert_eq!(l.classify_static(g0 + 2), BlockType::Inode);
        assert_eq!(l.classify_static(l.data_start(0)), BlockType::Data);
        assert_eq!(l.classify_static(l.super_replica(0).0), BlockType::Super);
    }

    #[test]
    fn mirrored_layout_halves_fs_space() {
        let mut p = Ext3Params::small();
        p.mirror_metadata = true;
        let l = DiskLayout::compute(p);
        assert_eq!(l.fs_blocks, 2048);
        assert_eq!(l.replica_log_len, 256);
        assert_eq!(l.replica_of(5).0, 5 + 2048);
        assert_eq!(l.classify_static(3000), BlockType::Replica);
        assert_eq!(
            l.classify_static(l.replica_log_start),
            BlockType::Replica,
            "replica log classifies as replica"
        );
    }

    #[test]
    fn block_type_codes_round_trip() {
        for ty in BlockType::FIGURE2_ROWS {
            assert_eq!(BlockType::from_code(ty.code()), Some(ty));
        }
        assert_eq!(BlockType::from_code(0), None);
        assert_eq!(BlockType::from_code(99), None);
    }

    #[test]
    fn metadata_classification() {
        assert!(BlockType::Inode.is_metadata());
        assert!(BlockType::Dir.is_metadata());
        assert!(!BlockType::Data.is_metadata());
        assert!(!BlockType::Parity.is_metadata());
    }
}

//! A zero-dependency `std::thread` worker pool — the shared executor
//! behind every embarrassingly-parallel engine in the workspace.
//!
//! Extracted from `iron-fsck` (where it drove the pFSCK-style parallel
//! check passes) so the fingerprinting campaign can shard its
//! (mode × block-type × workload) cell cross product over the same
//! scheduler: one implementation, two consumers. Two primitives, mirroring
//! pFSCK's two axes of parallelism:
//!
//! * [`WorkerPool::shard`] — *intra-pass data parallelism*: a slice of
//!   work items is claimed in chunks from a shared atomic cursor, each
//!   worker folds its chunks into a private accumulator (a per-shard
//!   bitmap, counter map, keyed cell list, ...), and the accumulators are
//!   merged on the caller's thread once every worker has joined — the
//!   barrier.
//! * [`WorkerPool::run_jobs`] — *inter-pass pipelining*: independent
//!   passes run as concurrent jobs instead of sequentially.
//!
//! With one thread both primitives degrade to plain sequential loops on
//! the calling thread — no pool, no atomics — so a `threads = 1`
//! configuration is an honest single-threaded baseline for the scaling
//! benches. Merging must be commutative: chunk claiming is racy, so which
//! worker sees which item is nondeterministic. Consumers re-establish
//! determinism downstream — `iron-fsck` canonically sorts its final
//! report, the campaign engine merges cells by their unique
//! `(mode, row, col)` key.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// A boxed pipelined job (see [`WorkerPool::run_jobs`]).
pub type Job<'env, R> = Box<dyn FnOnce() -> R + Send + 'env>;

/// Upper bound on the chunk size workers claim per cursor fetch.
const MAX_CHUNK: usize = 1024;
/// Chunks-per-worker target; >1 so fast workers steal from slow ones.
const CHUNKS_PER_WORKER: usize = 8;

/// A fixed-width worker pool. Threads are scoped: each call spawns and
/// joins its own gang, so the pool holds no state beyond the width.
#[derive(Clone, Copy, Debug)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// A pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// A pool as wide as the machine (`available_parallelism`, or 1 when
    /// that cannot be determined).
    pub fn auto() -> Self {
        WorkerPool::new(thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// The configured width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Shard `items` across the pool: every worker folds claimed chunks
    /// into its own `A` via `work`, then the per-shard accumulators are
    /// merged into one at the join barrier via `merge` (which must be
    /// commutative and associative — see module docs).
    pub fn shard<T, A, W, M>(&self, items: &[T], work: W, merge: M) -> A
    where
        T: Sync,
        A: Default + Send,
        W: Fn(&mut A, &T) + Sync,
        M: Fn(&mut A, A),
    {
        let chunk = (items.len() / (self.threads * CHUNKS_PER_WORKER)).clamp(1, MAX_CHUNK);
        self.shard_chunked(items, chunk, work, merge)
    }

    /// Like [`Self::shard`], but workers claim exactly one item at a time.
    ///
    /// For coarse-grained, long-running items — whole client sessions, full
    /// campaign cells — where one slow item per claim is the unit of load
    /// imbalance and cursor traffic is negligible next to item cost.
    pub fn shard_fine<T, A, W, M>(&self, items: &[T], work: W, merge: M) -> A
    where
        T: Sync,
        A: Default + Send,
        W: Fn(&mut A, &T) + Sync,
        M: Fn(&mut A, A),
    {
        self.shard_chunked(items, 1, work, merge)
    }

    fn shard_chunked<T, A, W, M>(&self, items: &[T], chunk: usize, work: W, merge: M) -> A
    where
        T: Sync,
        A: Default + Send,
        W: Fn(&mut A, &T) + Sync,
        M: Fn(&mut A, A),
    {
        if self.threads == 1 || items.len() <= 1 {
            let mut acc = A::default();
            for item in items {
                work(&mut acc, item);
            }
            return acc;
        }
        let cursor = AtomicUsize::new(0);
        let shards: Vec<A> = thread::scope(|s| {
            let handles: Vec<_> = (0..self.threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut acc = A::default();
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= items.len() {
                                break;
                            }
                            let end = (start + chunk).min(items.len());
                            for item in &items[start..end] {
                                work(&mut acc, item);
                            }
                        }
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        let mut out = A::default();
        for shard in shards {
            merge(&mut out, shard);
        }
        out
    }

    /// Run independent jobs concurrently (the pipelining primitive) and
    /// return their results in submission order. With one thread the
    /// jobs run sequentially, in order, on the calling thread.
    pub fn run_jobs<'env, R: Send>(&self, jobs: Vec<Job<'env, R>>) -> Vec<R> {
        if self.threads == 1 {
            return jobs.into_iter().map(|j| j()).collect();
        }
        thread::scope(|s| {
            let handles: Vec<_> = jobs.into_iter().map(|j| s.spawn(j)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool job panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn shard_visits_every_item_exactly_once() {
        let items: Vec<u64> = (0..10_000).collect();
        for threads in [1, 2, 4, 7] {
            let pool = WorkerPool::new(threads);
            let seen: BTreeSet<u64> = pool.shard(
                &items,
                |acc: &mut BTreeSet<u64>, &i| {
                    assert!(acc.insert(i), "item folded twice within a shard");
                },
                |out, shard| {
                    for i in shard {
                        assert!(out.insert(i), "item claimed by two shards");
                    }
                },
            );
            assert_eq!(seen.len(), items.len(), "threads={threads}");
        }
    }

    #[test]
    fn shard_sum_matches_sequential() {
        let items: Vec<u64> = (1..=5000).collect();
        let expect: u64 = items.iter().sum();
        for threads in [1, 3, 8] {
            let pool = WorkerPool::new(threads);
            let sum: u64 = pool.shard(&items, |acc, &i| *acc += i, |out, shard| *out += shard);
            assert_eq!(sum, expect);
        }
    }

    #[test]
    fn shard_fine_visits_every_item_exactly_once() {
        let items: Vec<u64> = (0..2_000).collect();
        for threads in [1, 2, 5, 8] {
            let pool = WorkerPool::new(threads);
            let seen: BTreeSet<u64> = pool.shard_fine(
                &items,
                |acc: &mut BTreeSet<u64>, &i| {
                    assert!(acc.insert(i), "item folded twice within a shard");
                },
                |out, shard| {
                    for i in shard {
                        assert!(out.insert(i), "item claimed by two shards");
                    }
                },
            );
            assert_eq!(seen.len(), items.len(), "threads={threads}");
        }
    }

    #[test]
    fn shard_handles_empty_and_tiny_inputs() {
        let pool = WorkerPool::new(4);
        let none: Vec<u32> = Vec::new();
        let sum: u32 = pool.shard(&none, |acc, &i| *acc += i, |out, s| *out += s);
        assert_eq!(sum, 0);
        let one = vec![41u32];
        let sum: u32 = pool.shard(&one, |acc, &i| *acc += i + 1, |out, s| *out += s);
        assert_eq!(sum, 42);
    }

    #[test]
    fn run_jobs_preserves_submission_order() {
        for threads in [1, 4] {
            let pool = WorkerPool::new(threads);
            let jobs: Vec<Job<'_, usize>> = (0..6usize)
                .map(|i| Box::new(move || i * 10) as Job<'_, usize>)
                .collect();
            assert_eq!(pool.run_jobs(jobs), vec![0, 10, 20, 30, 40, 50]);
        }
    }

    #[test]
    fn width_is_clamped_to_one() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
        assert_eq!(WorkerPool::new(8).threads(), 8);
        assert!(WorkerPool::auto().threads() >= 1);
    }
}

//! The **IRON taxonomy** (§3, Tables 1 and 2 of the paper).
//!
//! The taxonomy gives a vocabulary for *failure policy*: which techniques a
//! file system uses to detect partial disk faults (Level D) and to recover
//! from them (Level R). The fingerprinting framework classifies observed
//! behavior into these levels, and the resulting per-(workload × block type ×
//! fault) sets of levels *are* Figure 2 and Figure 3 of the paper.

use std::fmt;

/// Level D of the IRON taxonomy: how a file system *detects* that a block
/// could not be accessed or was corrupted (Table 1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DetectionLevel {
    /// No detection at all: the file system assumes the disk works.
    DZero,
    /// Check error codes returned by the lower levels of the storage stack.
    DErrorCode,
    /// Verify data structures for consistency (magic numbers, field ranges,
    /// cross-block checks).
    DSanity,
    /// Redundancy over one or more blocks — checksums, replica comparison —
    /// detecting corruption in an end-to-end way.
    DRedundancy,
}

impl DetectionLevel {
    /// All levels, in taxonomy order.
    pub const ALL: [DetectionLevel; 4] = [
        DetectionLevel::DZero,
        DetectionLevel::DErrorCode,
        DetectionLevel::DSanity,
        DetectionLevel::DRedundancy,
    ];

    /// The single-character glyph used in the Figure 2/3 matrices.
    ///
    /// Matches the paper's key: blank for `DZero`, `-` for `DErrorCode`,
    /// `|` for `DSanity`, `\` for `DRedundancy`.
    pub fn glyph(&self) -> char {
        match self {
            DetectionLevel::DZero => ' ',
            DetectionLevel::DErrorCode => '-',
            DetectionLevel::DSanity => '|',
            DetectionLevel::DRedundancy => '\\',
        }
    }

    /// The technique, as worded in Table 1.
    pub fn technique(&self) -> &'static str {
        match self {
            DetectionLevel::DZero => "No detection",
            DetectionLevel::DErrorCode => "Check return codes from lower levels",
            DetectionLevel::DSanity => "Check data structures for consistency",
            DetectionLevel::DRedundancy => "Redundancy over one or more blocks",
        }
    }

    /// The comment column of Table 1.
    pub fn comment(&self) -> &'static str {
        match self {
            DetectionLevel::DZero => "Assumes disk works",
            DetectionLevel::DErrorCode => "Assumes lower level can detect errors",
            DetectionLevel::DSanity => "May require extra space per block",
            DetectionLevel::DRedundancy => "Detect corruption in end-to-end way",
        }
    }
}

impl fmt::Display for DetectionLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DetectionLevel::DZero => "DZero",
            DetectionLevel::DErrorCode => "DErrorCode",
            DetectionLevel::DSanity => "DSanity",
            DetectionLevel::DRedundancy => "DRedundancy",
        })
    }
}

/// Level R of the IRON taxonomy: how a file system *recovers* once a fault
/// is detected (Table 2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RecoveryLevel {
    /// No recovery; not even client notification.
    RZero,
    /// Propagate the error to the calling application.
    RPropagate,
    /// Stop activity: crash/panic, remount read-only, or abort the journal.
    RStop,
    /// Manufacture a response (e.g. return a blank block) and keep running.
    RGuess,
    /// Retry the failed read or write.
    RRetry,
    /// Repair inconsistent data structures (fsck-style).
    RRepair,
    /// Remap the block (or a whole semantic unit) to a different locale.
    RRemap,
    /// Use block replication, parity, or another redundant copy.
    RRedundancy,
}

impl RecoveryLevel {
    /// All levels, in taxonomy order.
    pub const ALL: [RecoveryLevel; 8] = [
        RecoveryLevel::RZero,
        RecoveryLevel::RPropagate,
        RecoveryLevel::RStop,
        RecoveryLevel::RGuess,
        RecoveryLevel::RRetry,
        RecoveryLevel::RRepair,
        RecoveryLevel::RRemap,
        RecoveryLevel::RRedundancy,
    ];

    /// The single-character glyph used in the Figure 2/3 matrices.
    ///
    /// Matches the paper's key: blank for `RZero`, `/` for `RRetry`, `-` for
    /// `RPropagate`, `|` for `RStop`, `\` for `RRedundancy`. Levels the
    /// paper's figures never needed glyphs for get distinct characters.
    pub fn glyph(&self) -> char {
        match self {
            RecoveryLevel::RZero => ' ',
            RecoveryLevel::RPropagate => '-',
            RecoveryLevel::RStop => '|',
            RecoveryLevel::RGuess => 'g',
            RecoveryLevel::RRetry => '/',
            RecoveryLevel::RRepair => 'r',
            RecoveryLevel::RRemap => 'm',
            RecoveryLevel::RRedundancy => '\\',
        }
    }

    /// The technique, as worded in Table 2.
    pub fn technique(&self) -> &'static str {
        match self {
            RecoveryLevel::RZero => "No recovery",
            RecoveryLevel::RPropagate => "Propagate error",
            RecoveryLevel::RStop => "Stop activity (crash, prevent writes)",
            RecoveryLevel::RGuess => "Return \"guess\" at block contents",
            RecoveryLevel::RRetry => "Retry read or write",
            RecoveryLevel::RRepair => "Repair data structs",
            RecoveryLevel::RRemap => "Remaps block or file to different locale",
            RecoveryLevel::RRedundancy => "Block replication or other forms",
        }
    }

    /// The comment column of Table 2.
    pub fn comment(&self) -> &'static str {
        match self {
            RecoveryLevel::RZero => "Assumes disk works",
            RecoveryLevel::RPropagate => "Informs user",
            RecoveryLevel::RStop => "Limit amount of damage",
            RecoveryLevel::RGuess => "Could be wrong; failure hidden",
            RecoveryLevel::RRetry => "Handles failures that are transient",
            RecoveryLevel::RRepair => "Could lose data",
            RecoveryLevel::RRemap => "Assumes disk informs FS of failures",
            RecoveryLevel::RRedundancy => "Enables recovery from loss/corruption",
        }
    }
}

impl fmt::Display for RecoveryLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RecoveryLevel::RZero => "RZero",
            RecoveryLevel::RPropagate => "RPropagate",
            RecoveryLevel::RStop => "RStop",
            RecoveryLevel::RGuess => "RGuess",
            RecoveryLevel::RRetry => "RRetry",
            RecoveryLevel::RRepair => "RRepair",
            RecoveryLevel::RRemap => "RRemap",
            RecoveryLevel::RRedundancy => "RRedundancy",
        })
    }
}

/// Render Table 1 of the paper as text.
pub fn render_table1() -> String {
    let mut out = String::from("Table 1: The Levels of the IRON Detection Taxonomy\n");
    out.push_str(&format!(
        "{:<14} {:<42} {}\n",
        "Level", "Technique", "Comment"
    ));
    for d in DetectionLevel::ALL {
        out.push_str(&format!(
            "{:<14} {:<42} {}\n",
            d.to_string(),
            d.technique(),
            d.comment()
        ));
    }
    out
}

/// Render Table 2 of the paper as text.
pub fn render_table2() -> String {
    let mut out = String::from("Table 2: The Levels of the IRON Recovery Taxonomy\n");
    out.push_str(&format!(
        "{:<14} {:<42} {}\n",
        "Level", "Technique", "Comment"
    ));
    for r in RecoveryLevel::ALL {
        out.push_str(&format!(
            "{:<14} {:<42} {}\n",
            r.to_string(),
            r.technique(),
            r.comment()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glyphs_match_paper_key() {
        assert_eq!(DetectionLevel::DZero.glyph(), ' ');
        assert_eq!(DetectionLevel::DErrorCode.glyph(), '-');
        assert_eq!(DetectionLevel::DSanity.glyph(), '|');
        assert_eq!(DetectionLevel::DRedundancy.glyph(), '\\');
        assert_eq!(RecoveryLevel::RRetry.glyph(), '/');
        assert_eq!(RecoveryLevel::RPropagate.glyph(), '-');
        assert_eq!(RecoveryLevel::RStop.glyph(), '|');
        assert_eq!(RecoveryLevel::RRedundancy.glyph(), '\\');
    }

    #[test]
    fn all_levels_enumerated_in_order() {
        assert_eq!(DetectionLevel::ALL.len(), 4);
        assert_eq!(RecoveryLevel::ALL.len(), 8);
        assert!(DetectionLevel::ALL.windows(2).all(|w| w[0] < w[1]));
        assert!(RecoveryLevel::ALL.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn tables_render_every_row() {
        let t1 = render_table1();
        for d in DetectionLevel::ALL {
            assert!(t1.contains(&d.to_string()), "missing {d}");
        }
        let t2 = render_table2();
        for r in RecoveryLevel::ALL {
            assert!(t2.contains(&r.to_string()), "missing {r}");
        }
    }

    #[test]
    fn display_names_unique() {
        let mut names: Vec<String> = RecoveryLevel::ALL.iter().map(|r| r.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), RecoveryLevel::ALL.len());
    }
}

//! Checksums used across the workspace.
//!
//! The paper's ixt3 prototype uses SHA-1 over block contents (§6.1); journal
//! self-checks in several of our file-system models use CRC32. Both are
//! implemented here, test-vectored against the published standards, so the
//! workspace carries no external crypto dependency.

/// A SHA-1 digest (20 bytes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Sha1Digest(pub [u8; 20]);

impl Sha1Digest {
    /// Render as lowercase hex.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// A truncated 64-bit view of the digest, used where a compact on-disk
    /// checksum field is wanted (first 8 bytes, big-endian, as SHA-1 output
    /// order).
    pub fn truncated64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("20 >= 8"))
    }
}

/// Compute the SHA-1 digest of `data` (FIPS 180-1).
pub fn sha1(data: &[u8]) -> Sha1Digest {
    let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

    // Message padding: 0x80, zeros, then the 64-bit big-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 80];
    for chunk in msg.chunks_exact(64) {
        for (i, word) in chunk.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(word.try_into().expect("4 bytes"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }

    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    Sha1Digest(out)
}

/// Compute the CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) of
/// `data`, as used by zlib/gzip.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Incremental CRC-32 update. `state` starts as `0xFFFF_FFFF`; the final
/// checksum is `state ^ 0xFFFF_FFFF`.
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    for &byte in data {
        state ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (state & 1).wrapping_neg();
            state = (state >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-1 / RFC 3174 test vectors.
    #[test]
    fn sha1_empty() {
        assert_eq!(
            sha1(b"").to_hex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn sha1_abc() {
        assert_eq!(
            sha1(b"abc").to_hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn sha1_two_block_message() {
        assert_eq!(
            sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn sha1_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha1(&data).to_hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn sha1_truncated64_matches_prefix() {
        let d = sha1(b"abc");
        assert_eq!(d.truncated64(), 0xa9993e364706816a);
    }

    // Canonical CRC-32 check value.
    #[test]
    fn crc32_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32_empty_is_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let oneshot = crc32(data);
        let mut st = 0xFFFF_FFFF;
        for chunk in data.chunks(7) {
            st = crc32_update(st, chunk);
        }
        assert_eq!(st ^ 0xFFFF_FFFF, oneshot);
    }

    #[test]
    fn checksums_distinguish_single_bit_flips() {
        let base = vec![0xA5u8; 4096];
        let base_sha = sha1(&base);
        let base_crc = crc32(&base);
        for pos in [0usize, 1, 2048, 4095] {
            let mut flipped = base.clone();
            flipped[pos] ^= 0x01;
            assert_ne!(sha1(&flipped), base_sha, "sha1 missed flip at {pos}");
            assert_ne!(crc32(&flipped), base_crc, "crc32 missed flip at {pos}");
        }
    }
}

//! Block-level primitives: fixed-size block buffers, block addresses, and
//! the type tags that make *type-aware* fault injection (§4.2) possible.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Size of a file-system block in bytes.
///
/// The paper's file systems all use 4 KiB blocks on Linux; we fix the same
/// size across every simulated file system.
pub const BLOCK_SIZE: usize = 4096;

/// Address of a block on a (simulated) disk, in units of [`BLOCK_SIZE`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// Byte offset of the start of this block on the device.
    pub fn byte_offset(self) -> u64 {
        self.0 * BLOCK_SIZE as u64
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A type tag attached to block I/O by the file system issuing it.
///
/// Each file system crate exposes a `BlockType` enum mirroring Table 4 of
/// the paper; the enum converts into a `BlockTag` (a static string such as
/// `"inode"` or `"j-commit"`) when the I/O is issued. The fault-injection
/// layer matches on these tags to fail *blocks of a specific type*, which is
/// the key idea of the paper's fingerprinting framework.
///
/// The fingerprinting crate additionally re-derives tags gray-box style by
/// walking the on-disk image, and the test suite asserts the two sources
/// agree — so tags are a convenience, not a cheat.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BlockTag(pub &'static str);

impl BlockTag {
    /// Tag used when a layer has no type information (e.g. raw device tools).
    pub const UNTYPED: BlockTag = BlockTag("untyped");
}

impl fmt::Display for BlockTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// A 4 KiB block buffer.
///
/// Stored on the heap (blocks are large) and cheaply cloneable only via
/// explicit [`Block::clone`]; dereferences to `[u8]` for byte access.
#[derive(Clone, PartialEq, Eq)]
pub struct Block(Box<[u8; BLOCK_SIZE]>);

impl Block {
    /// An all-zero block.
    pub fn zeroed() -> Self {
        Block(Box::new([0u8; BLOCK_SIZE]))
    }

    /// A block filled with the given byte (useful in tests).
    pub fn filled(byte: u8) -> Self {
        Block(Box::new([byte; BLOCK_SIZE]))
    }

    /// Build a block from a slice of at most [`BLOCK_SIZE`] bytes; the tail
    /// is zero-filled.
    ///
    /// # Panics
    /// Panics if `data` is longer than [`BLOCK_SIZE`].
    pub fn from_bytes(data: &[u8]) -> Self {
        assert!(data.len() <= BLOCK_SIZE, "slice exceeds block size");
        let mut b = Block::zeroed();
        b.0[..data.len()].copy_from_slice(data);
        b
    }

    /// Read a little-endian `u16` at `off`.
    pub fn get_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes(self.0[off..off + 2].try_into().expect("in-bounds"))
    }

    /// Read a little-endian `u32` at `off`.
    pub fn get_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.0[off..off + 4].try_into().expect("in-bounds"))
    }

    /// Read a little-endian `u64` at `off`.
    pub fn get_u64(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.0[off..off + 8].try_into().expect("in-bounds"))
    }

    /// Write a little-endian `u16` at `off`.
    pub fn put_u16(&mut self, off: usize, v: u16) {
        self.0[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u32` at `off`.
    pub fn put_u32(&mut self, off: usize, v: u32) {
        self.0[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64` at `off`.
    pub fn put_u64(&mut self, off: usize, v: u64) {
        self.0[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Copy `data` into the block at `off`.
    ///
    /// # Panics
    /// Panics if the copy would run past the end of the block.
    pub fn put_bytes(&mut self, off: usize, data: &[u8]) {
        self.0[off..off + data.len()].copy_from_slice(data);
    }

    /// Borrow `len` bytes starting at `off`.
    pub fn get_bytes(&self, off: usize, len: usize) -> &[u8] {
        &self.0[off..off + len]
    }

    /// True if every byte is zero.
    pub fn is_zeroed(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }
}

impl Default for Block {
    fn default() -> Self {
        Block::zeroed()
    }
}

impl Deref for Block {
    type Target = [u8; BLOCK_SIZE];
    fn deref(&self) -> &Self::Target {
        &self.0
    }
}

impl DerefMut for Block {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.0
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nonzero = self.0.iter().filter(|&&b| b != 0).count();
        write!(f, "Block({nonzero} nonzero bytes)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_block_is_zero() {
        let b = Block::zeroed();
        assert!(b.is_zeroed());
        assert_eq!(b.len(), BLOCK_SIZE);
    }

    #[test]
    fn little_endian_round_trips() {
        let mut b = Block::zeroed();
        b.put_u16(0, 0xBEEF);
        b.put_u32(2, 0xDEADBEEF);
        b.put_u64(6, 0x0123_4567_89AB_CDEF);
        assert_eq!(b.get_u16(0), 0xBEEF);
        assert_eq!(b.get_u32(2), 0xDEADBEEF);
        assert_eq!(b.get_u64(6), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn put_get_bytes_round_trip() {
        let mut b = Block::zeroed();
        b.put_bytes(100, b"iron file systems");
        assert_eq!(b.get_bytes(100, 17), b"iron file systems");
        assert!(!b.is_zeroed());
    }

    #[test]
    fn from_bytes_zero_fills_tail() {
        let b = Block::from_bytes(&[1, 2, 3]);
        assert_eq!(&b[..3], &[1, 2, 3]);
        assert!(b[3..].iter().all(|&x| x == 0));
    }

    #[test]
    #[should_panic(expected = "slice exceeds block size")]
    fn from_bytes_rejects_oversized() {
        let big = vec![0u8; BLOCK_SIZE + 1];
        let _ = Block::from_bytes(&big);
    }

    #[test]
    fn block_addr_byte_offset() {
        assert_eq!(BlockAddr(3).byte_offset(), 3 * 4096);
        assert_eq!(format!("{}", BlockAddr(7)), "#7");
    }

    #[test]
    fn tag_display() {
        assert_eq!(format!("{}", BlockTag("inode")), "inode");
        assert_eq!(BlockTag::UNTYPED.0, "untyped");
    }
}

//! POSIX-style error numbers returned through the simulated VFS API.
//!
//! The fingerprinting framework (§4.3) observes "the error codes and data
//! returned by the file system API" — these are those error codes.

use std::fmt;

/// A POSIX-flavored error code, as visible to applications.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)] // Names are the documentation, as in errno(3).
pub enum Errno {
    /// I/O error — the canonical propagation of a block failure.
    EIO,
    ENOENT,
    EEXIST,
    ENOTDIR,
    EISDIR,
    ENOTEMPTY,
    ENOSPC,
    /// Read-only file system — returned after an `RStop` read-only remount.
    EROFS,
    EINVAL,
    ENAMETOOLONG,
    EFBIG,
    EBADF,
    ENODEV,
    EACCES,
    EMLINK,
    ENFILE,
    EXDEV,
    /// Too many levels of symbolic links.
    ELOOP,
    /// "Structure needs cleaning" — Linux's code for detected on-disk
    /// corruption (`EUCLEAN`), the canonical propagation of a failed sanity
    /// check.
    EUCLEAN,
    /// Operation not supported by this file system model.
    ENOSYS,
}

impl Errno {
    /// Short description in the style of `strerror(3)`.
    pub fn describe(&self) -> &'static str {
        match self {
            Errno::EIO => "Input/output error",
            Errno::ENOENT => "No such file or directory",
            Errno::EEXIST => "File exists",
            Errno::ENOTDIR => "Not a directory",
            Errno::EISDIR => "Is a directory",
            Errno::ENOTEMPTY => "Directory not empty",
            Errno::ENOSPC => "No space left on device",
            Errno::EROFS => "Read-only file system",
            Errno::EINVAL => "Invalid argument",
            Errno::ENAMETOOLONG => "File name too long",
            Errno::EFBIG => "File too large",
            Errno::EBADF => "Bad file descriptor",
            Errno::ENODEV => "No such device",
            Errno::EACCES => "Permission denied",
            Errno::EMLINK => "Too many links",
            Errno::ENFILE => "Too many open files",
            Errno::EXDEV => "Cross-device link",
            Errno::ELOOP => "Too many levels of symbolic links",
            Errno::EUCLEAN => "Structure needs cleaning",
            Errno::ENOSYS => "Function not implemented",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?} ({})", self.describe())
    }
}

impl std::error::Error for Errno {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_description() {
        assert_eq!(format!("{}", Errno::EIO), "EIO (Input/output error)");
        assert_eq!(
            format!("{}", Errno::EUCLEAN),
            "EUCLEAN (Structure needs cleaning)"
        );
    }

    #[test]
    fn errnos_are_comparable() {
        assert_eq!(Errno::ENOENT, Errno::ENOENT);
        assert_ne!(Errno::ENOENT, Errno::EIO);
    }
}

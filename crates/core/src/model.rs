//! The **fail-partial failure model** (§2.3 of the paper).
//!
//! In the classic *fail-stop* model a disk either works perfectly or fails
//! absolutely and detectably. The paper argues modern disks instead exhibit
//! *partial* failures: individual blocks become inaccessible (latent sector
//! errors) or silently corrupted, and those faults may be permanent
//! ("sticky") or temporary ("transient"), and may or may not be spatially
//! local. This module encodes that model as data so the fault-injection
//! layer (the `iron-faultinject` crate) can enact it.

use std::fmt;

use crate::block::BlockAddr;

/// Direction of a block I/O request.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IoKind {
    /// A block read.
    Read,
    /// A block write.
    Write,
}

impl fmt::Display for IoKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IoKind::Read => "read",
            IoKind::Write => "write",
        })
    }
}

/// How a fault manifests (§2.3: the three manifestations of the
/// fail-partial model).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultKind {
    /// A latent sector error on read: the request returns an explicit error
    /// code and no data.
    ReadError,
    /// A write failure: the request returns an explicit error code and the
    /// medium is not modified.
    WriteError,
    /// Silent block corruption: the read "succeeds" but returns bad data.
    /// This is the insidious case — no error code is produced.
    Corruption(CorruptionStyle),
    /// Entire-disk failure: every subsequent request fails. The classic
    /// fail-stop case, retained for completeness.
    WholeDisk,
    /// A *time-domain* fault: the request completes correctly but takes
    /// `multiplier`× its nominal service time (a degraded head, a deep
    /// internal retry loop inside the drive). No error code is produced —
    /// only a deadline check against the sim clock can see it.
    Slow {
        /// Deterministic service-time multiplier (≥ 1).
        multiplier: u32,
    },
    /// The request never completes in any useful time frame: the drive is
    /// hung. Modeled as an enormous fixed service-time charge, so a stack
    /// *without* deadlines simply stalls (in sim time) while one *with*
    /// deadlines sees a timeout.
    Hang,
}

impl FaultKind {
    /// Short label used in reports ("read" / "write" / "corrupt" / "disk").
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::ReadError => "read",
            FaultKind::WriteError => "write",
            FaultKind::Corruption(_) => "corrupt",
            FaultKind::WholeDisk => "disk",
            FaultKind::Slow { .. } => "slow",
            FaultKind::Hang => "hang",
        }
    }

    /// Does this fault fire on the given I/O direction?
    ///
    /// Read errors and corruption manifest on reads; write errors on writes;
    /// whole-disk failures and latency faults on both.
    pub fn applies_to(&self, io: IoKind) -> bool {
        match self {
            FaultKind::ReadError | FaultKind::Corruption(_) => io == IoKind::Read,
            FaultKind::WriteError => io == IoKind::Write,
            FaultKind::WholeDisk | FaultKind::Slow { .. } | FaultKind::Hang => true,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::ReadError => write!(f, "read failure"),
            FaultKind::WriteError => write!(f, "write failure"),
            FaultKind::Corruption(style) => write!(f, "corruption ({style})"),
            FaultKind::WholeDisk => write!(f, "whole-disk failure"),
            FaultKind::Slow { multiplier } => write!(f, "slow ({multiplier}× service time)"),
            FaultKind::Hang => write!(f, "hang"),
        }
    }
}

/// How corrupted data is fabricated (§4.2: "in some cases we inject random
/// noise, whereas in other cases we use a block similar to the expected one
/// but with one or more corrupted fields").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CorruptionStyle {
    /// Replace the block with pseudo-random noise (fails magic/type checks).
    RandomNoise,
    /// Zero the block (a common manifestation of lost writes).
    Zeroed,
    /// Flip a burst of bits starting at the given byte offset ("bit rot").
    BitFlip {
        /// Byte offset of the first flipped byte within the block.
        offset: usize,
        /// Number of consecutive bytes whose bits are inverted.
        len: usize,
    },
    /// Overwrite a single little-endian 32-bit field at `offset` with
    /// `value`. This models a *plausible but wrong* block — the kind that
    /// passes magic-number sanity checks and is therefore the paper's
    /// strongest argument for checksums (§5.6).
    Field {
        /// Byte offset of the 32-bit field to overwrite.
        offset: usize,
        /// The bogus value written into the field.
        value: u32,
    },
    /// Replace the block with the contents of a *different* valid block of
    /// the same type, modeling a misdirected write landing here. Like
    /// `Field`, this passes type/sanity checks.
    MisdirectedFrom(BlockAddr),
}

impl fmt::Display for CorruptionStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptionStyle::RandomNoise => write!(f, "random noise"),
            CorruptionStyle::Zeroed => write!(f, "zeroed"),
            CorruptionStyle::BitFlip { offset, len } => {
                write!(f, "bit flip @{offset}+{len}")
            }
            CorruptionStyle::Field { offset, value } => {
                write!(f, "field @{offset} := {value:#x}")
            }
            CorruptionStyle::MisdirectedFrom(a) => write!(f, "misdirected from {a}"),
        }
    }
}

/// Whether a fault is permanent or clears after some number of occurrences
/// (§2.3.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Transience {
    /// The fault persists for every matching request ("sticky").
    Sticky,
    /// The fault fires for the first `n` matching requests, then clears.
    /// `Transient(1)` models the paper's canonical retry-able fault.
    Transient(u32),
}

impl Transience {
    /// True if a fault with this transience should still fire after having
    /// already fired `prior` times.
    pub fn fires(&self, prior: u32) -> bool {
        match self {
            Transience::Sticky => true,
            Transience::Transient(n) => prior < *n,
        }
    }
}

impl fmt::Display for Transience {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transience::Sticky => write!(f, "sticky"),
            Transience::Transient(n) => write!(f, "transient×{n}"),
        }
    }
}

/// Spatial extent of a fault (§2.3.2).
///
/// Media scratches render *contiguous* runs of blocks inaccessible, while a
/// misdirected write corrupts a single block. Fault specifications carry a
/// locality so injected faults can model either.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Locality {
    /// A single block.
    Single,
    /// A contiguous run of `len` blocks starting at the target ("scratch").
    Contiguous {
        /// Number of consecutive blocks covered by the fault.
        len: u64,
    },
}

impl Locality {
    /// Does a fault anchored at `anchor` with this locality cover `addr`?
    pub fn covers(&self, anchor: BlockAddr, addr: BlockAddr) -> bool {
        match self {
            Locality::Single => anchor == addr,
            Locality::Contiguous { len } => addr.0 >= anchor.0 && addr.0 < anchor.0 + len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_kind_applies_to_direction() {
        assert!(FaultKind::ReadError.applies_to(IoKind::Read));
        assert!(!FaultKind::ReadError.applies_to(IoKind::Write));
        assert!(FaultKind::WriteError.applies_to(IoKind::Write));
        assert!(!FaultKind::WriteError.applies_to(IoKind::Read));
        assert!(FaultKind::Corruption(CorruptionStyle::Zeroed).applies_to(IoKind::Read));
        assert!(FaultKind::WholeDisk.applies_to(IoKind::Read));
        assert!(FaultKind::WholeDisk.applies_to(IoKind::Write));
        assert!(FaultKind::Slow { multiplier: 8 }.applies_to(IoKind::Read));
        assert!(FaultKind::Slow { multiplier: 8 }.applies_to(IoKind::Write));
        assert!(FaultKind::Hang.applies_to(IoKind::Read));
        assert!(FaultKind::Hang.applies_to(IoKind::Write));
    }

    #[test]
    fn transience_counts_down() {
        assert!(Transience::Sticky.fires(0));
        assert!(Transience::Sticky.fires(1_000_000));
        let t = Transience::Transient(2);
        assert!(t.fires(0));
        assert!(t.fires(1));
        assert!(!t.fires(2));
    }

    #[test]
    fn locality_coverage() {
        let anchor = BlockAddr(10);
        assert!(Locality::Single.covers(anchor, BlockAddr(10)));
        assert!(!Locality::Single.covers(anchor, BlockAddr(11)));
        let scratch = Locality::Contiguous { len: 4 };
        assert!(scratch.covers(anchor, BlockAddr(10)));
        assert!(scratch.covers(anchor, BlockAddr(13)));
        assert!(!scratch.covers(anchor, BlockAddr(14)));
        assert!(!scratch.covers(anchor, BlockAddr(9)));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FaultKind::ReadError.label(), "read");
        assert_eq!(FaultKind::WriteError.label(), "write");
        assert_eq!(
            FaultKind::Corruption(CorruptionStyle::RandomNoise).label(),
            "corrupt"
        );
        assert_eq!(FaultKind::Slow { multiplier: 4 }.label(), "slow");
        assert_eq!(FaultKind::Hang.label(), "hang");
        assert_eq!(
            format!("{}", FaultKind::Slow { multiplier: 4 }),
            "slow (4× service time)"
        );
        assert_eq!(format!("{}", IoKind::Read), "read");
        assert_eq!(format!("{}", Transience::Transient(1)), "transient×1");
    }
}

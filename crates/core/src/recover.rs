//! The runtime-configurable failure-policy engine (§3, §5).
//!
//! The paper's central argument is that *failure policy should be a
//! first-class, configurable property* of a storage stack, not an accident
//! of scattered `if err` branches. This module is that property made
//! concrete: a [`FailurePolicyTable`] maps `(block type × I/O direction ×
//! error class)` to an ordered [`RecoveryAction`] *escalation chain* —
//! bounded retry with deterministic exponential backoff first, then
//! redundancy or remapping, then graceful read-only degradation, and
//! finally propagation or a stop. Layers that enact the chain (the
//! device-level `RetryLayer`, ext3's metadata/data paths) share a
//! [`PolicyHandle`], so policy can be swapped at runtime and every enacted
//! action is counted in [`PolicyCounters`] and echoed to the kernel log.
//!
//! All timing is in *simulated* nanoseconds against [`SimClock`], so a
//! backoff schedule is exactly reproducible: same table, same fault plan,
//! same schedule — at any thread count.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::block::BlockTag;
use crate::klog::KernelLog;
use crate::model::IoKind;

/// Classification of a failed block I/O, as seen by a policy-enacting
/// layer. Policies discriminate on this axis because the right reaction
/// differs: a timeout on a slow disk wants a retry, a device failure
/// wants immediate degradation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ErrorClass {
    /// An explicit per-request I/O error (the fail-partial model's
    /// "error code" case).
    Io,
    /// The request exceeded its I/O deadline against the sim clock —
    /// the time-domain fault class (slow or hung disk).
    Timeout,
    /// The whole device has failed (fail-stop).
    DeviceFailed,
    /// The request completed but its payload failed a block-content
    /// check (checksum/sanity) — silent corruption made visible.
    Corrupt,
}

impl ErrorClass {
    /// Stable short label, used in klog lines and rendered tables.
    pub fn label(self) -> &'static str {
        match self {
            ErrorClass::Io => "io",
            ErrorClass::Timeout => "timeout",
            ErrorClass::DeviceFailed => "dev-failed",
            ErrorClass::Corrupt => "bad-content",
        }
    }
}

impl fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A deterministic, capped exponential backoff schedule in simulated
/// nanoseconds.
///
/// `delay_ns(k)` is the wait charged before re-issue number `k` (the
/// first re-issue is attempt 1): `min(base · factor^(k-1), cap)`, with
/// saturating arithmetic so huge factors can never wrap. The schedule is
/// a pure function of the struct — deterministic — and non-decreasing in
/// `k` — monotone.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Backoff {
    /// Delay before the first re-issue, in sim ns.
    pub base_ns: u64,
    /// Multiplier applied per further re-issue.
    pub factor: u32,
    /// Upper bound on any single delay, in sim ns.
    pub cap_ns: u64,
}

impl Backoff {
    /// No waiting at all: immediate re-issue (the classic SCSI-layer
    /// tight retry, and stock ext3's inline re-read).
    pub const fn none() -> Self {
        Backoff {
            base_ns: 0,
            factor: 1,
            cap_ns: 0,
        }
    }

    /// Exponential schedule: `base`, `base·factor`, `base·factor²`, …
    /// capped at `cap`.
    pub const fn exponential(base_ns: u64, factor: u32, cap_ns: u64) -> Self {
        Backoff {
            base_ns,
            factor,
            cap_ns,
        }
    }

    /// Delay in sim ns charged before re-issue `attempt` (1-based).
    /// `attempt == 0` (the initial issue) is never delayed.
    pub fn delay_ns(&self, attempt: u32) -> u64 {
        if attempt == 0 || self.base_ns == 0 {
            return 0;
        }
        let mut d = self.base_ns;
        for _ in 1..attempt {
            d = d.saturating_mul(u64::from(self.factor));
            if d >= self.cap_ns {
                return self.cap_ns;
            }
        }
        d.min(self.cap_ns)
    }
}

/// One rung of an escalation chain.
///
/// A chain is walked in order: each action either *handles* the fault
/// (operation succeeds, walk stops), *fails over* (walk continues to the
/// next rung), or *terminates* (`DegradeReadOnly`, `Propagate`, `Stop`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecoveryAction {
    /// Re-issue the request up to `budget` more times, waiting
    /// `backoff.delay_ns(k)` sim ns before re-issue `k`. The *total*
    /// number of device attempts is therefore bounded by `1 + budget`.
    Retry {
        /// Maximum re-issues after the initial attempt.
        budget: u32,
        /// Wait schedule between re-issues.
        backoff: Backoff,
    },
    /// Satisfy the request from a redundant copy (replica, parity,
    /// alternate superblock). Only meaningful to layers that have
    /// redundancy; others skip this rung.
    Redundancy,
    /// Write the payload somewhere else and remember the new home.
    /// Only meaningful to write paths with a remap table.
    Remap,
    /// Give up on writes but keep serving reads: abort the journal and
    /// remount the file system read-only. Bounds the damage from a
    /// sticky fault instead of propagating garbage.
    DegradeReadOnly,
    /// Return the error to the caller (the paper's `RPropagate`).
    Propagate,
    /// Halt the file system outright (the paper's `RStop`).
    Stop,
}

impl RecoveryAction {
    /// Stable short label, used in klog lines and counters.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryAction::Retry { .. } => "retry",
            RecoveryAction::Redundancy => "redundancy",
            RecoveryAction::Remap => "remap",
            RecoveryAction::DegradeReadOnly => "degrade-ro",
            RecoveryAction::Propagate => "propagate",
            RecoveryAction::Stop => "stop",
        }
    }
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryAction::Retry { budget, backoff } => {
                write!(f, "retry(budget={budget}, base={}ns)", backoff.base_ns)
            }
            other => f.write_str(other.label()),
        }
    }
}

/// One policy rule: a (possibly wildcarded) match on block type, I/O
/// direction, and error class, plus the chain to enact on a hit.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PolicyRule {
    /// Block type to match; `None` matches any tag.
    pub tag: Option<BlockTag>,
    /// I/O direction to match; `None` matches both.
    pub io: Option<IoKind>,
    /// Error class to match; `None` matches any class.
    pub class: Option<ErrorClass>,
    /// Escalation chain enacted on a match.
    pub chain: Vec<RecoveryAction>,
}

impl PolicyRule {
    fn matches(&self, tag: BlockTag, io: IoKind, class: ErrorClass) -> bool {
        self.tag.is_none_or(|t| t == tag)
            && self.io.is_none_or(|i| i == io)
            && self.class.is_none_or(|c| c == class)
    }
}

/// An ordered failure-policy table: first matching rule wins; misses fall
/// through to the default chain.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FailurePolicyTable {
    rules: Vec<PolicyRule>,
    default_chain: Vec<RecoveryAction>,
}

impl FailurePolicyTable {
    /// An empty table whose default chain simply propagates errors.
    pub fn propagate_all() -> Self {
        FailurePolicyTable {
            rules: Vec::new(),
            default_chain: vec![RecoveryAction::Propagate],
        }
    }

    /// A table with the given default chain and no rules yet.
    pub fn with_default(default_chain: Vec<RecoveryAction>) -> Self {
        FailurePolicyTable {
            rules: Vec::new(),
            default_chain,
        }
    }

    /// Append a rule; earlier rules take precedence.
    pub fn rule(
        mut self,
        tag: Option<BlockTag>,
        io: Option<IoKind>,
        class: Option<ErrorClass>,
        chain: Vec<RecoveryAction>,
    ) -> Self {
        self.rules.push(PolicyRule {
            tag,
            io,
            class,
            chain,
        });
        self
    }

    /// The chain for a concrete `(tag, io, class)` triple.
    pub fn chain_for(&self, tag: BlockTag, io: IoKind, class: ErrorClass) -> Vec<RecoveryAction> {
        self.rules
            .iter()
            .find(|r| r.matches(tag, io, class))
            .map(|r| r.chain.clone())
            .unwrap_or_else(|| self.default_chain.clone())
    }

    /// Number of explicit rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no explicit rule is installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// Per-action counters, shared by every layer that enacts the same
/// policy. All atomic, so counting is free of locks on the I/O path.
#[derive(Debug, Default)]
struct CounterCells {
    retries: AtomicU64,
    masked: AtomicU64,
    exhausted: AtomicU64,
    redundancy: AtomicU64,
    remaps: AtomicU64,
    degrades: AtomicU64,
    propagates: AtomicU64,
    stops: AtomicU64,
    timeouts: AtomicU64,
    backoff_ns: AtomicU64,
}

/// A point-in-time copy of [`PolicyCounters`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PolicyCounterSnapshot {
    /// Re-issues performed by `Retry` rungs.
    pub retries: u64,
    /// Faults fully masked (operation succeeded after ≥1 re-issue).
    pub masked: u64,
    /// Retry budgets exhausted without success.
    pub exhausted: u64,
    /// Requests satisfied by a `Redundancy` rung.
    pub redundancy: u64,
    /// Writes redirected by a `Remap` rung.
    pub remaps: u64,
    /// `DegradeReadOnly` transitions enacted.
    pub degrades: u64,
    /// Errors returned to the caller by a `Propagate` rung.
    pub propagates: u64,
    /// `Stop` rungs enacted.
    pub stops: u64,
    /// Requests classified as [`ErrorClass::Timeout`].
    pub timeouts: u64,
    /// Total sim ns charged as backoff delay.
    pub backoff_ns: u64,
}

/// Shared per-action counters with a kernel-log echo.
///
/// Cloning yields a handle onto the same cells.
#[derive(Clone, Debug, Default)]
pub struct PolicyCounters {
    cells: Arc<CounterCells>,
}

impl PolicyCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one re-issue.
    pub fn count_retry(&self) {
        self.cells.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a fault fully masked by retries.
    pub fn count_masked(&self) {
        self.cells.masked.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a retry budget exhausted.
    pub fn count_exhausted(&self) {
        self.cells.exhausted.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a request satisfied from redundancy.
    pub fn count_redundancy(&self) {
        self.cells.redundancy.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a remapped write.
    pub fn count_remap(&self) {
        self.cells.remaps.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a read-only degradation.
    pub fn count_degrade(&self) {
        self.cells.degrades.fetch_add(1, Ordering::Relaxed);
    }

    /// Count an error propagated to the caller.
    pub fn count_propagate(&self) {
        self.cells.propagates.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a stop.
    pub fn count_stop(&self) {
        self.cells.stops.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a deadline exceeded.
    pub fn count_timeout(&self) {
        self.cells.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Account `ns` of sim time charged as backoff.
    pub fn add_backoff_ns(&self, ns: u64) {
        self.cells.backoff_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Copy out all counters.
    pub fn snapshot(&self) -> PolicyCounterSnapshot {
        let c = &self.cells;
        PolicyCounterSnapshot {
            retries: c.retries.load(Ordering::Relaxed),
            masked: c.masked.load(Ordering::Relaxed),
            exhausted: c.exhausted.load(Ordering::Relaxed),
            redundancy: c.redundancy.load(Ordering::Relaxed),
            remaps: c.remaps.load(Ordering::Relaxed),
            degrades: c.degrades.load(Ordering::Relaxed),
            propagates: c.propagates.load(Ordering::Relaxed),
            stops: c.stops.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            backoff_ns: c.backoff_ns.load(Ordering::Relaxed),
        }
    }
}

/// A cloneable, runtime-swappable handle onto a [`FailurePolicyTable`]
/// plus its shared [`PolicyCounters`].
///
/// Every layer holding a clone sees a [`Self::set`] immediately — this is
/// the "runtime-configurable" half of the engine.
#[derive(Clone, Debug)]
pub struct PolicyHandle {
    table: Arc<Mutex<FailurePolicyTable>>,
    counters: PolicyCounters,
}

impl PolicyHandle {
    /// Wrap a table in a fresh handle.
    pub fn new(table: FailurePolicyTable) -> Self {
        PolicyHandle {
            table: Arc::new(Mutex::new(table)),
            counters: PolicyCounters::new(),
        }
    }

    /// Replace the table; all clones observe the new policy at once.
    pub fn set(&self, table: FailurePolicyTable) {
        *self.table.lock().unwrap() = table;
    }

    /// The chain for a concrete `(tag, io, class)` triple.
    pub fn chain_for(&self, tag: BlockTag, io: IoKind, class: ErrorClass) -> Vec<RecoveryAction> {
        self.table.lock().unwrap().chain_for(tag, io, class)
    }

    /// The shared counters.
    pub fn counters(&self) -> &PolicyCounters {
        &self.counters
    }

    /// Count an enacted action and echo it to `klog` under `subsystem`.
    ///
    /// `detail` names the request (e.g. `"data read #12"`). Wording is
    /// deliberately neutral: it must not collide with the fingerprint
    /// framework's detection-marker substrings.
    pub fn record(
        &self,
        klog: &KernelLog,
        subsystem: &'static str,
        action: RecoveryAction,
        detail: &str,
    ) {
        match action {
            RecoveryAction::Retry { .. } => self.counters.count_retry(),
            RecoveryAction::Redundancy => self.counters.count_redundancy(),
            RecoveryAction::Remap => self.counters.count_remap(),
            RecoveryAction::DegradeReadOnly => self.counters.count_degrade(),
            RecoveryAction::Propagate => self.counters.count_propagate(),
            RecoveryAction::Stop => self.counters.count_stop(),
        }
        klog.info(
            subsystem,
            format!("policy action {}: {detail}", action.label()),
        );
    }
}

impl Default for PolicyHandle {
    fn default() -> Self {
        PolicyHandle::new(FailurePolicyTable::propagate_all())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_none_is_zero_everywhere() {
        let b = Backoff::none();
        for k in 0..10 {
            assert_eq!(b.delay_ns(k), 0);
        }
    }

    #[test]
    fn backoff_is_deterministic_and_monotone() {
        let b = Backoff::exponential(1_000, 2, 1_000_000);
        let first: Vec<u64> = (0..40).map(|k| b.delay_ns(k)).collect();
        let second: Vec<u64> = (0..40).map(|k| b.delay_ns(k)).collect();
        assert_eq!(first, second, "schedule is a pure function");
        for w in first.windows(2) {
            assert!(w[0] <= w[1], "schedule is monotone: {} > {}", w[0], w[1]);
        }
        assert_eq!(b.delay_ns(1), 1_000);
        assert_eq!(b.delay_ns(2), 2_000);
        assert_eq!(b.delay_ns(3), 4_000);
        assert_eq!(b.delay_ns(39), 1_000_000, "capped");
    }

    #[test]
    fn backoff_never_overflows() {
        let b = Backoff::exponential(u64::MAX / 2, u32::MAX, u64::MAX);
        assert_eq!(b.delay_ns(u32::MAX), u64::MAX);
    }

    #[test]
    fn first_matching_rule_wins() {
        let retry = RecoveryAction::Retry {
            budget: 3,
            backoff: Backoff::none(),
        };
        let table = FailurePolicyTable::propagate_all()
            .rule(
                Some(BlockTag("inode")),
                None,
                None,
                vec![RecoveryAction::Stop],
            )
            .rule(None, Some(IoKind::Read), None, vec![retry]);
        // Specific tag rule shadows the broader read rule.
        assert_eq!(
            table.chain_for(BlockTag("inode"), IoKind::Read, ErrorClass::Io),
            vec![RecoveryAction::Stop]
        );
        // Other tags fall through to the read rule.
        assert_eq!(
            table.chain_for(BlockTag("data"), IoKind::Read, ErrorClass::Timeout),
            vec![retry]
        );
        // Writes miss every rule and use the default chain.
        assert_eq!(
            table.chain_for(BlockTag("data"), IoKind::Write, ErrorClass::Io),
            vec![RecoveryAction::Propagate]
        );
    }

    #[test]
    fn handle_swap_is_visible_to_clones() {
        let h = PolicyHandle::new(FailurePolicyTable::propagate_all());
        let clone = h.clone();
        h.set(FailurePolicyTable::with_default(vec![
            RecoveryAction::DegradeReadOnly,
        ]));
        assert_eq!(
            clone.chain_for(BlockTag("data"), IoKind::Write, ErrorClass::Io),
            vec![RecoveryAction::DegradeReadOnly]
        );
    }

    #[test]
    fn counters_count_and_log() {
        let h = PolicyHandle::default();
        let klog = KernelLog::new();
        h.record(
            &klog,
            "policy",
            RecoveryAction::Retry {
                budget: 1,
                backoff: Backoff::none(),
            },
            "data read #4",
        );
        h.record(
            &klog,
            "policy",
            RecoveryAction::DegradeReadOnly,
            "meta write #2",
        );
        let snap = h.counters().snapshot();
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.degrades, 1);
        assert!(klog.contains("policy action retry: data read #4"));
        assert!(klog.contains("policy action degrade-ro: meta write #2"));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ErrorClass::Timeout.label(), "timeout");
        assert_eq!(ErrorClass::Corrupt.label(), "bad-content");
        assert_eq!(
            RecoveryAction::Retry {
                budget: 0,
                backoff: Backoff::none()
            }
            .label(),
            "retry"
        );
        assert_eq!(RecoveryAction::DegradeReadOnly.label(), "degrade-ro");
        assert_eq!(
            format!(
                "{}",
                RecoveryAction::Retry {
                    budget: 2,
                    backoff: Backoff::exponential(5, 2, 100)
                }
            ),
            "retry(budget=2, base=5ns)"
        );
    }
}

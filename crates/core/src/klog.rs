//! The simulated kernel log.
//!
//! The paper's inference step compares "the contents of the system log"
//! across fault-free and faulty runs (§4.3). Our file-system models emit
//! their detection/recovery messages here — e.g. ReiserFS's
//! `REISERFS: panic` or ext3's `ext3_abort` — and the fingerprinting
//! framework reads them back.

use std::fmt;
use std::sync::{Arc, Mutex};

/// Severity of a log line.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum LogLevel {
    /// Informational chatter.
    Info,
    /// A warning (fault noticed, non-fatal handling).
    Warn,
    /// An error (fault noticed, operation failed).
    Error,
    /// A simulated kernel panic.
    Panic,
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LogLevel::Info => "INFO",
            LogLevel::Warn => "WARN",
            LogLevel::Error => "ERROR",
            LogLevel::Panic => "PANIC",
        })
    }
}

/// One kernel-log line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LogEntry {
    /// Severity.
    pub level: LogLevel,
    /// Emitting subsystem (e.g. `"ext3"`, `"jfs"`, `"generic"`).
    pub subsystem: &'static str,
    /// The message text.
    pub message: String,
}

impl fmt::Display for LogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.level, self.subsystem, self.message)
    }
}

/// A shareable, append-only in-memory kernel log.
///
/// Cloning yields a handle to the same log.
#[derive(Clone, Debug, Default)]
pub struct KernelLog {
    entries: Arc<Mutex<Vec<LogEntry>>>,
}

impl KernelLog {
    /// A new, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a line.
    pub fn log(&self, level: LogLevel, subsystem: &'static str, message: impl Into<String>) {
        self.entries.lock().unwrap().push(LogEntry {
            level,
            subsystem,
            message: message.into(),
        });
    }

    /// Append an [`LogLevel::Info`] line.
    pub fn info(&self, subsystem: &'static str, message: impl Into<String>) {
        self.log(LogLevel::Info, subsystem, message);
    }

    /// Append a [`LogLevel::Warn`] line.
    pub fn warn(&self, subsystem: &'static str, message: impl Into<String>) {
        self.log(LogLevel::Warn, subsystem, message);
    }

    /// Append an [`LogLevel::Error`] line.
    pub fn error(&self, subsystem: &'static str, message: impl Into<String>) {
        self.log(LogLevel::Error, subsystem, message);
    }

    /// Append a [`LogLevel::Panic`] line.
    pub fn panic(&self, subsystem: &'static str, message: impl Into<String>) {
        self.log(LogLevel::Panic, subsystem, message);
    }

    /// Number of lines logged so far. Use as a mark for [`Self::since`].
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// True if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every line.
    pub fn entries(&self) -> Vec<LogEntry> {
        self.entries.lock().unwrap().clone()
    }

    /// Snapshot of lines appended after the given mark (a previous `len()`).
    pub fn since(&self, mark: usize) -> Vec<LogEntry> {
        let guard = self.entries.lock().unwrap();
        guard
            .get(mark..)
            .map(<[LogEntry]>::to_vec)
            .unwrap_or_default()
    }

    /// True if any line's message contains `needle`.
    pub fn contains(&self, needle: &str) -> bool {
        self.entries
            .lock()
            .unwrap()
            .iter()
            .any(|e| e.message.contains(needle))
    }

    /// Highest severity logged so far, if any.
    pub fn max_level(&self) -> Option<LogLevel> {
        self.entries.lock().unwrap().iter().map(|e| e.level).max()
    }

    /// Discard all lines.
    pub fn clear(&self) {
        self.entries.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_and_query() {
        let log = KernelLog::new();
        assert!(log.is_empty());
        log.info("ext3", "mounted filesystem");
        log.error("ext3", "ext3_abort: journal has aborted");
        assert_eq!(log.len(), 2);
        assert!(log.contains("journal has aborted"));
        assert!(!log.contains("panic"));
        assert_eq!(log.max_level(), Some(LogLevel::Error));
    }

    #[test]
    fn since_returns_suffix() {
        let log = KernelLog::new();
        log.info("a", "one");
        let mark = log.len();
        log.warn("b", "two");
        log.panic("c", "three");
        let tail = log.since(mark);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].message, "two");
        assert_eq!(tail[1].level, LogLevel::Panic);
        assert!(log.since(99).is_empty());
    }

    #[test]
    fn clones_share_entries() {
        let a = KernelLog::new();
        let b = a.clone();
        a.error("x", "boom");
        assert!(b.contains("boom"));
        b.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn display_format() {
        let e = LogEntry {
            level: LogLevel::Panic,
            subsystem: "reiserfs",
            message: "journal-601: buffer write failed".into(),
        };
        assert_eq!(
            e.to_string(),
            "[PANIC] reiserfs: journal-601: buffer write failed"
        );
    }

    #[test]
    fn levels_order_by_severity() {
        assert!(LogLevel::Info < LogLevel::Warn);
        assert!(LogLevel::Warn < LogLevel::Error);
        assert!(LogLevel::Error < LogLevel::Panic);
    }
}

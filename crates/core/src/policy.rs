//! Failure-policy observations: sets of IRON levels.
//!
//! A *failure policy* (§3) is, per scenario, the set of detection techniques
//! and the set of recovery techniques a file system applied. One cell of
//! Figure 2/3 is a [`PolicyCell`]; this module provides compact bitset-backed
//! sets over [`DetectionLevel`] and [`RecoveryLevel`] plus the glyph
//! superimposition the paper's figures use ("if multiple mechanisms are
//! observed, the symbols are superimposed").

use std::fmt;

use crate::taxonomy::{DetectionLevel, RecoveryLevel};

/// A set of detection levels, stored as a bitmask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct DetectionSet(u8);

impl DetectionSet {
    /// The empty set (≡ `DZero` only, once normalized).
    pub const EMPTY: DetectionSet = DetectionSet(0);

    /// Singleton set.
    pub fn just(level: DetectionLevel) -> Self {
        let mut s = Self::EMPTY;
        s.insert(level);
        s
    }

    /// Insert a level.
    pub fn insert(&mut self, level: DetectionLevel) {
        self.0 |= 1 << level as u8;
    }

    /// Membership test.
    pub fn contains(&self, level: DetectionLevel) -> bool {
        self.0 & (1 << level as u8) != 0
    }

    /// Union with another set.
    pub fn union(self, other: DetectionSet) -> DetectionSet {
        DetectionSet(self.0 | other.0)
    }

    /// True if no level was recorded (interpreted as `DZero`).
    pub fn is_empty(&self) -> bool {
        self.0 == 0 || *self == DetectionSet::just(DetectionLevel::DZero)
    }

    /// Iterate members in taxonomy order.
    pub fn iter(&self) -> impl Iterator<Item = DetectionLevel> + '_ {
        DetectionLevel::ALL
            .into_iter()
            .filter(|l| self.contains(*l))
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }
}

impl FromIterator<DetectionLevel> for DetectionSet {
    fn from_iter<T: IntoIterator<Item = DetectionLevel>>(iter: T) -> Self {
        let mut s = Self::EMPTY;
        for l in iter {
            s.insert(l);
        }
        s
    }
}

impl fmt::Display for DetectionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("DZero");
        }
        let names: Vec<String> = self
            .iter()
            .filter(|l| *l != DetectionLevel::DZero)
            .map(|l| l.to_string())
            .collect();
        f.write_str(&names.join("+"))
    }
}

/// A set of recovery levels, stored as a bitmask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct RecoverySet(u8);

impl RecoverySet {
    /// The empty set (≡ `RZero` only, once normalized).
    pub const EMPTY: RecoverySet = RecoverySet(0);

    /// Singleton set.
    pub fn just(level: RecoveryLevel) -> Self {
        let mut s = Self::EMPTY;
        s.insert(level);
        s
    }

    /// Insert a level.
    pub fn insert(&mut self, level: RecoveryLevel) {
        self.0 |= 1 << level as u8;
    }

    /// Membership test.
    pub fn contains(&self, level: RecoveryLevel) -> bool {
        self.0 & (1 << level as u8) != 0
    }

    /// Union with another set.
    pub fn union(self, other: RecoverySet) -> RecoverySet {
        RecoverySet(self.0 | other.0)
    }

    /// True if no level was recorded (interpreted as `RZero`).
    pub fn is_empty(&self) -> bool {
        self.0 == 0 || *self == RecoverySet::just(RecoveryLevel::RZero)
    }

    /// Iterate members in taxonomy order.
    pub fn iter(&self) -> impl Iterator<Item = RecoveryLevel> + '_ {
        RecoveryLevel::ALL.into_iter().filter(|l| self.contains(*l))
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }
}

impl FromIterator<RecoveryLevel> for RecoverySet {
    fn from_iter<T: IntoIterator<Item = RecoveryLevel>>(iter: T) -> Self {
        let mut s = Self::EMPTY;
        for l in iter {
            s.insert(l);
        }
        s
    }
}

impl fmt::Display for RecoverySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("RZero");
        }
        let names: Vec<String> = self
            .iter()
            .filter(|l| *l != RecoveryLevel::RZero)
            .map(|l| l.to_string())
            .collect();
        f.write_str(&names.join("+"))
    }
}

/// One cell of a Figure 2/3-style failure-policy matrix: the detection and
/// recovery levels observed for one (workload × block type × fault type)
/// scenario.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PolicyCell {
    /// Detection techniques observed.
    pub detection: DetectionSet,
    /// Recovery techniques observed.
    pub recovery: RecoverySet,
}

impl PolicyCell {
    /// Superimpose the detection glyphs of this cell into a short string, as
    /// the paper's figures superimpose symbols. `DZero` renders as `.`.
    pub fn detection_glyphs(&self) -> String {
        if self.detection.is_empty() {
            return ".".into();
        }
        self.detection
            .iter()
            .filter(|l| *l != DetectionLevel::DZero)
            .map(|l| l.glyph())
            .collect()
    }

    /// Superimpose the recovery glyphs of this cell. `RZero` renders as `.`.
    pub fn recovery_glyphs(&self) -> String {
        if self.recovery.is_empty() {
            return ".".into();
        }
        self.recovery
            .iter()
            .filter(|l| *l != RecoveryLevel::RZero)
            .map(|l| l.glyph())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_set_operations() {
        let mut s = DetectionSet::EMPTY;
        assert!(s.is_empty());
        s.insert(DetectionLevel::DErrorCode);
        s.insert(DetectionLevel::DSanity);
        assert!(s.contains(DetectionLevel::DErrorCode));
        assert!(!s.contains(DetectionLevel::DRedundancy));
        assert_eq!(s.len(), 2);
        assert_eq!(s.to_string(), "DErrorCode+DSanity");
    }

    #[test]
    fn recovery_set_union_and_iter_order() {
        let a = RecoverySet::just(RecoveryLevel::RStop);
        let b = RecoverySet::just(RecoveryLevel::RPropagate);
        let u = a.union(b);
        let levels: Vec<_> = u.iter().collect();
        assert_eq!(
            levels,
            vec![RecoveryLevel::RPropagate, RecoveryLevel::RStop]
        );
    }

    #[test]
    fn zero_sets_display_as_zero() {
        assert_eq!(DetectionSet::EMPTY.to_string(), "DZero");
        assert_eq!(RecoverySet::EMPTY.to_string(), "RZero");
        assert_eq!(
            DetectionSet::just(DetectionLevel::DZero).to_string(),
            "DZero"
        );
    }

    #[test]
    fn cell_glyph_superimposition() {
        let cell = PolicyCell {
            detection: DetectionSet::just(DetectionLevel::DErrorCode),
            recovery: [RecoveryLevel::RPropagate, RecoveryLevel::RStop]
                .into_iter()
                .collect(),
        };
        assert_eq!(cell.detection_glyphs(), "-");
        assert_eq!(cell.recovery_glyphs(), "-|");
        assert_eq!(PolicyCell::default().detection_glyphs(), ".");
        assert_eq!(PolicyCell::default().recovery_glyphs(), ".");
    }

    #[test]
    fn from_iterator_collects() {
        let s: DetectionSet = [DetectionLevel::DSanity, DetectionLevel::DSanity]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 1);
    }
}

//! # iron-core
//!
//! Shared foundation for the IRON file systems reproduction
//! (Prabhakaran et al., *IRON File Systems*, SOSP 2005).
//!
//! This crate defines the vocabulary every other crate in the workspace
//! speaks:
//!
//! * the **fail-partial failure model** for disks (§2 of the paper):
//!   whole-disk failures, block failures (latent sector errors), and block
//!   corruption, with sticky/transient behavior and spatial locality
//!   ([`model`]);
//! * the **IRON taxonomy** of detection and recovery levels (§3, Tables 1
//!   and 2) ([`taxonomy`]);
//! * block-level primitives: the 4 KiB [`block::Block`] buffer, typed block
//!   tags used for type-aware fault injection, and little-endian codecs;
//! * checksums used by ixt3 and by journal self-checks: SHA-1 and CRC32,
//!   implemented here to keep the workspace dependency-free ([`checksum`]);
//! * the simulated clock ([`clock::SimClock`]) that the disk timing model
//!   advances and the benchmarks read;
//! * the simulated kernel log ([`klog::KernelLog`]) that file systems write
//!   detection/recovery messages to and the fingerprinting framework reads;
//! * the **runtime-configurable failure-policy engine** ([`recover`]): a
//!   [`recover::FailurePolicyTable`] mapping (block type × I/O direction ×
//!   error class) to an ordered escalation chain of
//!   [`recover::RecoveryAction`]s — bounded retry with deterministic
//!   sim-clock backoff, redundancy, remapping, graceful read-only
//!   degradation, propagation, or stop — shared across layers through a
//!   swappable [`recover::PolicyHandle`];
//! * the shared parallel executor ([`exec::WorkerPool`]): the scoped
//!   `std::thread` sharded scheduler behind both the pFSCK-style check
//!   engine (`iron-fsck`) and the fingerprinting campaign
//!   (`iron-fingerprint`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod checksum;
pub mod clock;
pub mod errno;
pub mod exec;
pub mod klog;
pub mod model;
pub mod policy;
pub mod recover;
pub mod taxonomy;

pub use block::{Block, BlockAddr, BlockTag, BLOCK_SIZE};
pub use clock::SimClock;
pub use errno::Errno;
pub use exec::WorkerPool;
pub use klog::KernelLog;
pub use model::{FaultKind, IoKind, Transience};
pub use recover::{
    Backoff, ErrorClass, FailurePolicyTable, PolicyCounterSnapshot, PolicyCounters, PolicyHandle,
    RecoveryAction,
};
pub use taxonomy::{DetectionLevel, RecoveryLevel};

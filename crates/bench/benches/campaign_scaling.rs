//! Campaign thread-scaling: the full ext3 fingerprinting campaign (every
//! Figure 2 mode × block type × workload cell) sharded over the shared
//! executor at 1/2/4/8 worker threads. The `threads = 1` row is the
//! honest sequential baseline (no pool, no atomics); every row must
//! produce a matrix *bit-identical* to that baseline — cells merge by
//! `(mode, row, col)` key, so parallelism is purely a wall-clock knob,
//! and this bench asserts the equality on every sample before reporting
//! a single timing.

use iron_testkit::{black_box, BenchGroup};

use iron_fingerprint::campaign::{fingerprint_fs, CampaignOptions};
use iron_fingerprint::Ext3Adapter;

fn main() {
    let mut g = BenchGroup::from_env("campaign");
    let adapter = Ext3Adapter::stock();

    let baseline = fingerprint_fs(&adapter, &CampaignOptions::default().with_threads(1));
    assert!(
        baseline.relevant > 100,
        "the full ext3 campaign must fire its ~400 relevant cells"
    );

    for threads in [1usize, 2, 4, 8] {
        let opts = CampaignOptions::default().with_threads(threads);
        let (adapter, baseline) = (&adapter, &baseline);
        g.bench(&format!("ext3_full_t{threads}"), move || {
            let m = fingerprint_fs(adapter, &opts);
            assert_eq!(
                m.cells, baseline.cells,
                "t={threads} matrix must be bit-identical to sequential"
            );
            assert_eq!(m.relevant, baseline.relevant);
            black_box(m.relevant)
        });
    }

    g.finish();
}

//! Crash-enumeration throughput: full `(file system, workload)` campaigns
//! — record, enumerate, recover and oracle-check every bounded crash
//! image — timed end to end. Run with `--smoke` for CI. Emits
//! `BENCH_crash.json`.
//!
//! Two kernels:
//!
//! * `ext3_create_sync` / `ixt3_reuse_dir` — single campaigns on the
//!   cheapest and the heaviest workload, reported with the images-checked
//!   count asserted so a silently-shrinking image set cannot masquerade
//!   as a speedup. The count rides into the JSON as `units_per_iter`,
//!   making `units_per_s` the crash-states-checked-per-second figure.
//! * `matrix_t{1,8}` — the stock-ext3 workload suite sequentially vs. on
//!   8 worker threads; every sample asserts the reports are bit-identical
//!   to the sequential baseline, so the parallel speedup is honest.
//! * `gen_workloads` — pure ACE-style generation of the full seq-3
//!   family; `units_per_s` is generated-workloads/sec.
//! * `gen_seq2_states` — a deterministic slice of the generated seq-2
//!   family campaigned on stock ext3; `units_per_s` is the
//!   crash-states/sec figure for generated (owned-path) workloads.

use iron_testkit::{black_box, BenchGroup};

use iron_crash::{
    generate_workloads, run_crash_campaign, run_generated_campaign, standard_workloads,
    CrashCampaignOptions, CrashReport, CrashWorkload, GenOptions,
};
use iron_fingerprint::{Ext3Adapter, FsUnderTest};

fn suite(fs: &dyn FsUnderTest, workloads: &[CrashWorkload], threads: usize) -> Vec<CrashReport> {
    let opts = CrashCampaignOptions {
        threads,
        ..Default::default()
    };
    workloads
        .iter()
        .map(|w| run_crash_campaign(fs, w, &opts))
        .collect()
}

fn main() {
    let mut g = BenchGroup::from_env("crash");

    let ext3 = Ext3Adapter::stock();
    let ixt3 = Ext3Adapter::ixt3();
    let opts = CrashCampaignOptions::default();

    // Pre-run each kernel once: the enumeration is deterministic, so the
    // images-checked count is *the* count — recorded as units_per_iter so
    // the JSON carries crash-states/sec.
    let workloads = standard_workloads();
    let ext3_images = run_crash_campaign(&ext3, &workloads[0], &opts).images_checked;
    g.throughput_units(Some(ext3_images as u64));
    g.bench("ext3_create_sync", || {
        let r = run_crash_campaign(&ext3, &workloads[0], &opts);
        assert!(
            r.images_checked >= 20,
            "image set shrank: {}",
            r.images_checked
        );
        black_box(r.images_checked)
    });

    let ixt3_images = run_crash_campaign(&ixt3, &workloads[2], &opts).images_checked;
    g.throughput_units(Some(ixt3_images as u64));
    g.bench("ixt3_reuse_dir", || {
        let r = run_crash_campaign(&ixt3, &workloads[2], &opts);
        assert!(r.is_clean(), "ixt3 regressed under the enumerator");
        black_box(r.images_checked)
    });

    let baseline = suite(&ext3, &workloads, 1);
    let total: usize = baseline.iter().map(|r| r.images_checked).sum();
    assert!(
        total >= 80,
        "the workload suite must enumerate a real image set"
    );

    g.throughput_units(Some(total as u64));
    for threads in [1usize, 8] {
        let (ext3, baseline, workloads) = (&ext3, &baseline, &workloads);
        g.bench(&format!("matrix_t{threads}"), move || {
            let rs = suite(ext3, workloads, threads);
            assert_eq!(
                &rs, baseline,
                "t={threads} reports must be bit-identical to sequential"
            );
            black_box(rs.len())
        });
    }

    // Pure generation throughput: the full seq-2+3 family, counted as
    // generated-workloads/sec. The size is asserted so a silently
    // shrinking family cannot masquerade as a speedup.
    let family = generate_workloads(&GenOptions::seq3());
    g.throughput_units(Some(family.len() as u64));
    g.bench("gen_workloads", || {
        let wl = generate_workloads(&GenOptions::seq3());
        assert_eq!(wl.len(), family.len(), "generated family changed size");
        black_box(wl.len())
    });

    // Generated-campaign throughput: every 4th seq-2 workload on stock
    // ext3 — crash-states/sec through the owned-path pipeline.
    let seq2 = generate_workloads(&GenOptions::seq2());
    let slice: Vec<_> = seq2.iter().step_by(4).cloned().collect();
    let gen_images = run_generated_campaign(&ext3, &slice, &opts).images_checked;
    g.throughput_units(Some(gen_images as u64));
    g.bench("gen_seq2_states", || {
        let r = run_generated_campaign(&ext3, &slice, &opts);
        assert_eq!(
            r.images_checked, gen_images,
            "generated image set changed size"
        );
        black_box(r.images_checked)
    });

    g.finish();
}

//! The buffer cache earning its keep: re-read-heavy workloads against a
//! mechanically-timed disk, with and without the write-back cache. Run
//! with `--smoke` for CI. Emits `BENCH_cache.json`.
//!
//! Three kernels:
//!
//! * `reread_uncached` / `reread_cached` — 8 passes over 512 scattered
//!   blocks at raw-device level; the cached stack pays the mechanical
//!   cost once and serves the re-reads from memory.
//! * `scattered_writes_*` — scattered dirty blocks destaged through the
//!   elevator in ascending sweeps vs. written in arrival order.
//! * `ext3_reread_*` — the same contrast at file-system level, with
//!   ext3's internal cache shrunk so the device-level cache is what
//!   matters.
//!
//! The cached/uncached ratio on the re-read kernel is asserted ≥2× —
//! this is the tentpole claim of the cache layer, checked on every run
//! (including `--smoke`; simulated time is deterministic).

use iron_testkit::{black_box, BenchGroup};

use iron_blockdev::{BlockDevice, CachePolicy, DiskGeometry, MemDisk, StackBuilder};
use iron_core::{Block, BlockAddr, SimClock};
use iron_ext3::{Ext3Fs, Ext3Options, Ext3Params};
use iron_vfs::{FsEnv, Vfs};

const DISK_BLOCKS: u64 = 8192;
const SPREAD: u64 = 16; // stride between touched blocks — defeats streaming
const TOUCHED: u64 = 512;
const PASSES: usize = 8;

fn timed_disk() -> MemDisk {
    MemDisk::new(DISK_BLOCKS, DiskGeometry::ata_7200rpm(), SimClock::new())
}

/// 8 passes over 512 scattered blocks; returns simulated ns.
fn reread<D: BlockDevice>(dev: &mut D, clock: &SimClock) -> u64 {
    let start = clock.now_ns();
    for _ in 0..PASSES {
        for i in 0..TOUCHED {
            black_box(dev.read(BlockAddr((i * SPREAD) % DISK_BLOCKS)).unwrap());
        }
    }
    clock.elapsed_since(start)
}

/// 512 scattered writes, then a flush; returns simulated ns.
fn scattered_writes<D: BlockDevice>(dev: &mut D, clock: &SimClock) -> u64 {
    let start = clock.now_ns();
    // Descending, strided arrival order: adversarial for a naive disk,
    // easy prey for the elevator.
    for i in (0..TOUCHED).rev() {
        dev.write(
            BlockAddr((i * SPREAD) % DISK_BLOCKS),
            &Block::filled(i as u8),
        )
        .unwrap();
    }
    dev.flush().unwrap();
    clock.elapsed_since(start)
}

fn ext3_reread<D: BlockDevice + iron_blockdev::RawAccess>(dev: D, clock: &SimClock) -> u64 {
    // Shrink ext3's internal block cache so device-level behavior shows.
    let opts = Ext3Options {
        cache_blocks: 8,
        ..Ext3Options::default()
    };
    let fs = Ext3Fs::format_and_mount(dev, FsEnv::new(), Ext3Params::small(), opts).unwrap();
    let mut v = Vfs::new(fs);
    for i in 0..24 {
        v.write_file(&format!("/f{i}"), &vec![i as u8; 40_000])
            .unwrap();
    }
    v.sync().unwrap();
    let start = clock.now_ns();
    for _ in 0..4 {
        for i in 0..24 {
            black_box(v.read_file(&format!("/f{i}")).unwrap());
        }
    }
    clock.elapsed_since(start)
}

fn main() {
    let mut g = BenchGroup::from_env("cache");

    let mut uncached_ns = 0u64;
    let mut cached_ns = 0u64;

    g.bench_with_sim("reread_uncached", || {
        let mut dev = timed_disk();
        let clock = dev.clock();
        let ns = reread(&mut dev, &clock);
        uncached_ns = ns;
        (0u8, ns)
    });

    g.bench_with_sim("reread_cached", || {
        let md = timed_disk();
        let clock = md.clock();
        let mut dev = StackBuilder::new(md)
            .with_cache(CachePolicy::write_back(1024))
            .build();
        let ns = reread(&mut dev, &clock);
        assert_eq!(
            dev.stats().misses,
            TOUCHED,
            "each block fetched exactly once"
        );
        cached_ns = ns;
        (0u8, ns)
    });

    g.bench_with_sim("scattered_writes_direct", || {
        let mut dev = timed_disk();
        let clock = dev.clock();
        (0u8, scattered_writes(&mut dev, &clock))
    });

    g.bench_with_sim("scattered_writes_elevator", || {
        let md = timed_disk();
        let clock = md.clock();
        let mut dev = StackBuilder::new(md)
            .with_cache(CachePolicy::write_back(1024))
            .build();
        (0u8, scattered_writes(&mut dev, &clock))
    });

    g.bench_with_sim("ext3_reread_uncached", || {
        let md = timed_disk();
        let clock = md.clock();
        (0u8, ext3_reread(md, &clock))
    });

    g.bench_with_sim("ext3_reread_cached", || {
        let md = timed_disk();
        let clock = md.clock();
        let dev = StackBuilder::new(md)
            .with_cache(CachePolicy::write_back(2048))
            .build();
        (0u8, ext3_reread(dev, &clock))
    });

    // The headline claim, asserted: ≥2× on re-read-heavy work.
    let speedup = uncached_ns as f64 / cached_ns.max(1) as f64;
    eprintln!(
        "cache re-read speedup: {speedup:.1}x (uncached {uncached_ns} ns, cached {cached_ns} ns)"
    );
    assert!(
        speedup >= 2.0,
        "buffer cache must be >=2x on re-reads (got {speedup:.2}x)"
    );

    g.finish();
}

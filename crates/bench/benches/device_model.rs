//! Micro-benchmarks of the simulated block device: raw throughput of the
//! model itself (host-side cost, not simulated time).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use iron_blockdev::{BlockDevice, MemDisk};
use iron_core::{Block, BlockAddr};

fn bench_device(c: &mut Criterion) {
    let mut g = c.benchmark_group("device_model");
    g.sample_size(20);

    g.bench_function("sequential_write_1k_blocks", |b| {
        b.iter(|| {
            let mut d = MemDisk::for_tests(2048);
            let block = Block::filled(0xAA);
            for i in 0..1024u64 {
                d.write(BlockAddr(i), &block).unwrap();
            }
            black_box(d.stats())
        })
    });

    g.bench_function("random_read_1k_blocks", |b| {
        let mut d = MemDisk::for_tests(4096);
        let block = Block::filled(0x55);
        for i in 0..4096u64 {
            d.write(BlockAddr(i), &block).unwrap();
        }
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1024u64 {
                let addr = (i * 2654435761) % 4096;
                acc ^= d.read(BlockAddr(addr)).unwrap()[0] as u64;
            }
            black_box(acc)
        })
    });

    g.bench_function("snapshot_16mb_image", |b| {
        let d = MemDisk::for_tests(4096);
        b.iter(|| black_box(d.snapshot().stats()))
    });

    g.finish();
}

criterion_group!(benches, bench_device);
criterion_main!(benches);

//! Micro-benchmarks of the simulated block device: raw throughput of the
//! model itself (host-side cost, not simulated time).

use iron_testkit::{black_box, BenchGroup};

use iron_blockdev::{BlockDevice, MemDisk};
use iron_core::{Block, BlockAddr};

fn main() {
    let mut g = BenchGroup::from_env("device_model");

    g.bench("sequential_write_1k_blocks", || {
        let mut d = MemDisk::for_tests(2048);
        let block = Block::filled(0xAA);
        for i in 0..1024u64 {
            d.write(BlockAddr(i), &block).unwrap();
        }
        black_box(d.stats())
    });

    {
        let mut d = MemDisk::for_tests(4096);
        let block = Block::filled(0x55);
        for i in 0..4096u64 {
            d.write(BlockAddr(i), &block).unwrap();
        }
        g.bench("random_read_1k_blocks", || {
            let mut acc = 0u64;
            for i in 0..1024u64 {
                let addr = (i * 2654435761) % 4096;
                acc ^= d.read(BlockAddr(addr)).unwrap()[0] as u64;
            }
            black_box(acc)
        });
    }

    {
        let d = MemDisk::for_tests(4096);
        g.bench("snapshot_16mb_image", || black_box(d.snapshot().stats()));
    }

    g.finish();
}

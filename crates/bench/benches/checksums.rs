//! Checksum throughput: SHA-1 (the ixt3 block checksum) and CRC-32 (the
//! journal self-check), per 4 KiB block.

use iron_testkit::{black_box, BenchGroup};

use iron_core::checksum::{crc32, sha1};
use iron_core::BLOCK_SIZE;

fn main() {
    let block = vec![0xA5u8; BLOCK_SIZE];
    let mut g = BenchGroup::from_env("checksums");
    g.throughput_bytes(Some(BLOCK_SIZE as u64));

    g.bench("sha1_4k_block", || black_box(sha1(&block)));
    g.bench("crc32_4k_block", || black_box(crc32(&block)));

    g.finish();
}

//! Checksum throughput: SHA-1 (the ixt3 block checksum) and CRC-32 (the
//! journal self-check), per 4 KiB block.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use iron_core::checksum::{crc32, sha1};
use iron_core::BLOCK_SIZE;

fn bench_checksums(c: &mut Criterion) {
    let block = vec![0xA5u8; BLOCK_SIZE];
    let mut g = c.benchmark_group("checksums");
    g.throughput(Throughput::Bytes(BLOCK_SIZE as u64));

    g.bench_function("sha1_4k_block", |b| b.iter(|| black_box(sha1(&block))));
    g.bench_function("crc32_4k_block", |b| b.iter(|| black_box(crc32(&block))));

    g.finish();
}

criterion_group!(benches, bench_checksums);
criterion_main!(benches);

//! fsck thread-scaling: the pFSCK-style parallel engine checking one
//! ext3 image at 1/2/4/8 worker threads. The `threads = 1` row is the
//! honest sequential baseline (no pool, no atomics); every row must
//! report the identical issue set — the scaling is free of result drift
//! by construction, and this bench asserts it on every sample.

use iron_testkit::{black_box, BenchGroup};

use iron_blockdev::{MemDisk, RawAccess};
use iron_ext3::fsck::Ext3Image;
use iron_ext3::{alloc, Ext3Fs, Ext3Options, Ext3Params};
use iron_fsck::FsckEngine;
use iron_vfs::{FsEnv, Vfs};

/// A medium image (32768 blocks) with a few hundred files across a
/// directory tree — some large enough for indirect blocks — plus a
/// scatter of inconsistencies so the issue paths are exercised too.
fn build_image() -> Ext3Image<MemDisk> {
    let dev = MemDisk::for_tests(32_768);
    let fs = Ext3Fs::format_and_mount(
        dev,
        FsEnv::new(),
        Ext3Params::medium(),
        Ext3Options::default(),
    )
    .unwrap();
    let mut v = Vfs::new(fs);
    for d in 0..8 {
        v.mkdir(&format!("/d{d}"), 0o755).unwrap();
        for f in 0..30 {
            let size = if f % 10 == 0 { 60_000 } else { 6_000 };
            v.write_file(&format!("/d{d}/f{f}"), &vec![(d * 31 + f) as u8; size])
                .unwrap();
        }
    }
    v.link("/d0/f1", "/hard").unwrap();
    v.umount().unwrap();
    let fs = v.into_fs();
    let layout = *fs.layout();
    let mut dev = fs.into_device();

    // Plant some damage: leaked blocks and a bitmap flip, so the check
    // walks its issue paths, not just the clean fast path.
    let bm_addr = layout.data_bitmap(1);
    let mut bm = dev.peek(bm_addr);
    for bit in [100u64, 200, 300] {
        alloc::bit_set(&mut bm, layout.params.blocks_per_group - 2 - bit);
    }
    dev.poke(bm_addr, &bm);
    let ibm_addr = layout.inode_bitmap(2);
    let mut ibm = dev.peek(ibm_addr);
    alloc::bit_set(&mut ibm, layout.params.inodes_per_group - 3);
    dev.poke(ibm_addr, &ibm);

    Ext3Image::new(dev, layout)
}

fn main() {
    let mut g = BenchGroup::from_env("fsck");
    let img = build_image();
    let baseline = FsckEngine::with_threads(1).check(&img);
    assert!(!baseline.is_clean(), "planted damage must be visible");

    for threads in [1usize, 2, 4, 8] {
        let engine = FsckEngine::with_threads(threads);
        let expected = baseline.issues.clone();
        let img = &img;
        g.bench(&format!("check_t{threads}"), move || {
            let report = engine.check(img);
            assert_eq!(
                report.issues, expected,
                "t={threads} must report the t=1 issue set"
            );
            black_box(report.stats.block_refs)
        });
    }

    g.finish();
}

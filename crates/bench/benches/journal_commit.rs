//! Journal commit cost, with and without transactional checksums — the
//! code path behind Table 6's `Tc` column. Each bench also reports the
//! simulated disk time of one cycle (deterministic), alongside host time.

use iron_testkit::BenchGroup;

use iron_blockdev::MemDisk;
use iron_ext3::{Ext3Fs, Ext3Options, Ext3Params, IronConfig};
use iron_vfs::{FsEnv, Vfs};

fn commit_cycle(iron: IronConfig) -> (u64, u64) {
    let dev = MemDisk::for_tests(4096);
    let clock = dev.clock();
    let fs = Ext3Fs::format_and_mount(
        dev,
        FsEnv::new(),
        Ext3Params::small(),
        Ext3Options::with_iron(iron),
    )
    .unwrap();
    let mut v = Vfs::new(fs);
    for i in 0..20 {
        v.write_file(&format!("/f{i}"), &vec![i as u8; 8192])
            .unwrap();
        v.sync().unwrap();
    }
    (v.statfs().unwrap().blocks_free, clock.now_ns())
}

/// The group-commit cycle: bursts of writes between syncs, with a small
/// commit threshold so several transactions close per burst. `group_commit`
/// is the only knob that differs between the batched and unbatched runs —
/// batching merges the closed transactions under one descriptor chain,
/// commit block, and barrier pair per sync.
fn batched_cycle(group_commit: usize) -> (u64, u64) {
    let dev = MemDisk::for_tests(4096);
    let clock = dev.clock();
    let fs = Ext3Fs::format_and_mount(
        dev,
        FsEnv::new(),
        Ext3Params::small(),
        Ext3Options {
            commit_threshold: 6,
            group_commit,
            checkpoint_lag: 48,
            ..Ext3Options::with_iron(IronConfig::full())
        },
    )
    .unwrap();
    let mut v = Vfs::new(fs);
    for burst in 0..4 {
        for i in 0..5 {
            let n = burst * 5 + i;
            v.write_file(&format!("/f{n}"), &vec![n as u8; 8192])
                .unwrap();
        }
        v.sync().unwrap();
    }
    (v.statfs().unwrap().blocks_free, clock.now_ns())
}

fn main() {
    let mut g = BenchGroup::from_env("journal_commit");
    let base = IronConfig {
        fix_bugs: true,
        ..IronConfig::off()
    };
    g.bench_with_sim("20_synced_creates_no_tc", || commit_cycle(base));
    g.bench_with_sim("20_synced_creates_with_tc", || {
        commit_cycle(IronConfig {
            txn_checksum: true,
            ..base
        })
    });
    g.bench_with_sim("20_synced_creates_full_ixt3", || {
        commit_cycle(IronConfig::full())
    });
    g.bench_with_sim("20_burst_creates_unbatched", || batched_cycle(1));
    g.bench_with_sim("20_burst_creates_batched", || batched_cycle(8));
    g.finish();

    // Commit-path throughput gate: the same burst workload over the same
    // simulated disk must run at least 1.5x faster (simulated time) with
    // group commit than without. The sim clock is deterministic, so this
    // is a hard floor, not a flaky perf check.
    let (_, unbatched_ns) = batched_cycle(1);
    let (_, batched_ns) = batched_cycle(8);
    let ratio = unbatched_ns as f64 / batched_ns as f64;
    assert!(
        ratio >= 1.5,
        "group commit must speed the commit path by >=1.5x in simulated \
         time; got {ratio:.2}x ({unbatched_ns} ns unbatched vs {batched_ns} ns batched)"
    );
    eprintln!("journal_commit: group-commit sim speedup {ratio:.2}x");
}

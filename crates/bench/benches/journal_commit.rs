//! Journal commit cost, with and without transactional checksums — the
//! code path behind Table 6's `Tc` column. Each bench also reports the
//! simulated disk time of one cycle (deterministic), alongside host time.

use iron_testkit::BenchGroup;

use iron_blockdev::MemDisk;
use iron_ext3::{Ext3Fs, Ext3Options, Ext3Params, IronConfig};
use iron_vfs::{FsEnv, Vfs};

fn commit_cycle(iron: IronConfig) -> (u64, u64) {
    let dev = MemDisk::for_tests(4096);
    let clock = dev.clock();
    let fs = Ext3Fs::format_and_mount(
        dev,
        FsEnv::new(),
        Ext3Params::small(),
        Ext3Options::with_iron(iron),
    )
    .unwrap();
    let mut v = Vfs::new(fs);
    for i in 0..20 {
        v.write_file(&format!("/f{i}"), &vec![i as u8; 8192])
            .unwrap();
        v.sync().unwrap();
    }
    (v.statfs().unwrap().blocks_free, clock.now_ns())
}

fn main() {
    let mut g = BenchGroup::from_env("journal_commit");
    let base = IronConfig {
        fix_bugs: true,
        ..IronConfig::off()
    };
    g.bench_with_sim("20_synced_creates_no_tc", || commit_cycle(base));
    g.bench_with_sim("20_synced_creates_with_tc", || {
        commit_cycle(IronConfig {
            txn_checksum: true,
            ..base
        })
    });
    g.bench_with_sim("20_synced_creates_full_ixt3", || {
        commit_cycle(IronConfig::full())
    });
    g.finish();
}

//! Journal commit cost, with and without transactional checksums — the
//! code path behind Table 6's `Tc` column.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use iron_blockdev::MemDisk;
use iron_ext3::{Ext3Fs, Ext3Options, Ext3Params, IronConfig};
use iron_vfs::{FsEnv, Vfs};

fn commit_cycle(iron: IronConfig) -> u64 {
    let dev = MemDisk::for_tests(4096);
    let fs = Ext3Fs::format_and_mount(
        dev,
        FsEnv::new(),
        Ext3Params::small(),
        Ext3Options::with_iron(iron),
    )
    .unwrap();
    let mut v = Vfs::new(fs);
    for i in 0..20 {
        v.write_file(&format!("/f{i}"), &vec![i as u8; 8192]).unwrap();
        v.sync().unwrap();
    }
    v.statfs().unwrap().blocks_free
}

fn bench_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("journal_commit");
    g.sample_size(10);
    let base = IronConfig {
        fix_bugs: true,
        ..IronConfig::off()
    };
    g.bench_function("20_synced_creates_no_tc", |b| {
        b.iter(|| black_box(commit_cycle(base)))
    });
    g.bench_function("20_synced_creates_with_tc", |b| {
        b.iter(|| {
            black_box(commit_cycle(IronConfig {
                txn_checksum: true,
                ..base
            }))
        })
    });
    g.bench_function("20_synced_creates_full_ixt3", |b| {
        b.iter(|| black_box(commit_cycle(IronConfig::full())))
    });
    g.finish();
}

criterion_group!(benches, bench_commit);
criterion_main!(benches);

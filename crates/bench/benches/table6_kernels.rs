//! Criterion wrappers around the Table 6 macro-benchmarks for the headline
//! configurations (full sweeps live in the `table6` binary; these track
//! host-side regressions of the kernels themselves).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use iron_ext3::IronConfig;
use iron_workloads::bench::{run_benchmark, Benchmark};

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6_kernels");
    g.sample_size(10);
    let base = IronConfig {
        fix_bugs: true,
        ..IronConfig::off()
    };
    for (name, cfg) in [("ext3", base), ("ixt3_full", IronConfig::full())] {
        g.bench_function(format!("postmark_{name}"), |b| {
            b.iter(|| black_box(run_benchmark(Benchmark::PostMark, cfg)))
        });
        g.bench_function(format!("tpcb_{name}"), |b| {
            b.iter(|| black_box(run_benchmark(Benchmark::TpcB, cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);

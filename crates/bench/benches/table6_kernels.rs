//! Bench wrappers around the Table 6 macro-benchmarks for the headline
//! configurations (full sweeps live in the `table6` binary; these track
//! host-side regressions of the kernels themselves). `run_benchmark`
//! returns simulated ns, which each bench records alongside host time.

use iron_testkit::BenchGroup;

use iron_ext3::IronConfig;
use iron_workloads::bench::{run_benchmark, Benchmark};

fn main() {
    let mut g = BenchGroup::from_env("table6_kernels");
    let base = IronConfig {
        fix_bugs: true,
        ..IronConfig::off()
    };
    for (name, cfg) in [("ext3", base), ("ixt3_full", IronConfig::full())] {
        g.bench_with_sim(&format!("postmark_{name}"), || {
            let sim = run_benchmark(Benchmark::PostMark, cfg);
            ((), sim)
        });
        g.bench_with_sim(&format!("tpcb_{name}"), || {
            let sim = run_benchmark(Benchmark::TpcB, cfg);
            ((), sim)
        });
    }
    g.finish();
}

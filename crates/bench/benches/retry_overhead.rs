//! The failure-policy engine paying for itself: device-level retry and
//! I/O deadlines must cost **zero simulated time** on the fault-free
//! path. Run with `--smoke` for CI. Emits `BENCH_retry.json`.
//!
//! Three kernels:
//!
//! * `fs_ops_bare` / `fs_ops_policied` — the same ext3 write/sync/read
//!   workload on a mechanically-timed disk, without and with a
//!   [`RetryLayer`] (budget-3 policy, 1 s deadline) in the stack. The
//!   two simulated times are asserted **equal**: a policy-equipped stack
//!   is sim-time-identical to a bare one until a fault actually fires.
//! * `masked_transient_reads` — a stream of reads each hitting a
//!   depth-1 transient fault; every one is masked by a single re-issue,
//!   and the reported simulated time is exactly the deterministic
//!   backoff charge.

use iron_testkit::{black_box, BenchGroup};

use iron_blockdev::{
    BlockDevice, DiskGeometry, MemDisk, RawAccess, RetryConfig, RetryLayer, StackBuilder,
};
use iron_core::recover::{Backoff, FailurePolicyTable, PolicyHandle, RecoveryAction};
use iron_core::{BlockAddr, FaultKind, SimClock};
use iron_ext3::{Ext3Fs, Ext3Options, Ext3Params};
use iron_faultinject::{FaultSpec, FaultTarget, FaultyDisk};
use iron_vfs::{FsEnv, Vfs};

const FILES: usize = 16;
const FILE_BYTES: usize = 24_000;
const MASKED_READS: u32 = 256;
const BACKOFF_BASE_NS: u64 = 1_000;

fn policy(budget: u32) -> PolicyHandle {
    PolicyHandle::new(FailurePolicyTable::with_default(vec![
        RecoveryAction::Retry {
            budget,
            backoff: Backoff::exponential(BACKOFF_BASE_NS, 2, 1_000_000),
        },
        RecoveryAction::Propagate,
    ]))
}

fn timed_disk() -> MemDisk {
    MemDisk::new(4096, DiskGeometry::ata_7200rpm(), SimClock::new())
}

/// Format, write a file set, sync, read it back, unmount; returns sim ns.
fn fs_workload<D: BlockDevice + RawAccess>(dev: D, clock: &SimClock) -> u64 {
    let fs = Ext3Fs::format_and_mount(
        dev,
        FsEnv::new(),
        Ext3Params::small(),
        Ext3Options::default(),
    )
    .unwrap();
    let mut v = Vfs::new(fs);
    let start = clock.now_ns();
    for i in 0..FILES {
        v.write_file(&format!("/f{i}"), &vec![i as u8; FILE_BYTES])
            .unwrap();
    }
    v.sync().unwrap();
    for i in 0..FILES {
        black_box(v.read_file(&format!("/f{i}")).unwrap());
    }
    v.umount().unwrap();
    clock.elapsed_since(start)
}

fn main() {
    let mut g = BenchGroup::from_env("retry");

    let mut bare_ns = 0u64;
    let mut policied_ns = 0u64;

    g.bench_with_sim("fs_ops_bare", || {
        let md = timed_disk();
        let clock = md.clock();
        let ns = fs_workload(md, &clock);
        bare_ns = ns;
        (0u8, ns)
    });

    g.bench_with_sim("fs_ops_policied", || {
        let md = timed_disk();
        let clock = md.clock();
        let dev = StackBuilder::new(md)
            .with_retry(RetryConfig::new(policy(3), clock.clone()).deadline_ns(1_000_000_000))
            .build();
        let ns = fs_workload(dev, &clock);
        policied_ns = ns;
        (0u8, ns)
    });

    // The headline claim, asserted on every run: the fault-free policy
    // path charges no simulated time at all.
    eprintln!("retry overhead: bare {bare_ns} ns, policied {policied_ns} ns");
    assert_eq!(
        bare_ns, policied_ns,
        "fault-free RetryLayer must be sim-time-identical to a bare stack"
    );

    g.bench_with_sim("masked_transient_reads", || {
        let md = MemDisk::for_tests(64);
        let clock = md.clock();
        let faulty = FaultyDisk::new(md).with_clock(clock.clone());
        let ctl = faulty.controller();
        let mut layer = RetryLayer::new(faulty, RetryConfig::new(policy(3), clock.clone()));
        let start = clock.now_ns();
        for _ in 0..MASKED_READS {
            // A depth-1 transient per read: the first attempt fails, the
            // re-issue succeeds.
            ctl.inject(FaultSpec::transient(
                FaultKind::ReadError,
                FaultTarget::Addr(BlockAddr(5)),
                1,
            ));
            black_box(layer.read(BlockAddr(5)).unwrap());
        }
        let ns = clock.elapsed_since(start);
        let s = layer.stats().snapshot();
        assert_eq!(s.masked, u64::from(MASKED_READS), "every read was masked");
        assert_eq!(
            ns,
            u64::from(MASKED_READS) * BACKOFF_BASE_NS,
            "sim time is exactly the first-re-issue backoff per read"
        );
        (0u8, ns)
    });

    g.finish();
}

//! Replicated-volume cost model: what does mirroring a volume across N
//! mechanically-timed replicas cost on writes, what do the read policies
//! cost per policy, and how fast does peer repair heal a divergent
//! replica. Emits `BENCH_cluster.json`; run with `--smoke` for CI.
//!
//! Simulated time of the volume is the *slowest replica's* clock — the
//! replicas are independent spindles serviced in parallel, so a fan-out
//! write completes when the last copy lands. Each replica gets its own
//! fresh [`SimClock`] via `MemDisk::snapshot`, so `max(now_ns)` over the
//! replicas is exactly that completion time.

use iron_testkit::{black_box, BenchGroup};

use iron_blockdev::{BlockDevice, DiskGeometry, MemDisk, RawAccess};
use iron_cluster::{ReadPolicy, ReplicatedDisk};
use iron_core::{Block, BlockAddr, SimClock};

const DISK_BLOCKS: u64 = 4096;
const SPREAD: u64 = 16; // stride defeats pure streaming transfers
const TOUCHED: u64 = 512;
const DIVERGENT: u64 = 64;

fn timed_golden() -> MemDisk {
    MemDisk::new(DISK_BLOCKS, DiskGeometry::ata_7200rpm(), SimClock::new())
}

fn volume(n: usize, policy: ReadPolicy) -> ReplicatedDisk<MemDisk> {
    // snapshot() keeps the mechanical geometry and hands each replica a
    // fresh zeroed clock.
    ReplicatedDisk::from_golden(&timed_golden(), n, policy)
}

/// Completion time: the slowest replica's simulated clock.
fn sim_ns(vol: &ReplicatedDisk<MemDisk>) -> u64 {
    (0..vol.num_replicas())
        .map(|i| vol.replica(i).clock().now_ns())
        .max()
        .unwrap_or(0)
}

fn main() {
    let mut g = BenchGroup::from_env("cluster");

    // Fan-out write throughput vs replica count: the write amplification
    // is N-fold in I/O but the spindles run in parallel, so completion
    // time should stay near the single-disk cost.
    g.throughput_units(Some(TOUCHED));
    for n in [1usize, 2, 3] {
        g.bench_with_sim(&format!("write_scattered_n{n}"), move || {
            let mut vol = volume(n, ReadPolicy::Primary);
            for i in 0..TOUCHED {
                vol.write(
                    BlockAddr((i * SPREAD) % DISK_BLOCKS),
                    &Block::filled(i as u8),
                )
                .unwrap();
            }
            vol.flush().unwrap();
            let ns = sim_ns(&vol);
            (black_box(vol.stats().snapshot().writes), ns)
        });
    }

    // Read cost per policy on a 3-replica volume: primary touches one
    // spindle, round-robin spreads seeks across three, quorum pays for
    // every replica on every read — the price of arbitration.
    for (name, policy) in [
        ("read_primary_n3", ReadPolicy::Primary),
        ("read_roundrobin_n3", ReadPolicy::RoundRobin),
        ("read_quorum_n3", ReadPolicy::Quorum),
    ] {
        g.bench_with_sim(name, move || {
            let mut vol = volume(3, policy);
            for i in 0..TOUCHED {
                black_box(vol.read(BlockAddr((i * SPREAD) % DISK_BLOCKS)).unwrap());
            }
            (black_box(vol.stats().snapshot().reads), sim_ns(&vol))
        });
    }

    // Repair rate: a full-volume scrub healing DIVERGENT poked blocks on
    // one replica of three. Units are scanned blocks — the scrub walks
    // the whole volume — so this is repair-scan blocks/sec with healing
    // work included.
    g.throughput_units(Some(DISK_BLOCKS));
    g.bench_with_sim("scrub_repair_n3", || {
        let mut vol = volume(3, ReadPolicy::Quorum);
        for i in 0..DIVERGENT {
            vol.replica_mut(1)
                .poke(BlockAddr((i * 61) % DISK_BLOCKS), &Block::filled(0xBD));
        }
        let report = vol.scrub_repair();
        assert_eq!(report.scanned, DISK_BLOCKS);
        assert!(report.all_healed(), "{report:?}");
        assert!(vol.replicas_identical());
        (black_box(report.healed), sim_ns(&vol))
    });

    g.finish();
}

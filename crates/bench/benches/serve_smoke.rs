//! Serving-layer throughput: ops/sec draining a fixed multi-client
//! workload through the request engine at 1/2/4/8 worker threads, over
//! ext3 on a full `StackBuilder` stack (write-back cache over MemDisk).
//!
//! Before timing each width, the differential oracle runs once — the
//! concurrent run must equal its serial replay (responses, namespace,
//! bit-identical image). The timed body then measures serving alone on a
//! long-lived mount, so the reported ops/sec is engine + lock manager +
//! file system, not mkfs.

use iron_testkit::{black_box, BenchGroup};

use iron_blockdev::{BufferCache, CachePolicy, MemDisk, StackBuilder};
use iron_ext3::{Ext3Fs, Ext3Options, Ext3Params};
use iron_serve::{
    assert_serial_equivalence, generate, memdisk_image, prepare, serve, ServeOptions, WorkloadSpec,
};
use iron_vfs::{FsEnv, Vfs};

fn mount_prepared(spec: &WorkloadSpec) -> Vfs<Ext3Fs<BufferCache<MemDisk>>> {
    let mut md = MemDisk::for_tests(4096);
    Ext3Fs::<MemDisk>::mkfs(&mut md, Ext3Params::small()).unwrap();
    let dev = StackBuilder::new(md)
        .with_cache(CachePolicy::write_back(64))
        .build();
    let fs = Ext3Fs::mount(dev, FsEnv::new(), Ext3Options::default()).unwrap();
    let mut v = Vfs::new(fs);
    prepare(&mut v, spec);
    v
}

fn main() {
    let mut g = BenchGroup::from_env("serve");

    let spec = WorkloadSpec {
        sessions: 16,
        requests_per_session: 64,
        ..Default::default()
    };
    let sessions = generate(&spec);
    let total = spec.sessions * spec.requests_per_session;
    g.throughput_units(Some(total as u64));

    for threads in [1usize, 2, 4, 8] {
        // Correctness first, outside the timed body: this width must pass
        // the full differential before its throughput means anything.
        assert_serial_equivalence(
            || mount_prepared(&spec),
            |v| {
                let cache = v.into_fs().into_device();
                assert_eq!(cache.dirty_blocks(), 0, "unmount drains the cache");
                Some(memdisk_image(&cache.into_inner()))
            },
            &sessions,
            &[threads],
        );

        let opts = ServeOptions::default().with_threads(threads);
        let mut v = mount_prepared(&spec);
        let sessions = &sessions;
        g.bench(&format!("ext3_cached_t{threads}"), move || {
            let report = serve(&mut v, sessions, &opts);
            assert_eq!(report.total_ops(), total);
            black_box(report.commit_log.len())
        });
    }

    g.finish();
}

//! Cross-file-system operation benchmarks: the same create/write/read/
//! delete kernel on each of the four models (host-side cost of the models
//! themselves).

use iron_testkit::{black_box, BenchGroup};

use iron_blockdev::MemDisk;
use iron_vfs::{FsEnv, SpecificFs, Vfs};

fn kernel<F: SpecificFs>(mut v: Vfs<F>) -> u64 {
    v.mkdir("/d", 0o755).unwrap();
    for i in 0..40 {
        v.write_file(&format!("/d/f{i}"), &vec![i as u8; 12_000])
            .unwrap();
    }
    for i in 0..40 {
        let _ = v.read_file(&format!("/d/f{i}")).unwrap();
    }
    for i in (0..40).step_by(2) {
        v.unlink(&format!("/d/f{i}")).unwrap();
    }
    v.sync().unwrap();
    v.statfs().unwrap().blocks_free
}

fn main() {
    let mut g = BenchGroup::from_env("fs_ops_kernel");

    g.bench("ext3", || {
        let dev = MemDisk::for_tests(4096);
        let fs = iron_ext3::Ext3Fs::format_and_mount(
            dev,
            FsEnv::new(),
            iron_ext3::Ext3Params::small(),
            iron_ext3::Ext3Options::default(),
        )
        .unwrap();
        black_box(kernel(Vfs::new(fs)))
    });

    g.bench("reiserfs", || {
        let dev = MemDisk::for_tests(4096);
        let fs = iron_reiser::ReiserFs::format_and_mount(
            dev,
            FsEnv::new(),
            iron_reiser::ReiserParams::small(),
            iron_reiser::ReiserOptions::default(),
        )
        .unwrap();
        black_box(kernel(Vfs::new(fs)))
    });

    g.bench("jfs", || {
        let dev = MemDisk::for_tests(4096);
        let fs = iron_jfs::JfsFs::format_and_mount(
            dev,
            FsEnv::new(),
            iron_jfs::JfsParams::small(),
            iron_jfs::JfsOptions::default(),
        )
        .unwrap();
        black_box(kernel(Vfs::new(fs)))
    });

    g.bench("ntfs", || {
        let dev = MemDisk::for_tests(4096);
        let fs =
            iron_ntfs::NtfsFs::format_and_mount(dev, FsEnv::new(), iron_ntfs::NtfsParams::small())
                .unwrap();
        black_box(kernel(Vfs::new(fs)))
    });

    g.finish();
}

//! Regenerate Figure 2: the failure-policy matrices of ext3, ReiserFS,
//! and JFS under read failures, write failures, and corruption, across
//! every (workload × block type) combination.

use iron_bench::figure2_adapters;
use iron_fingerprint::campaign::{fingerprint_fs, CampaignOptions};
use iron_fingerprint::render::render_matrix;

fn main() {
    let opts = CampaignOptions::default();
    for (name, adapter) in figure2_adapters() {
        eprintln!("fingerprinting {name} (this runs the full fault campaign)…");
        let m = fingerprint_fs(adapter.as_ref(), &opts);
        println!("{}", render_matrix(&m));
        println!();
    }
}

//! The §3.2 ablation: lazy (on-access) versus eager (scrubbing) detection
//! of latent sector errors — detection latency and double-fault exposure
//! as a function of the scrub period — plus a live demonstration of the
//! ixt3 scrubber repairing silent corruption in place.

use iron_blockdev::{MemDisk, RawAccess};
use iron_core::{Block, BlockAddr};
use iron_ext3::Ext3Params;
use iron_faultinject::reliability::{simulate, ReliabilityParams};
use iron_ixt3::scrub::scrub;
use iron_vfs::{FsEnv, SpecificFs, Vfs};

fn main() {
    println!("== Monte-Carlo: latent-error detection latency vs. scrub period ==\n");
    let base = ReliabilityParams {
        num_blocks: 1 << 20,
        error_rate_per_block_hour: 2e-6,
        access_fraction_per_hour: 0.002,
        scrub_period_hours: None,
        redundancy_group: 2,
        duration_hours: 8760.0, // one year
        seed: 1,
    };
    println!(
        "{:<18} {:>10} {:>12} {:>14}",
        "strategy", "errors", "latency(h)", "double faults"
    );
    let lazy = simulate(&base);
    println!(
        "{:<18} {:>10} {:>12.1} {:>14}",
        "lazy (on access)",
        lazy.errors_arrived,
        lazy.mean_detection_latency_hours,
        lazy.double_faults
    );
    for period in [168.0, 72.0, 24.0, 6.0] {
        let r = simulate(&ReliabilityParams {
            scrub_period_hours: Some(period),
            ..base
        });
        println!(
            "{:<18} {:>10} {:>12.1} {:>14}",
            format!("scrub every {period}h"),
            r.errors_arrived,
            r.mean_detection_latency_hours,
            r.double_faults
        );
    }

    println!("\n== Live: ixt3 scrubber repairing silent corruption ==\n");
    let dev = MemDisk::for_tests(4096);
    let mut fs =
        iron_ixt3::format_and_mount_full(dev, FsEnv::new(), Ext3Params::small()).expect("mount");
    {
        let mut v = Vfs::new(&mut fs as &mut dyn SpecificFs);
        for i in 0..10 {
            v.write_file(&format!("/f{i}"), &vec![i as u8 + 1; 30_000])
                .expect("write");
        }
        v.sync().expect("sync");
    }
    // Silently corrupt three blocks on the medium.
    let victims = [
        fs.layout().inode_table(0),
        fs.layout().data_start(0) + 7,
        fs.layout().data_start(0) + 19,
    ];
    for v in victims {
        fs.device_mut().poke(BlockAddr(v), &Block::filled(0xE5));
    }
    let report = scrub(&mut fs);
    println!(
        "scanned {} blocks: {} corruptions found, {} repaired in place, {} unrecoverable",
        report.scanned, report.corruptions, report.repaired, report.unrecoverable
    );
    assert_eq!(report.unrecoverable, 0, "full ixt3 repairs everything");
    println!("\n(lazy detection would have left these as land mines for the next reader)");
}

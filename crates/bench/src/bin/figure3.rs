//! Regenerate Figure 3: the ixt3 failure-policy matrix, plus the §6.2
//! robustness count ("ixt3 detects and recovers from over 200 possible
//! different partial-error scenarios that we induced").

use iron_core::RecoveryLevel;
use iron_fingerprint::campaign::{fingerprint_fs, CampaignOptions, FaultMode, PolicyMatrix};
use iron_fingerprint::render::render_matrix;
use iron_fingerprint::Ext3Adapter;

fn tally(m: &PolicyMatrix, detected: &mut usize, handled: &mut usize, relevant: &mut usize) {
    *relevant += m.relevant;
    for cell in m.cells.values().flatten() {
        if !cell.detection.is_empty() {
            *detected += 1;
        }
        let r = cell.recovery;
        if r.contains(RecoveryLevel::RRedundancy)
            || r.contains(RecoveryLevel::RRetry)
            || r.contains(RecoveryLevel::RPropagate)
            || r.contains(RecoveryLevel::RStop)
        {
            *handled += 1;
        }
    }
}

fn main() {
    eprintln!("fingerprinting ixt3 (full IRON configuration)…");
    let m = fingerprint_fs(&Ext3Adapter::ixt3(), &CampaignOptions::default());
    println!("{}", render_matrix(&m));

    // The §6.2 scenario count also sweeps the supplementary manifestations
    // (transient read errors, zeroed-block corruption) the paper's
    // injector models (§2.3.1, §4.2).
    eprintln!("running supplementary scenario sweep (transient + zeroed-corruption)…");
    let extra = fingerprint_fs(
        &Ext3Adapter::ixt3(),
        &CampaignOptions {
            modes: vec![FaultMode::TransientRead, FaultMode::ZeroCorruption],
            ..CampaignOptions::default()
        },
    );

    let (mut detected, mut handled, mut relevant) = (0, 0, 0);
    tally(&m, &mut detected, &mut handled, &mut relevant);
    tally(&extra, &mut detected, &mut handled, &mut relevant);
    println!(
        "\nixt3 robustness: {relevant} relevant partial-error scenarios; {detected} detected, {handled} handled"
    );
    println!("(paper, §6.2: \"detects and recovers from over 200 possible different partial-error scenarios\")");
}

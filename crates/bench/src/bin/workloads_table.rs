//! Print Table 3 of the paper: the applied workload suite, as implemented
//! by the fingerprinting framework (columns a–t of Figure 2).

use iron_fingerprint::Workload;

fn main() {
    println!("Table 3: Workloads applied to the file systems under test\n");
    println!("{:<4} {:<16} workload", "col", "kind");
    for w in Workload::COLUMNS {
        let kind = match w {
            Workload::PathTraversal | Workload::Recovery | Workload::LogWrites => "generic",
            _ => "singlet",
        };
        println!("{:<4} {:<16} {}", w.letter(), kind, w.describe());
    }
}

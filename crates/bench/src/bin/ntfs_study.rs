//! Regenerate the §5.4 NTFS study (the paper's NTFS analysis is
//! qualitative — closed source, incomplete structure knowledge — so this
//! prints the matrix over the Table 4 NTFS rows plus the paper's summary
//! observations, checked against the campaign).

use iron_core::{DetectionLevel, RecoveryLevel};
use iron_fingerprint::campaign::{fingerprint_fs, CampaignOptions};
use iron_fingerprint::render::render_matrix;
use iron_fingerprint::NtfsAdapter;

fn main() {
    eprintln!("fingerprinting NTFS…");
    let m = fingerprint_fs(&NtfsAdapter, &CampaignOptions::default());
    println!("{}", render_matrix(&m));

    let cells: Vec<_> = m.cells.values().flatten().collect();
    let retry = cells
        .iter()
        .filter(|c| c.recovery.contains(RecoveryLevel::RRetry))
        .count();
    let propagate = cells
        .iter()
        .filter(|c| c.recovery.contains(RecoveryLevel::RPropagate))
        .count();
    let sanity = cells
        .iter()
        .filter(|c| c.detection.contains(DetectionLevel::DSanity))
        .count();
    println!("\n§5.4 checks:");
    println!(
        "  RRetry cells:     {retry:>3} / {} (\"persistence is a virtue\")",
        cells.len()
    );
    println!(
        "  RPropagate cells: {propagate:>3} / {} (errors reach the user reliably)",
        cells.len()
    );
    println!(
        "  DSanity cells:    {sanity:>3} / {} (strong metadata sanity checking)",
        cells.len()
    );
}

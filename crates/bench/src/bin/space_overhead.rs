//! Regenerate the §6.2 space-overhead numbers: the cost of checksums,
//! metadata replication, and per-file parity across volume profiles.

use iron_workloads::space::{render_report, VolumeProfile};

fn main() {
    println!("{}", render_report(&VolumeProfile::all()));
}

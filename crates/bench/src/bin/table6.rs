//! Regenerate Table 6: normalized runtimes of the 32 ixt3 variants over
//! SSH-Build, Web server, PostMark, and TPC-B.
//!
//! Pass `--quick` to run only the six headline rows (baseline + each
//! single mechanism + everything).

use iron_ext3::IronConfig;
use iron_workloads::bench::{render_table6, table6, Benchmark};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let configs: Vec<IronConfig> = if quick {
        let base = IronConfig {
            fix_bugs: true,
            ..IronConfig::off()
        };
        vec![
            base,
            IronConfig {
                meta_checksum: true,
                ..base
            },
            IronConfig {
                meta_replication: true,
                ..base
            },
            IronConfig {
                data_checksum: true,
                ..base
            },
            IronConfig {
                data_parity: true,
                ..base
            },
            IronConfig {
                txn_checksum: true,
                ..base
            },
            IronConfig::full(),
        ]
    } else {
        IronConfig::all_combinations()
    };
    eprintln!(
        "running {} variants × {} benchmarks (simulated disk time; this takes a while)…",
        configs.len(),
        Benchmark::ALL.len()
    );
    let rows = table6(&configs, &Benchmark::ALL);
    println!("{}", render_table6(&rows, &Benchmark::ALL));
    println!("Rows are normalized to row 0 (stock ext3). Speedups are [bracketed].");
    println!("Paper shape: SSH/Web ≈ 1.00 everywhere; PostMark/TPC-B pay for Mr/Dc/Dp;");
    println!("Tc alone *speeds up* TPC-B (paper 0.80) and offsets the combined cost.");
}

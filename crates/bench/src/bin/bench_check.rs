//! `bench_check` — the CI bench-regression gate.
//!
//! ```text
//! cargo run -p iron-bench --bin bench_check -- \
//!     --baseline results/baselines --current target/bench-smoke
//! ```
//!
//! Compares every committed `BENCH_*.json` baseline against the fresh
//! run, printing one verdict per bench result. Exits non-zero if any
//! result regressed beyond tolerance or disappeared. Tolerances:
//! `--tolerance` / `IRON_BENCH_TOLERANCE` for deterministic metrics
//! (sim_ns; default 0.20), `--wall-tolerance` /
//! `IRON_BENCH_WALL_TOLERANCE` for wall-clock metrics (default 2.0 —
//! smoke-mode wall timings on shared runners only catch cliffs).

use std::path::PathBuf;
use std::process::ExitCode;

use iron_bench::check::{compare, has_failures, load_dir, CheckOptions, Status};

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_check --baseline <dir> --current <dir> \
         [--tolerance <frac>] [--wall-tolerance <frac>]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut baseline: Option<PathBuf> = None;
    let mut current: Option<PathBuf> = None;
    let mut opts = CheckOptions::default();
    if let Some(t) = env_f64("IRON_BENCH_TOLERANCE") {
        opts.tolerance = t;
    }
    if let Some(t) = env_f64("IRON_BENCH_WALL_TOLERANCE") {
        opts.wall_tolerance = t;
    }

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline = args.next().map(PathBuf::from),
            "--current" => current = args.next().map(PathBuf::from),
            "--tolerance" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) => opts.tolerance = t,
                None => usage(),
            },
            "--wall-tolerance" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) => opts.wall_tolerance = t,
                None => usage(),
            },
            _ => usage(),
        }
    }
    let (Some(baseline), Some(current)) = (baseline, current) else {
        usage()
    };

    let base = match load_dir(&baseline) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_check: baseline: {e}");
            return ExitCode::from(2);
        }
    };
    let cur = match load_dir(&current) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench_check: current: {e}");
            return ExitCode::from(2);
        }
    };
    if base.is_empty() {
        eprintln!(
            "bench_check: no BENCH_*.json baselines in {} — commit some \
             (see results/baselines/README.md)",
            baseline.display()
        );
        return ExitCode::from(2);
    }

    let comparisons = compare(&base, &cur, &opts);
    for c in &comparisons {
        println!("{c}");
    }
    let regressed = comparisons
        .iter()
        .filter(|c| matches!(c.status, Status::Regressed { .. } | Status::Missing))
        .count();
    println!(
        "bench_check: {} results, {} failing (tolerance {:.0}% deterministic / {:.0}% wall)",
        comparisons.len(),
        regressed,
        opts.tolerance * 100.0,
        opts.wall_tolerance * 100.0,
    );
    if has_failures(&comparisons) {
        println!("bench_check: FAIL — intentional? re-baseline per results/baselines/README.md");
        ExitCode::FAILURE
    } else {
        println!("bench_check: ok");
        ExitCode::SUCCESS
    }
}

//! Print Table 4 of the paper: the on-disk data structures (block types)
//! of each file system under test — the rows of the Figure 2/3 matrices
//! and the targets of type-aware fault injection.

fn main() {
    println!("Table 4: File System Data Structures\n");
    println!("== ext3 / ixt3 ==");
    for t in iron_ext3::BlockType::FIGURE2_ROWS {
        println!("  {}", t.tag());
    }
    println!(
        "  (ixt3 additions) {}, {}, {}",
        iron_ext3::BlockType::CksumTable.tag(),
        iron_ext3::BlockType::Replica.tag(),
        iron_ext3::BlockType::Parity.tag()
    );
    println!("\n== ReiserFS ==");
    for t in iron_reiser::ReiserBlockType::FIGURE2_ROWS {
        println!("  {}", t.tag());
    }
    println!("\n== JFS ==");
    for t in iron_jfs::JfsBlockType::FIGURE2_ROWS {
        println!("  {}", t.tag());
    }
    println!("\n== NTFS ==");
    for t in iron_ntfs::NtfsBlockType::TABLE4_ROWS {
        println!("  {}", t.tag());
    }
}

//! Regenerate Table 5: the IRON-techniques summary across ext3, ReiserFS,
//! and JFS (and, for comparison, ixt3 — whose redundancy column is the
//! paper's point).

use iron_bench::full_campaign;
use iron_fingerprint::summary::{render_table5, summarize};

fn main() {
    let mut summaries = Vec::new();
    for fs in ["ext3", "reiserfs", "jfs", "ixt3"] {
        eprintln!("fingerprinting {fs}…");
        let m = full_campaign(fs);
        summaries.push(summarize(&m));
    }
    println!("{}", render_table5(&summaries));
    println!("Raw counts (cells exhibiting each level / relevant cells):");
    for s in &summaries {
        println!("\n{} ({} relevant cells)", s.fs_name, s.relevant);
        for (l, c) in &s.detection_counts {
            if *c > 0 {
                println!("  {l:<14} {c}");
            }
        }
        for (l, c) in &s.recovery_counts {
            if *c > 0 {
                println!("  {l:<14} {c}");
            }
        }
    }
}

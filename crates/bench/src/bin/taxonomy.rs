//! Print Tables 1 and 2 of the paper: the IRON detection and recovery
//! taxonomies.

fn main() {
    println!("{}", iron_core::taxonomy::render_table1());
    println!("{}", iron_core::taxonomy::render_table2());
}

//! # iron-bench
//!
//! The benchmark harness: one binary per table/figure of the paper (see
//! DESIGN.md's experiment index) and `iron-testkit` micro-benchmarks for the
//! performance-sensitive code paths.
//!
//! | binary | regenerates |
//! |---|---|
//! | `taxonomy` | Tables 1 & 2 (IRON taxonomy) |
//! | `workloads_table` | Table 3 (applied workloads) |
//! | `blocktypes_table` | Table 4 (block types per file system) |
//! | `figure2` | Figure 2 (ext3 / ReiserFS / JFS failure policies) |
//! | `ntfs_study` | §5.4 (NTFS qualitative results) |
//! | `table5` | Table 5 (IRON techniques summary) |
//! | `figure3` | Figure 3 (ixt3 failure policy) + the §6.2 scenario count |
//! | `table6` | Table 6 (overheads of ixt3 variants; `--quick` for a subset) |
//! | `space_overhead` | §6.2 space-overhead numbers |
//! | `scrubbing_ablation` | §3.2 eager-vs-lazy detection trade-off |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;

use iron_fingerprint::{
    fingerprint_fs, CampaignOptions, Ext3Adapter, FsUnderTest, JfsAdapter, NtfsAdapter,
    PolicyMatrix, ReiserAdapter,
};

/// Run a full fingerprinting campaign for the named file system.
pub fn full_campaign(which: &str) -> PolicyMatrix {
    let opts = CampaignOptions::default();
    match which {
        "ext3" => fingerprint_fs(&Ext3Adapter::stock(), &opts),
        "ixt3" => fingerprint_fs(&Ext3Adapter::ixt3(), &opts),
        "reiserfs" => fingerprint_fs(&ReiserAdapter, &opts),
        "jfs" => fingerprint_fs(&JfsAdapter, &opts),
        "ntfs" => fingerprint_fs(&NtfsAdapter, &opts),
        other => panic!("unknown file system {other}"),
    }
}

/// The adapters for the three Figure 2 file systems.
pub fn figure2_adapters() -> Vec<(&'static str, Box<dyn FsUnderTest>)> {
    vec![
        ("ext3", Box::new(Ext3Adapter::stock())),
        ("reiserfs", Box::new(ReiserAdapter)),
        ("jfs", Box::new(JfsAdapter)),
    ]
}

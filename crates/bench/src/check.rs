//! The bench-regression gate: compare a directory of freshly produced
//! `BENCH_<group>.json` files against the committed baselines in
//! `results/baselines/` and fail on regressions beyond tolerance.
//!
//! ## What is compared
//!
//! For each result in each baseline group, one *headline metric* is
//! chosen, in priority order:
//!
//! 1. `sim_ns` — simulated disk-clock time. Deterministic (the device
//!    model's clock, not the host's), so it gets the **tight** tolerance.
//! 2. `units_per_s`, then `throughput_mb_per_s`, then `mean_ns` — all
//!    wall-clock figures. CI runs benches in `--smoke` mode (one
//!    untimed-warmup iteration) on shared runners, so these are noisy and
//!    get the **coarse** tolerance. They still catch order-of-magnitude
//!    cliffs: an accidentally quadratic path or a lost fast path.
//!
//! A result or whole group present in the baseline but missing from the
//! current run is a failure (a silently deleted bench is how a gate rots).
//! New benches with no baseline yet are reported but pass — committing
//! their baseline is the bench author's next step.
//!
//! ## Re-baselining
//!
//! Intentional perf changes re-baseline by copying the fresh files over
//! the committed ones (see `results/baselines/README.md`):
//!
//! ```text
//! ./ci.sh                                   # writes target/bench-smoke/
//! cp target/bench-smoke/BENCH_*.json results/baselines/
//! git add results/baselines && git commit
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::Path;

use iron_testkit::json::{self, Value};

/// Default allowed fractional regression for deterministic metrics.
pub const DEFAULT_TOLERANCE: f64 = 0.20;
/// Default allowed fractional regression for wall-clock metrics.
pub const DEFAULT_WALL_TOLERANCE: f64 = 2.0;

/// Which metric a comparison used, and how it is judged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Simulated disk-clock nanoseconds (lower is better, deterministic).
    SimNs,
    /// Work items per second (higher is better, wall clock).
    UnitsPerS,
    /// MiB per second (higher is better, wall clock).
    MbPerS,
    /// Mean nanoseconds per iteration (lower is better, wall clock).
    MeanNs,
}

impl Metric {
    fn key(self) -> &'static str {
        match self {
            Metric::SimNs => "sim_ns",
            Metric::UnitsPerS => "units_per_s",
            Metric::MbPerS => "throughput_mb_per_s",
            Metric::MeanNs => "mean_ns",
        }
    }

    fn lower_is_better(self) -> bool {
        matches!(self, Metric::SimNs | Metric::MeanNs)
    }

    fn is_wall_clock(self) -> bool {
        !matches!(self, Metric::SimNs)
    }
}

/// The outcome of one result-vs-baseline comparison.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Group the result belongs to.
    pub group: String,
    /// Result name within the group.
    pub name: String,
    /// Verdict.
    pub status: Status,
}

/// Per-result verdict.
#[derive(Clone, Debug, PartialEq)]
pub enum Status {
    /// Within tolerance (fractional change, signed: + is a regression).
    Ok {
        /// Metric compared.
        metric: Metric,
        /// Fractional regression (negative = improvement).
        regression: f64,
    },
    /// Beyond tolerance.
    Regressed {
        /// Metric compared.
        metric: Metric,
        /// Fractional regression.
        regression: f64,
        /// The tolerance it exceeded.
        tolerance: f64,
    },
    /// Present in the baseline, absent from the current run.
    Missing,
    /// Present in the current run, no baseline yet (passes).
    NewBench,
    /// Neither side carried a comparable metric.
    NoMetric,
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.status {
            Status::Ok { metric, regression } => write!(
                f,
                "ok       {}/{} {:+.1}% ({})",
                self.group,
                self.name,
                regression * 100.0,
                metric.key()
            ),
            Status::Regressed {
                metric,
                regression,
                tolerance,
            } => write!(
                f,
                "REGRESSED {}/{} {:+.1}% > {:.0}% allowed ({})",
                self.group,
                self.name,
                regression * 100.0,
                tolerance * 100.0,
                metric.key()
            ),
            Status::Missing => {
                write!(
                    f,
                    "MISSING  {}/{} (in baseline, not in run)",
                    self.group, self.name
                )
            }
            Status::NewBench => {
                write!(f, "new      {}/{} (no baseline yet)", self.group, self.name)
            }
            Status::NoMetric => {
                write!(
                    f,
                    "NO-METRIC {}/{} (nothing comparable)",
                    self.group, self.name
                )
            }
        }
    }
}

/// Gate configuration.
#[derive(Clone, Copy, Debug)]
pub struct CheckOptions {
    /// Allowed fractional regression for deterministic metrics.
    pub tolerance: f64,
    /// Allowed fractional regression for wall-clock metrics.
    pub wall_tolerance: f64,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            tolerance: DEFAULT_TOLERANCE,
            wall_tolerance: DEFAULT_WALL_TOLERANCE,
        }
    }
}

/// One parsed result row: name → metric values.
type ResultRow = BTreeMap<String, f64>;
/// One parsed group file: result name → row.
type Group = BTreeMap<String, ResultRow>;

fn parse_group(text: &str) -> Result<(String, Group), String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let group = doc
        .get("group")
        .and_then(Value::as_str)
        .ok_or("missing 'group' field")?
        .to_string();
    let mut out = Group::new();
    for r in doc
        .get("results")
        .and_then(Value::as_arr)
        .ok_or("missing 'results'")?
    {
        let name = r
            .get("name")
            .and_then(Value::as_str)
            .ok_or("result without 'name'")?
            .to_string();
        let mut row = ResultRow::new();
        for m in [
            Metric::SimNs,
            Metric::UnitsPerS,
            Metric::MbPerS,
            Metric::MeanNs,
        ] {
            if let Some(v) = r.get(m.key()).and_then(Value::as_f64) {
                row.insert(m.key().to_string(), v);
            }
        }
        out.insert(name, row);
    }
    Ok((group, out))
}

/// Load every `BENCH_*.json` in `dir` into `group name → results`.
pub fn load_dir(dir: &Path) -> Result<BTreeMap<String, Group>, String> {
    let mut out = BTreeMap::new();
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        let fname = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !fname.starts_with("BENCH_") || !fname.ends_with(".json") {
            continue;
        }
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let (group, results) =
            parse_group(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        out.insert(group, results);
    }
    Ok(out)
}

/// Pick the headline metric a baseline row is judged by.
fn headline(row: &ResultRow) -> Option<Metric> {
    [
        Metric::SimNs,
        Metric::UnitsPerS,
        Metric::MbPerS,
        Metric::MeanNs,
    ]
    .into_iter()
    .find(|m| row.contains_key(m.key()))
}

fn compare_row(base: &ResultRow, cur: &ResultRow, opts: &CheckOptions) -> Status {
    let Some(metric) = headline(base) else {
        return Status::NoMetric;
    };
    let b = base[metric.key()];
    let Some(&c) = cur.get(metric.key()) else {
        // The metric disappeared (e.g. a bench stopped declaring units):
        // nothing comparable.
        return Status::NoMetric;
    };
    if b <= 0.0 {
        // A zero baseline is a meaningful claim for deterministic metrics
        // (e.g. sim_ns 0 = "this path does no disk I/O at all"); any
        // nonzero current value is an infinite regression. Zero wall-clock
        // baselines are junk data — nothing to compare.
        return match (metric.is_wall_clock(), c <= 0.0) {
            (true, _) => Status::NoMetric,
            (false, true) => Status::Ok {
                metric,
                regression: 0.0,
            },
            (false, false) => Status::Regressed {
                metric,
                regression: f64::INFINITY,
                tolerance: opts.tolerance,
            },
        };
    }
    // Signed fractional slowdown relative to baseline: +1.0 means "twice
    // as slow" (or half the throughput), negative means improvement. The
    // ratio form keeps one scale across lower-is-better and
    // higher-is-better metrics, so tolerances above 1.0 stay meaningful
    // for throughput.
    let regression = if metric.lower_is_better() {
        c / b - 1.0
    } else if c > 0.0 {
        b / c - 1.0
    } else {
        f64::INFINITY // throughput collapsed to zero
    };
    let tolerance = if metric.is_wall_clock() {
        opts.wall_tolerance
    } else {
        opts.tolerance
    };
    if regression > tolerance {
        Status::Regressed {
            metric,
            regression,
            tolerance,
        }
    } else {
        Status::Ok { metric, regression }
    }
}

/// Compare every baseline group/result against the current run.
///
/// Returns all comparisons (for reporting); the gate fails if
/// [`has_failures`] is true over them.
pub fn compare(
    baseline: &BTreeMap<String, Group>,
    current: &BTreeMap<String, Group>,
    opts: &CheckOptions,
) -> Vec<Comparison> {
    let mut out = Vec::new();
    for (gname, base_results) in baseline {
        match current.get(gname) {
            None => {
                // The whole group vanished from the run.
                for name in base_results.keys() {
                    out.push(Comparison {
                        group: gname.clone(),
                        name: name.clone(),
                        status: Status::Missing,
                    });
                }
            }
            Some(cur_results) => {
                for (name, base_row) in base_results {
                    let status = match cur_results.get(name) {
                        None => Status::Missing,
                        Some(cur_row) => compare_row(base_row, cur_row, opts),
                    };
                    out.push(Comparison {
                        group: gname.clone(),
                        name: name.clone(),
                        status,
                    });
                }
            }
        }
    }
    // Benches with no baseline yet: visible, but not failures.
    for (gname, cur_results) in current {
        for name in cur_results.keys() {
            let known = baseline.get(gname).is_some_and(|g| g.contains_key(name));
            if !known {
                out.push(Comparison {
                    group: gname.clone(),
                    name: name.clone(),
                    status: Status::NewBench,
                });
            }
        }
    }
    out
}

/// True if any comparison should fail the gate.
pub fn has_failures(comparisons: &[Comparison]) -> bool {
    comparisons
        .iter()
        .any(|c| matches!(c.status, Status::Regressed { .. } | Status::Missing))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(pairs: &[(&str, f64)]) -> ResultRow {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn groups(entries: &[(&str, &str, ResultRow)]) -> BTreeMap<String, Group> {
        let mut out: BTreeMap<String, Group> = BTreeMap::new();
        for (g, n, r) in entries {
            out.entry(g.to_string())
                .or_default()
                .insert(n.to_string(), r.clone());
        }
        out
    }

    #[test]
    fn sim_ns_outranks_wall_metrics_and_gates_tightly() {
        let base = groups(&[("g", "a", row(&[("sim_ns", 100.0), ("mean_ns", 10.0)]))]);
        // mean_ns got 100x worse, but sim_ns (the headline) is within 20%.
        let cur = groups(&[("g", "a", row(&[("sim_ns", 115.0), ("mean_ns", 1000.0)]))]);
        let cs = compare(&base, &cur, &CheckOptions::default());
        assert!(
            matches!(
                cs[0].status,
                Status::Ok {
                    metric: Metric::SimNs,
                    ..
                }
            ),
            "{:?}",
            cs
        );
        // But a 25% sim_ns regression fails.
        let cur = groups(&[("g", "a", row(&[("sim_ns", 125.0), ("mean_ns", 10.0)]))]);
        let cs = compare(&base, &cur, &CheckOptions::default());
        assert!(has_failures(&cs), "{:?}", cs);
    }

    #[test]
    fn wall_clock_gets_the_coarse_tolerance() {
        let base = groups(&[("g", "a", row(&[("units_per_s", 1000.0)]))]);
        // Half the throughput: noisy but under the 200% allowance.
        let cur = groups(&[("g", "a", row(&[("units_per_s", 500.0)]))]);
        assert!(!has_failures(&compare(
            &base,
            &cur,
            &CheckOptions::default()
        )));
        // A 100x cliff fails even with the coarse tolerance.
        let cur = groups(&[("g", "a", row(&[("units_per_s", 10.0)]))]);
        assert!(has_failures(&compare(
            &base,
            &cur,
            &CheckOptions::default()
        )));
    }

    #[test]
    fn improvements_never_fail() {
        let base = groups(&[("g", "a", row(&[("sim_ns", 100.0)]))]);
        let cur = groups(&[("g", "a", row(&[("sim_ns", 1.0)]))]);
        let cs = compare(&base, &cur, &CheckOptions::default());
        assert!(!has_failures(&cs));
        let Status::Ok { regression, .. } = cs[0].status else {
            panic!("{:?}", cs)
        };
        assert!(regression < 0.0, "improvement must be negative regression");
    }

    #[test]
    fn missing_result_or_group_fails() {
        let base = groups(&[
            ("g", "a", row(&[("mean_ns", 10.0)])),
            ("h", "b", row(&[("mean_ns", 10.0)])),
        ]);
        let cur = groups(&[("g", "other", row(&[("mean_ns", 10.0)]))]);
        let cs = compare(&base, &cur, &CheckOptions::default());
        assert!(has_failures(&cs));
        let missing: Vec<_> = cs
            .iter()
            .filter(|c| c.status == Status::Missing)
            .map(|c| format!("{}/{}", c.group, c.name))
            .collect();
        assert_eq!(missing, ["g/a", "h/b"]);
    }

    #[test]
    fn new_benches_pass_but_are_reported() {
        let base = BTreeMap::new();
        let cur = groups(&[("g", "a", row(&[("mean_ns", 10.0)]))]);
        let cs = compare(&base, &cur, &CheckOptions::default());
        assert!(!has_failures(&cs));
        assert_eq!(cs[0].status, Status::NewBench);
    }

    #[test]
    fn zero_sim_ns_baseline_means_stay_zero() {
        let base = groups(&[("g", "a", row(&[("sim_ns", 0.0), ("mean_ns", 10.0)]))]);
        let same = groups(&[("g", "a", row(&[("sim_ns", 0.0), ("mean_ns", 99.0)]))]);
        assert!(!has_failures(&compare(
            &base,
            &same,
            &CheckOptions::default()
        )));
        // Disk I/O appearing on a path that did none is always a failure.
        let worse = groups(&[("g", "a", row(&[("sim_ns", 1.0), ("mean_ns", 10.0)]))]);
        assert!(has_failures(&compare(
            &base,
            &worse,
            &CheckOptions::default()
        )));
    }

    #[test]
    fn parses_real_bench_output() {
        let text = r#"{"group": "serve", "smoke": true, "results": [
            {"name": "t1", "iters_per_sample": 1, "samples": 1,
             "mean_ns": 5000.0, "min_ns": 5000.0, "max_ns": 5000.0,
             "throughput_mb_per_s": null, "units_per_iter": 1024,
             "units_per_s": 204800.0, "sim_ns": null}]}"#;
        let (group, results) = parse_group(text).unwrap();
        assert_eq!(group, "serve");
        assert_eq!(headline(&results["t1"]), Some(Metric::UnitsPerS));
    }
}

//! The §6.2 space-overhead analysis.
//!
//! "To evaluate space overhead, we measured a number of local file systems
//! and computed the increase in space required if all metadata was
//! replicated, room for checksums was included, and an extra block for
//! parity was allocated. Overall, we found that the space overhead of
//! checksumming and metadata replication is small, in the 3% to 10% range
//! … parity-block overhead … in the range of 3% to 17% depending on the
//! volume analyzed."
//!
//! We generate volume profiles with file-size distributions modeled on
//! measured desktop volumes (many small files, a heavy tail of large ones
//! — Douceur & Bolosky's study, the paper's citation \[18\] for free-space
//! availability), then compute the same three overheads from the ext3
//! layout's geometry.

use iron_core::BLOCK_SIZE;
use iron_ext3::inode::{NDIRECT, PTRS_PER_BLOCK};
use iron_ext3::layout::INODE_SIZE;

/// A synthetic volume: a named file-size population.
#[derive(Clone, Debug)]
pub struct VolumeProfile {
    /// Display name.
    pub name: &'static str,
    /// Sizes of every file on the volume, bytes.
    pub file_sizes: Vec<u64>,
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Approximate lognormal via the product of uniform draws.
    fn lognormalish(&mut self, median: f64, spread: f64) -> u64 {
        let mut x = median;
        for _ in 0..4 {
            let u = (self.next() % 10_000) as f64 / 10_000.0; // [0,1)
            x *= spread.powf(u - 0.5);
        }
        x.max(1.0) as u64
    }
}

impl VolumeProfile {
    /// A desktop-style volume: thousands of small files (median ~4 KiB),
    /// long tail into megabytes. Parity overhead is highest here.
    pub fn desktop() -> Self {
        let mut rng = Rng(11);
        VolumeProfile {
            name: "desktop",
            file_sizes: (0..8000).map(|_| rng.lognormalish(4096.0, 64.0)).collect(),
        }
    }

    /// A developer volume: source trees (small-medium files) plus build
    /// artifacts.
    pub fn developer() -> Self {
        let mut rng = Rng(23);
        VolumeProfile {
            name: "developer",
            file_sizes: (0..6000)
                .map(|_| rng.lognormalish(16_384.0, 32.0))
                .collect(),
        }
    }

    /// A media volume: few, large files. Parity overhead is lowest here.
    pub fn media() -> Self {
        let mut rng = Rng(37);
        VolumeProfile {
            name: "media",
            file_sizes: (0..800)
                .map(|_| rng.lognormalish(400_000.0, 16.0))
                .collect(),
        }
    }

    /// All built-in profiles.
    pub fn all() -> Vec<VolumeProfile> {
        vec![Self::desktop(), Self::developer(), Self::media()]
    }
}

/// Space-overhead percentages relative to the volume's user data.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpaceOverheads {
    /// Total user data bytes on the volume.
    pub data_bytes: u64,
    /// Metadata bytes (inodes + indirect blocks + directory estimate +
    /// static structures), as a % of data.
    pub metadata_pct: f64,
    /// Checksum table (8 bytes per block, data and metadata), %.
    pub checksum_pct: f64,
    /// Metadata replication (one extra copy of all metadata), %.
    pub replication_pct: f64,
    /// Per-file parity block, %.
    pub parity_pct: f64,
}

/// Compute the §6.2 overheads for a profile under the ext3/ixt3 layout.
pub fn analyze_profile(profile: &VolumeProfile) -> SpaceOverheads {
    let bs = BLOCK_SIZE as u64;
    let mut data_blocks = 0u64;
    let mut indirect_blocks = 0u64;
    for &size in &profile.file_sizes {
        let blocks = size.div_ceil(bs);
        data_blocks += blocks;
        // Indirect tree cost, as in the ext3 model.
        if blocks > NDIRECT as u64 {
            indirect_blocks += 1; // single indirect
            let beyond = blocks.saturating_sub((NDIRECT + PTRS_PER_BLOCK) as u64);
            if beyond > 0 {
                indirect_blocks += 1 + beyond.div_ceil(PTRS_PER_BLOCK as u64);
            }
        }
    }
    let nfiles = profile.file_sizes.len() as u64;
    let inode_bytes = nfiles * INODE_SIZE as u64;
    // Directory estimate: ~32 bytes of entry per file, one block minimum
    // per ~100 files of directory structure.
    let dir_bytes = (nfiles * 32).max(bs);
    // Static structures (bitmaps ~ 1 bit/block ⇒ /8/bs fraction, tables).
    let bitmap_bytes = data_blocks.div_ceil(8);
    let metadata_bytes = inode_bytes + indirect_blocks * bs + dir_bytes + bitmap_bytes + 16 * bs;

    let data_bytes = data_blocks * bs;
    let checksum_bytes = (data_blocks + metadata_bytes.div_ceil(bs)) * 8;
    let parity_bytes = nfiles * bs;

    let pct = |x: u64| 100.0 * x as f64 / data_bytes as f64;
    SpaceOverheads {
        data_bytes,
        metadata_pct: pct(metadata_bytes),
        checksum_pct: pct(checksum_bytes),
        replication_pct: pct(metadata_bytes),
        parity_pct: pct(parity_bytes),
    }
}

/// Render the space-overhead report for a set of profiles.
pub fn render_report(profiles: &[VolumeProfile]) -> String {
    let mut out = String::from("Space overheads (percent of user data), per volume profile\n");
    out.push_str(&format!(
        "{:<12} {:>10} {:>10} {:>12} {:>12} {:>10}\n",
        "volume", "data(MB)", "metadata%", "checksum%", "replication%", "parity%"
    ));
    for p in profiles {
        let r = analyze_profile(p);
        out.push_str(&format!(
            "{:<12} {:>10.1} {:>10.2} {:>12.2} {:>12.2} {:>10.2}\n",
            p.name,
            r.data_bytes as f64 / 1e6,
            r.metadata_pct,
            r.checksum_pct,
            r.replication_pct,
            r.parity_pct
        ));
    }
    out.push_str(
        "\nPaper (§6.2): checksumming + metadata replication small (3–10%);\n\
         parity 3–17% depending on the volume analyzed.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_overhead_tracks_mean_file_size() {
        let desktop = analyze_profile(&VolumeProfile::desktop());
        let media = analyze_profile(&VolumeProfile::media());
        assert!(
            desktop.parity_pct > media.parity_pct,
            "small files ⇒ higher parity overhead ({:.2}% vs {:.2}%)",
            desktop.parity_pct,
            media.parity_pct
        );
    }

    #[test]
    fn overheads_land_in_paper_ranges() {
        for p in VolumeProfile::all() {
            let r = analyze_profile(&p);
            let meta_plus_cksum = r.replication_pct + r.checksum_pct;
            assert!(
                (0.3..=12.0).contains(&meta_plus_cksum),
                "{}: replication+checksum {meta_plus_cksum:.2}% outside a plausible band",
                p.name
            );
            assert!(
                (0.2..=25.0).contains(&r.parity_pct),
                "{}: parity {:.2}% outside a plausible band",
                p.name,
                r.parity_pct
            );
        }
        // The desktop profile specifically should be in the paper's upper
        // parity band.
        let desktop = analyze_profile(&VolumeProfile::desktop());
        assert!(
            desktop.parity_pct > 3.0,
            "desktop parity {:.2}% should exceed 3%",
            desktop.parity_pct
        );
    }

    #[test]
    fn profiles_are_deterministic() {
        assert_eq!(
            analyze_profile(&VolumeProfile::desktop()),
            analyze_profile(&VolumeProfile::desktop())
        );
    }

    #[test]
    fn report_renders_every_profile() {
        let text = render_report(&VolumeProfile::all());
        assert!(text.contains("desktop"));
        assert!(text.contains("developer"));
        assert!(text.contains("media"));
    }
}

//! # iron-workloads
//!
//! The paper's performance study (§6.2, Table 6) measured four standard
//! benchmarks over every ixt3 variant: **SSH-Build** (unpack, configure,
//! compile), a read-intensive **web server**, the metadata-intensive
//! **PostMark**, and the synchronous, transactional **TPC-B**. This crate
//! implements workload generators issuing the same *kinds* of file-system
//! traffic, measured in simulated time on the `iron-blockdev` disk model.
//!
//! Absolute times cannot match the paper's hardware; Table 6 is normalized
//! to stock ext3 = 1.00, so what must (and does) reproduce is the *shape*:
//!
//! * SSH-Build and the web server show little overhead for any variant;
//! * PostMark and TPC-B pay noticeably for metadata replication (`Mr`,
//!   distant-mirror seeks) and data checksumming (`Dc`);
//! * transactional checksums (`Tc`) *speed up* TPC-B by removing the
//!   pre-commit rotational barrier.
//!
//! [`space`] implements the §6.2 space-overhead analysis over several
//! volume profiles.
//!
//! [`crashgen`] surfaces the ACE-style bounded crash-workload generator:
//! where the Table-6 generators ask *"how fast?"*, the crash generator
//! asks *"which op sequences?"* — every length-2/length-3 sequence over a
//! tiny namespace, sync placement varied, pruned by legality and name
//! isomorphism, feeding `iron-crash`'s enumeration campaigns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod space;

/// ACE-style bounded workload generation for the crash enumerator
/// (re-exported from `iron_crash::gen` — the generator lives beside the
/// shadow model whose legality rules it prunes against).
pub mod crashgen {
    pub use iron_crash::gen::{
        find_generated, generate_workloads, op_instances, GenOptions, SyncPlacement, GEN_CONTENT,
        GEN_DIRS, GEN_EXTEND, GEN_FILES, GEN_SHRINK,
    };
    pub use iron_crash::workload::{CrashOp, CrashPath, CrashWorkload};
}

pub use bench::{run_benchmark, table6, Benchmark, Table6Row};
pub use space::{analyze_profile, VolumeProfile};

//! The four Table 6 macro-benchmarks, measured in simulated time.

use iron_blockdev::{DiskGeometry, MemDisk};
use iron_core::{SimClock, BLOCK_SIZE};
use iron_ext3::{Ext3Fs, Ext3Options, Ext3Params, IronConfig};
use iron_vfs::{FsEnv, OpenFlags, Vfs};

/// The benchmarks of Table 6.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Benchmark {
    /// Unpack, configure, and build a source tree (the paper's 11 MB SSH
    /// distribution).
    SshBuild,
    /// Read-intensive static web serving (25 MB transferred).
    WebServer,
    /// Metadata-intensive mail-server emulation (create/delete/read/append
    /// transactions over many small files).
    PostMark,
    /// Synchronous debit-credit transactions against a small database.
    TpcB,
}

impl Benchmark {
    /// All four, in Table 6 column order.
    pub const ALL: [Benchmark; 4] = [
        Benchmark::SshBuild,
        Benchmark::WebServer,
        Benchmark::PostMark,
        Benchmark::TpcB,
    ];

    /// Table 6 column label.
    pub fn label(&self) -> &'static str {
        match self {
            Benchmark::SshBuild => "SSH",
            Benchmark::WebServer => "Web",
            Benchmark::PostMark => "Post",
            Benchmark::TpcB => "TPCB",
        }
    }
}

/// Deterministic xorshift64* RNG for workload generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = Rng(seed | 1);
    (0..len).map(|_| (rng.next() & 0xFF) as u8).collect()
}

type Fs = Ext3Fs<MemDisk>;

fn setup(iron: IronConfig) -> (Vfs<Fs>, SimClock) {
    let clock = SimClock::new();
    let dev = MemDisk::new(32 * 1024, DiskGeometry::ata_7200rpm(), clock.clone());
    let params = Ext3Params {
        mirror_metadata: iron.meta_replication,
        ..Ext3Params::medium()
    };
    let opts = Ext3Options {
        iron,
        cpu_clock: Some(clock.clone()),
        // The paper's testbed has 1 GB of RAM against ~25 MB working sets:
        // effectively everything stays in the page cache after first touch.
        cache_blocks: 32 * 1024,
        ..Default::default()
    };
    let fs = Ext3Fs::format_and_mount(dev, FsEnv::new(), params, opts).expect("bench mount");
    (Vfs::new(fs), clock)
}

fn ssh_build(v: &mut Vfs<Fs>, clock: &SimClock) {
    // Compilation is CPU-bound: ~250 ms of simulated compute per source
    // file (the paper's SSH-Build spends most of its 118 s in the
    // compiler, which is exactly why Table 6's SSH column shows little
    // I/O-induced overhead).
    const COMPILE_NS: u64 = 250_000_000;
    // Phase 1 — unpack: a source tree of ~200 files in ~25 directories,
    // ~11 MB total (the tar'd SSH source of the paper).
    let mut rng = Rng(0xBEEF);
    v.mkdir("/ssh", 0o755).unwrap();
    let mut files = Vec::new();
    for d in 0..25 {
        let dir = format!("/ssh/dir{d}");
        v.mkdir(&dir, 0o755).unwrap();
        for f in 0..8 {
            let path = format!("{dir}/src{f}.c");
            let size = 20_000 + rng.below(80_000) as usize;
            v.write_file(&path, &payload(size, rng.next())).unwrap();
            files.push((path, size));
        }
    }
    v.sync().unwrap();
    // Phase 2 — configure: stat + read small prefixes, write small outputs.
    for (path, _) in files.iter().take(60) {
        let _ = v.stat(path).unwrap();
        let fd = v.open(path, OpenFlags::rdonly()).unwrap();
        let _ = v.read(fd, 4096).unwrap();
        v.close(fd).unwrap();
    }
    v.write_file("/ssh/config.h", &payload(8_000, 7)).unwrap();
    v.write_file("/ssh/Makefile.out", &payload(4_000, 8))
        .unwrap();
    // Phase 3 — build: read each source, compile (CPU), write an object
    // file (~40% of source size).
    for (i, (path, size)) in files.iter().enumerate() {
        let _ = v.read_file(path).unwrap();
        clock.advance_ns(COMPILE_NS);
        let obj = format!("/ssh/dir{}/obj{}.o", i % 25, i);
        v.write_file(&obj, &payload(size * 2 / 5, i as u64))
            .unwrap();
    }
    // Link.
    let _ = v.read_file("/ssh/dir0/obj0.o").unwrap();
    v.write_file("/ssh/sshd", &payload(1_500_000, 99)).unwrap();
    v.sync().unwrap();
}

fn web_server(v: &mut Vfs<Fs>, clock: &SimClock) {
    // Serving is network/CPU-bound per request (the paper's web benchmark
    // moves 25 MB over HTTP in ~53 s): charge ~20 ms of request handling
    // per GET.
    const REQUEST_NS: u64 = 20_000_000;
    // Site content: 100 pages, 4–64 KiB (setup is part of the run, as the
    // paper's transfer dominates anyway).
    let mut rng = Rng(0xCAFE);
    v.mkdir("/www", 0o755).unwrap();
    let mut sizes = Vec::new();
    for p in 0..100 {
        let size = 4_096 + rng.below(60_000) as usize;
        v.write_file(&format!("/www/page{p}.html"), &payload(size, p as u64))
            .unwrap();
        sizes.push(size);
    }
    v.sync().unwrap();
    // Serve ~25 MB with a popularity skew (hot pages cached).
    let mut served = 0usize;
    while served < 25 * 1024 * 1024 {
        let p = if rng.below(100) < 80 {
            rng.below(10) // hot set
        } else {
            rng.below(100)
        } as usize;
        let data = v.read_file(&format!("/www/page{p}.html")).unwrap();
        clock.advance_ns(REQUEST_NS);
        served += data.len();
    }
}

fn postmark(v: &mut Vfs<Fs>) {
    // 10 subdirectories, 300 initial files of 4–64 KiB, 800 transactions
    // (scaled from the paper's parameters to the simulated disk).
    let mut rng = Rng(0xD00D);
    let mut files: Vec<String> = Vec::new();
    for d in 0..10 {
        v.mkdir(&format!("/pm{d}"), 0o755).unwrap();
    }
    let mut serial = 0u64;
    let mut create = |v: &mut Vfs<Fs>, rng: &mut Rng, files: &mut Vec<String>| {
        let d = rng.below(10);
        serial += 1;
        let path = format!("/pm{d}/file{serial}");
        let size = 4_096 + rng.below(60_000) as usize;
        v.write_file(&path, &payload(size, serial)).unwrap();
        files.push(path);
    };
    for _ in 0..300 {
        create(v, &mut rng, &mut files);
    }
    for _ in 0..800 {
        match rng.below(4) {
            0 => create(v, &mut rng, &mut files),
            1 => {
                // Delete.
                if files.len() > 50 {
                    let i = rng.below(files.len() as u64) as usize;
                    let path = files.swap_remove(i);
                    v.unlink(&path).unwrap();
                }
            }
            2 => {
                // Read.
                let i = rng.below(files.len() as u64) as usize;
                let _ = v.read_file(&files[i]).unwrap();
            }
            _ => {
                // Append.
                let i = rng.below(files.len() as u64) as usize;
                let fd = v
                    .open(
                        &files[i],
                        OpenFlags {
                            write: true,
                            append: true,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                v.write(fd, &payload(4_096, i as u64)).unwrap();
                v.close(fd).unwrap();
            }
        }
    }
    v.sync().unwrap();
}

fn tpc_b(v: &mut Vfs<Fs>, clock: &SimClock) {
    // A 4 MiB account "database", a branch file, and an append-only
    // history; 1000 randomly generated debit-credit transactions, each
    // synchronously committed (the paper's TPC-B is fsync-bound).
    let mut rng = Rng(0xACC7);
    let db_pages = 1024u64; // 4 MiB
    v.write_file("/accounts.db", &payload(db_pages as usize * BLOCK_SIZE, 1))
        .unwrap();
    v.write_file("/branches.db", &payload(16 * BLOCK_SIZE, 2))
        .unwrap();
    v.write_file("/history.log", b"").unwrap();
    v.sync().unwrap();
    let adb = v.open("/accounts.db", OpenFlags::rdwr()).unwrap();
    let bdb = v.open("/branches.db", OpenFlags::rdwr()).unwrap();
    let hist = v
        .open(
            "/history.log",
            OpenFlags {
                write: true,
                append: true,
                ..Default::default()
            },
        )
        .unwrap();
    for txn in 0..1000u64 {
        let page = rng.below(db_pages);
        let off = page * BLOCK_SIZE as u64;
        let mut rec = v.pread(adb, off, BLOCK_SIZE).unwrap();
        rec[..8].copy_from_slice(&txn.to_le_bytes());
        v.pwrite(adb, off, &rec).unwrap();
        let boff = rng.below(16) * BLOCK_SIZE as u64;
        let mut brec = v.pread(bdb, boff, 64).unwrap();
        brec[..8].copy_from_slice(&txn.to_le_bytes());
        v.pwrite(bdb, boff, &brec).unwrap();
        v.write(hist, &payload(100, txn)).unwrap();
        // Transaction compute (debit/credit bookkeeping).
        clock.advance_ns(500_000);
        // Durability point: commit the transaction.
        v.fsync(hist).unwrap();
    }
    v.close(adb).unwrap();
    v.close(bdb).unwrap();
    v.close(hist).unwrap();
}

/// Like [`run_benchmark`] but also returns the device statistics
/// (diagnostics and the ablation benches).
pub fn run_benchmark_with_stats(
    bench: Benchmark,
    iron: IronConfig,
) -> (u64, iron_blockdev::memdisk::DiskStats) {
    let (mut v, clock) = setup(iron);
    let start = clock.now_ns();
    match bench {
        Benchmark::SshBuild => ssh_build(&mut v, &clock),
        Benchmark::WebServer => web_server(&mut v, &clock),
        Benchmark::PostMark => postmark(&mut v),
        Benchmark::TpcB => tpc_b(&mut v, &clock),
    }
    v.umount().expect("bench unmount");
    let elapsed = clock.now_ns() - start;
    let stats = v.into_fs().into_device().stats();
    (elapsed, stats)
}

/// Run one benchmark under one IRON configuration; returns simulated
/// nanoseconds elapsed over the workload (excluding mkfs/mount).
pub fn run_benchmark(bench: Benchmark, iron: IronConfig) -> u64 {
    let (mut v, clock) = setup(iron);
    let start = clock.now_ns();
    match bench {
        Benchmark::SshBuild => ssh_build(&mut v, &clock),
        Benchmark::WebServer => web_server(&mut v, &clock),
        Benchmark::PostMark => postmark(&mut v),
        Benchmark::TpcB => tpc_b(&mut v, &clock),
    }
    v.umount().expect("bench unmount");
    clock.now_ns() - start
}

/// One Table 6 row: an IRON variant and its normalized runtimes.
#[derive(Clone, Debug)]
pub struct Table6Row {
    /// Row number (0 = baseline ext3).
    pub index: usize,
    /// The variant.
    pub config: IronConfig,
    /// Normalized runtime per benchmark (vs. row 0).
    pub normalized: Vec<f64>,
}

/// Regenerate Table 6: all 32 variants × the four benchmarks, normalized
/// to stock ext3 (with bugs fixed — ixt3's baseline engine).
///
/// `configs` restricts rows (pass `IronConfig::all_combinations()` for the
/// full table).
pub fn table6(configs: &[IronConfig], benches: &[Benchmark]) -> Vec<Table6Row> {
    let baseline: Vec<u64> = benches
        .iter()
        .map(|b| {
            run_benchmark(
                *b,
                IronConfig {
                    fix_bugs: true,
                    ..IronConfig::off()
                },
            )
        })
        .collect();
    configs
        .iter()
        .enumerate()
        .map(|(index, &config)| {
            let normalized = benches
                .iter()
                .zip(&baseline)
                .map(|(b, base)| run_benchmark(*b, config) as f64 / *base as f64)
                .collect();
            Table6Row {
                index,
                config,
                normalized,
            }
        })
        .collect()
}

/// Render Table 6 rows in the paper's format (slowdowns > 10% would be
/// bold in print; speedups are bracketed).
pub fn render_table6(rows: &[Table6Row], benches: &[Benchmark]) -> String {
    let mut out = String::from("Table 6: Overheads of ixt3 File System Variants\n");
    out.push_str(&format!("{:<4} {:<16}", "#", "Variant"));
    for b in benches {
        out.push_str(&format!("{:>8}", b.label()));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:<4} {:<16}", row.index, row.config.label()));
        for v in &row.normalized {
            if *v < 0.995 {
                out.push_str(&format!("  [{v:.2}]"));
            } else {
                out.push_str(&format!("{v:>8.2}"));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmarks_complete_and_consume_time() {
        for b in Benchmark::ALL {
            let ns = run_benchmark(b, IronConfig::off());
            assert!(ns > 1_000_000, "{b:?} must take visible simulated time");
        }
    }

    #[test]
    fn benchmarks_are_deterministic() {
        let a = run_benchmark(Benchmark::PostMark, IronConfig::off());
        let b = run_benchmark(Benchmark::PostMark, IronConfig::off());
        assert_eq!(a, b);
    }

    #[test]
    fn web_server_is_insensitive_to_iron() {
        // Table 6: the web column is 1.00 for essentially every variant.
        let base = run_benchmark(
            Benchmark::WebServer,
            IronConfig {
                fix_bugs: true,
                ..IronConfig::off()
            },
        );
        let full = run_benchmark(Benchmark::WebServer, IronConfig::full());
        let ratio = full as f64 / base as f64;
        assert!(
            (0.95..1.10).contains(&ratio),
            "web ratio {ratio:.3} should be ~1.00"
        );
    }

    #[test]
    fn transactional_checksums_speed_up_tpcb() {
        // Table 6 row 5: Tc alone gives ~0.80 on TPC-B.
        let base = run_benchmark(
            Benchmark::TpcB,
            IronConfig {
                fix_bugs: true,
                ..IronConfig::off()
            },
        );
        let tc = run_benchmark(
            Benchmark::TpcB,
            IronConfig {
                txn_checksum: true,
                fix_bugs: true,
                ..IronConfig::off()
            },
        );
        let ratio = tc as f64 / base as f64;
        assert!(
            ratio < 0.95,
            "Tc must speed TPC-B up (got ratio {ratio:.3})"
        );
        assert!(ratio > 0.6, "speedup should be moderate (got {ratio:.3})");
    }

    #[test]
    fn metadata_replication_costs_on_postmark() {
        // Table 6 row 2: Mr alone costs ~18% on PostMark.
        let base = run_benchmark(
            Benchmark::PostMark,
            IronConfig {
                fix_bugs: true,
                ..IronConfig::off()
            },
        );
        let mr = run_benchmark(
            Benchmark::PostMark,
            IronConfig {
                meta_replication: true,
                fix_bugs: true,
                ..IronConfig::off()
            },
        );
        let ratio = mr as f64 / base as f64;
        assert!(ratio > 1.03, "Mr must cost on PostMark (got {ratio:.3})");
        assert!(ratio < 1.8, "but not absurdly (got {ratio:.3})");
    }
}

//! A tiny in-memory [`Checkable`]/[`Repairable`] file system for unit
//! tests — no on-disk format, just the maps the trait exposes. Lets the
//! engine and repair tests cover every issue class, thread width, and
//! rollback path without depending on a real file-system crate.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::check::{Checkable, ChildEntry, FileKind, InodeSummary, SuperblockReport};
use crate::repair::{RepairFix, Repairable};

pub(crate) struct MockFs {
    pub device_blocks: u64,
    pub total_inodes: u64,
    pub root: u64,
    /// Allocated inode slots; absent = free.
    pub inodes: BTreeMap<u64, InodeSummary>,
    pub dirs: BTreeMap<u64, Vec<ChildEntry>>,
    pub refs: BTreeMap<u64, Vec<u64>>,
    pub block_bitmap: BTreeSet<u64>,
    pub inode_bitmap: BTreeSet<u64>,
    pub regions: Vec<Range<u64>>,
    pub sb: SuperblockReport,
    /// Fail the nth (1-based) `apply_fix` call, for rollback tests.
    pub fail_on_apply: Option<usize>,
    applies: usize,
    pub geometry: BTreeMap<&'static str, u64>,
}

impl MockFs {
    pub fn entry(name: &str, ino: u64) -> ChildEntry {
        ChildEntry {
            name: name.to_string(),
            ino,
        }
    }

    fn used(free: bool, kind: FileKind, links: u32) -> InodeSummary {
        InodeSummary {
            free,
            kind: Some(kind),
            links,
        }
    }

    /// root(2){ a(3), d(4){ b(5) } } — fully consistent.
    pub fn healthy() -> MockFs {
        let mut fs = MockFs {
            device_blocks: 256,
            total_inodes: 16,
            root: 2,
            inodes: BTreeMap::new(),
            dirs: BTreeMap::new(),
            refs: BTreeMap::new(),
            block_bitmap: BTreeSet::new(),
            inode_bitmap: BTreeSet::new(),
            regions: Vec::new(),
            sb: SuperblockReport::default(),
            fail_on_apply: None,
            applies: 0,
            geometry: BTreeMap::from([("total_blocks", 256), ("journal_blocks", 8)]),
        };
        fs.regions.push(100..200);
        fs.inodes
            .insert(2, Self::used(false, FileKind::Directory, 3));
        fs.inodes.insert(3, Self::used(false, FileKind::Other, 1));
        fs.inodes
            .insert(4, Self::used(false, FileKind::Directory, 2));
        fs.inodes.insert(5, Self::used(false, FileKind::Other, 1));
        fs.dirs.insert(
            2,
            vec![
                Self::entry(".", 2),
                Self::entry("..", 2),
                Self::entry("a", 3),
                Self::entry("d", 4),
            ],
        );
        fs.dirs.insert(
            4,
            vec![
                Self::entry(".", 4),
                Self::entry("..", 2),
                Self::entry("b", 5),
            ],
        );
        fs.refs.insert(2, vec![100]);
        fs.refs.insert(3, vec![101, 102]);
        fs.refs.insert(4, vec![103]);
        fs.refs.insert(5, vec![104]);
        fs.block_bitmap = BTreeSet::from([100, 101, 102, 103, 104]);
        fs.inode_bitmap = BTreeSet::from([2, 3, 4, 5]);
        fs
    }

    /// root(2){ d(3), f0..f(n-1) } with even-numbered files in the root
    /// and odd-numbered ones in `d` — enough inodes and blocks that the
    /// sharded passes genuinely chunk.
    pub fn wide(n: u64) -> MockFs {
        let mut fs = MockFs {
            device_blocks: 4096,
            total_inodes: 1024,
            root: 2,
            inodes: BTreeMap::new(),
            dirs: BTreeMap::new(),
            refs: BTreeMap::new(),
            block_bitmap: BTreeSet::new(),
            inode_bitmap: BTreeSet::new(),
            regions: Vec::new(),
            sb: SuperblockReport::default(),
            fail_on_apply: None,
            applies: 0,
            geometry: BTreeMap::from([("total_blocks", 4096), ("journal_blocks", 64)]),
        };
        fs.regions.push(900..1800);
        fs.inodes
            .insert(2, Self::used(false, FileKind::Directory, 3));
        fs.inodes
            .insert(3, Self::used(false, FileKind::Directory, 2));
        let mut root_entries = vec![
            Self::entry(".", 2),
            Self::entry("..", 2),
            Self::entry("d", 3),
        ];
        let mut d_entries = vec![Self::entry(".", 3), Self::entry("..", 2)];
        fs.refs.insert(2, vec![900]);
        fs.refs.insert(3, vec![901]);
        for i in 0..n {
            let ino = 4 + i;
            fs.inodes.insert(ino, Self::used(false, FileKind::Other, 1));
            let name = format!("f{i}");
            if i % 2 == 0 {
                root_entries.push(Self::entry(&name, ino));
            } else {
                d_entries.push(Self::entry(&name, ino));
            }
            fs.refs.insert(ino, vec![1000 + i]);
        }
        fs.dirs.insert(2, root_entries);
        fs.dirs.insert(3, d_entries);
        fs.block_bitmap = fs.refs.values().flatten().copied().collect();
        fs.inode_bitmap = fs.inodes.keys().copied().collect();
        fs
    }

    /// Allocate `ino` (marked in the bitmap, holding `refs`) without
    /// linking it anywhere — an orphan.
    pub fn add_orphan(&mut self, ino: u64, refs: &[u64]) {
        self.inodes
            .insert(ino, Self::used(false, FileKind::Other, 1));
        self.inode_bitmap.insert(ino);
        self.refs.insert(ino, refs.to_vec());
    }

    /// Deterministic pseudo-random damage: bitmap flips, link-count
    /// tweaks, duplicate references. Same `k` → same damage.
    pub fn scatter_damage(&mut self, k: u64) {
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for i in 0..k {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match i % 5 {
                0 => {
                    self.block_bitmap.insert(1000 + x % 200);
                }
                1 => {
                    let ino = 4 + x % 50;
                    if let Some(s) = self.inodes.get_mut(&ino) {
                        s.links = s.links.wrapping_add(1);
                    }
                }
                2 => {
                    self.inode_bitmap.remove(&(4 + x % 50));
                }
                3 => {
                    let ino = 4 + (x >> 7) % 50;
                    if let Some(r) = self.refs.get_mut(&ino) {
                        r.push(1000 + x % 200);
                    }
                }
                _ => {
                    self.block_bitmap.remove(&(900 + x % 300));
                }
            }
        }
    }
}

impl Checkable for MockFs {
    fn fs_name(&self) -> &'static str {
        "mockfs"
    }

    fn device_blocks(&self) -> u64 {
        self.device_blocks
    }

    fn check_superblock(&self) -> SuperblockReport {
        self.sb.clone()
    }

    fn root_ino(&self) -> u64 {
        self.root
    }

    fn total_inodes(&self) -> u64 {
        self.total_inodes
    }

    fn is_reserved_ino(&self, ino: u64) -> bool {
        ino == 1
    }

    fn inode(&self, ino: u64) -> InodeSummary {
        self.inodes.get(&ino).copied().unwrap_or(InodeSummary {
            free: true,
            kind: None,
            links: 0,
        })
    }

    fn dir_entries(&self, ino: u64) -> Vec<ChildEntry> {
        self.dirs.get(&ino).cloned().unwrap_or_default()
    }

    fn block_refs(&self, ino: u64) -> Vec<u64> {
        self.refs.get(&ino).cloned().unwrap_or_default()
    }

    fn data_regions(&self) -> Vec<Range<u64>> {
        self.regions.clone()
    }

    fn block_marked(&self, addr: u64) -> bool {
        self.block_bitmap.contains(&addr)
    }

    fn inode_marked(&self, ino: u64) -> bool {
        self.inode_bitmap.contains(&ino)
    }
}

impl Repairable for MockFs {
    fn apply_fix(&mut self, fix: &RepairFix) -> Result<RepairFix, String> {
        self.applies += 1;
        if self.fail_on_apply == Some(self.applies) {
            return Err("injected apply failure".to_string());
        }
        match *fix {
            RepairFix::FreeBlock { addr } => {
                if !self.block_bitmap.remove(&addr) {
                    return Err(format!("block {addr} not marked"));
                }
                Ok(RepairFix::MarkBlock { addr })
            }
            RepairFix::MarkBlock { addr } => {
                if !self.block_bitmap.insert(addr) {
                    return Err(format!("block {addr} already marked"));
                }
                Ok(RepairFix::FreeBlock { addr })
            }
            RepairFix::SetLinkCount { ino, links } => {
                let s = self
                    .inodes
                    .get_mut(&ino)
                    .ok_or_else(|| format!("inode {ino} is free"))?;
                let old = s.links;
                s.links = links;
                Ok(RepairFix::SetLinkCount { ino, links: old })
            }
            RepairFix::SyncInodeMark { ino } => {
                let free = self.inode(ino).free;
                let old = self.inode_bitmap.contains(&ino);
                if free {
                    self.inode_bitmap.remove(&ino);
                } else {
                    self.inode_bitmap.insert(ino);
                }
                Ok(RepairFix::SetInodeMark { ino, used: old })
            }
            RepairFix::SetInodeMark { ino, used } => {
                let old = self.inode_bitmap.contains(&ino);
                if used {
                    self.inode_bitmap.insert(ino);
                } else {
                    self.inode_bitmap.remove(&ino);
                }
                Ok(RepairFix::SetInodeMark { ino, used: old })
            }
            RepairFix::SetGeometryField { field, value } => {
                let slot = self
                    .geometry
                    .get_mut(field)
                    .ok_or_else(|| format!("unknown geometry field {field}"))?;
                let old = *slot;
                *slot = value;
                Ok(RepairFix::SetGeometryField { field, value: old })
            }
        }
    }
}

//! The [`Checkable`] trait: what a file system exposes to be checked.
//!
//! The engine never touches on-disk formats. A file system adapts its
//! image to this small read-only vocabulary — superblock sanity, inode
//! summaries, directory entries, block references, allocation bitmaps —
//! and the engine does the rest. Implementations must be cheap to call
//! from multiple threads at once (`Sync`, immutable view): the engine
//! shards the inode and block-reference scans across workers.

use std::ops::Range;

use crate::issue::FsckIssue;

/// Coarse inode kind — all the engine needs to know.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FileKind {
    /// A directory: its entries are walked and its children visited.
    Directory,
    /// Anything else with block references (regular file, symlink, ...).
    Other,
}

/// A summary of one inode slot.
#[derive(Clone, Copy, Debug)]
pub struct InodeSummary {
    /// The slot is free (unallocated).
    pub free: bool,
    /// The decoded kind, or `None` if the type field is invalid.
    pub kind: Option<FileKind>,
    /// The stored link count.
    pub links: u32,
}

/// One directory entry, as seen by the tree walk.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChildEntry {
    /// The entry name (`.` and `..` included).
    pub name: String,
    /// The referenced inode number.
    pub ino: u64,
}

/// Outcome of the superblock pass.
#[derive(Clone, Debug, Default)]
pub struct SuperblockReport {
    /// Sanity issues found (`DSanity`: geometry vs. the trusted layout).
    pub issues: Vec<FsckIssue>,
    /// If true the image is unwalkable (e.g. the superblock failed to
    /// decode) and the engine stops after this pass.
    pub fatal: bool,
}

/// A read-only view of a file-system image, sufficient for checking.
///
/// Semantics the engine relies on (and the sequential oracles must share,
/// for the differential invariant):
///
/// * inode numbers are `1..=total_inodes`; reserved slots (e.g. ext3's
///   inode 1) are excluded from the table scan via
///   [`Checkable::is_reserved_ino`];
/// * [`Checkable::block_refs`] returns every nonzero block reference an
///   inode holds — data, indirect, and auxiliary (e.g. parity) blocks —
///   with multiplicity, including references that point outside the
///   device (the engine counts those for duplicate detection but never
///   dereferences them);
/// * [`Checkable::dir_entries`] is lenient: on a corrupt directory block
///   it returns what parses and never panics.
pub trait Checkable: Sync {
    /// Short name for log lines ("ext3", ...).
    fn fs_name(&self) -> &'static str;

    /// Total blocks on the underlying device (bounds every block ref).
    fn device_blocks(&self) -> u64;

    /// Decode and sanity-check the superblock against the trusted layout.
    fn check_superblock(&self) -> SuperblockReport;

    /// The root directory's inode number.
    fn root_ino(&self) -> u64;

    /// Total inode slots (inode numbers run `1..=total_inodes`).
    fn total_inodes(&self) -> u64;

    /// True for reserved inode numbers the table scan must skip.
    fn is_reserved_ino(&self, _ino: u64) -> bool {
        false
    }

    /// Summarize inode `ino` (must accept any `1..=total_inodes`).
    fn inode(&self, ino: u64) -> InodeSummary;

    /// The entries of directory `ino` (empty for non-directories).
    fn dir_entries(&self, ino: u64) -> Vec<ChildEntry>;

    /// Every nonzero block reference held by inode `ino`.
    fn block_refs(&self, ino: u64) -> Vec<u64>;

    /// The allocatable block ranges covered by allocation bitmaps, used
    /// for bitmap reconciliation (leak / not-marked detection).
    fn data_regions(&self) -> Vec<Range<u64>>;

    /// Whether the allocation bitmap marks block `addr` as in use.
    /// Only called for addresses inside [`Checkable::data_regions`].
    fn block_marked(&self, addr: u64) -> bool;

    /// Whether the inode bitmap marks inode `ino` as in use.
    fn inode_marked(&self, ino: u64) -> bool;
}

//! The parallel, pipelined check engine.
//!
//! Pass structure (pFSCK-style):
//!
//! ```text
//! pass 0  superblock sanity            sequential, may abort (fatal)
//! pass 1  directory walk               breadth-first rounds; each round's
//!                                      frontier is sharded across workers
//! ──────────────────────────── barrier ───────────────────────────────
//! pass 2  block-reference scan   ┐     sharded; per-shard ref bitmaps
//!         + bitmap reconcile     │       merged at the join barrier
//! pass 3  link counts            ├──   pipelined: independent jobs run
//! pass 4  inode-table scan       ┘       concurrently on the pool
//! ```
//!
//! Determinism: workers claim chunks racily, so discovery order varies
//! run to run — the final report is canonically sorted, making the issue
//! set identical at every thread count (the differential-oracle
//! invariant the property suites pin).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Range;
use std::time::Instant;

use iron_core::KernelLog;

use crate::check::{Checkable, FileKind};
use crate::issue::{FsckIssue, FsckReport};
use crate::repair::{self, RepairFailure, RepairPlan, RepairSummary, Repairable};
use iron_core::exec::{Job, WorkerPool};

/// Blocks per bitmap-reconciliation work item.
const REGION_CHUNK: u64 = 1024;

/// Wall time and volume of one pass.
#[derive(Clone, Copy, Debug)]
pub struct PassStat {
    /// Pass name ("superblock", "dir_walk", "block_refs",
    /// "bitmap_reconcile", "link_counts", "inode_scan").
    pub name: &'static str,
    /// Wall-clock nanoseconds the pass took.
    pub wall_ns: u64,
    /// Items processed (inodes, refs, blocks — per the pass).
    pub items: u64,
    /// Issues the pass contributed.
    pub issues: u64,
}

/// Observability counters for one check run.
#[derive(Clone, Debug, Default)]
pub struct FsckStats {
    /// Worker threads the engine ran with.
    pub threads: usize,
    /// Inodes reached by the directory walk.
    pub inodes_walked: u64,
    /// Directory entries parsed.
    pub dir_entries_scanned: u64,
    /// Block references scanned (with multiplicity).
    pub block_refs: u64,
    /// Bitmap-covered blocks reconciled against the reference map.
    pub blocks_reconciled: u64,
    /// Total issues in the final report.
    pub issues_found: u64,
    /// End-to-end wall time.
    pub total_wall_ns: u64,
    /// Per-pass breakdown, in canonical pass order.
    pub passes: Vec<PassStat>,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct FsckOptions {
    /// Worker threads (1 = honest sequential baseline).
    pub threads: usize,
    /// Kernel log to surface pass counters and summaries through.
    pub klog: Option<KernelLog>,
}

impl Default for FsckOptions {
    fn default() -> Self {
        FsckOptions {
            threads: 1,
            klog: None,
        }
    }
}

/// The check-and-repair engine. Stateless between runs; cheap to build.
pub struct FsckEngine {
    pool: WorkerPool,
    klog: Option<KernelLog>,
}

/// Per-shard accumulator of the directory-walk pass.
#[derive(Default)]
struct WalkAcc {
    issues: Vec<FsckIssue>,
    links: HashMap<u64, u32>,
    children: Vec<u64>,
    scannable: Vec<u64>,
    entries: u64,
}

/// Per-shard block-reference bitmap ("which blocks did my chunk of inodes
/// reference"), merged at the barrier. Duplicates surface either at
/// `note` time (within a shard) or as bit overlap at `merge` time
/// (across shards), so the multiset of duplicate reports is exactly
/// "references minus distinct blocks" — matching a sequential count.
#[derive(Default)]
struct RefMap {
    words: Vec<u64>,
    dups: Vec<u64>,
    /// References beyond the device (counted, never dereferenced).
    overflow: HashMap<u64, u64>,
    total_refs: u64,
}

impl RefMap {
    fn note(&mut self, addr: u64, device_blocks: u64) {
        self.total_refs += 1;
        if addr >= device_blocks {
            *self.overflow.entry(addr).or_insert(0) += 1;
            return;
        }
        if self.words.is_empty() {
            self.words = vec![0u64; (device_blocks as usize).div_ceil(64)];
        }
        let (w, b) = ((addr / 64) as usize, addr % 64);
        if self.words[w] >> b & 1 == 1 {
            self.dups.push(addr);
        } else {
            self.words[w] |= 1 << b;
        }
    }

    fn merge(&mut self, other: RefMap) {
        self.total_refs += other.total_refs;
        for (addr, n) in other.overflow {
            *self.overflow.entry(addr).or_insert(0) += n;
        }
        self.dups.extend(other.dups);
        if self.words.is_empty() {
            self.words = other.words;
            return;
        }
        for (i, (w, o)) in self.words.iter_mut().zip(other.words).enumerate() {
            let mut both = *w & o;
            while both != 0 {
                self.dups
                    .push(i as u64 * 64 + u64::from(both.trailing_zeros()));
                both &= both - 1;
            }
            *w |= o;
        }
    }

    fn contains(&self, addr: u64) -> bool {
        let (w, b) = ((addr / 64) as usize, addr % 64);
        self.words.get(w).is_some_and(|word| word >> b & 1 == 1)
    }

    fn dup_issues(&self) -> Vec<FsckIssue> {
        let mut out: Vec<FsckIssue> = self
            .dups
            .iter()
            .map(|&addr| FsckIssue::BlockDoublyUsed { addr })
            .collect();
        for (&addr, &n) in &self.overflow {
            for _ in 1..n {
                out.push(FsckIssue::BlockDoublyUsed { addr });
            }
        }
        out
    }
}

/// What each pipelined job hands back.
struct PassOut {
    issues: Vec<FsckIssue>,
    passes: Vec<PassStat>,
    block_refs: u64,
    blocks_reconciled: u64,
}

fn elapsed_ns(t: Instant) -> u64 {
    t.elapsed().as_nanos() as u64
}

fn split_region(r: Range<u64>) -> Vec<Range<u64>> {
    let mut out = Vec::new();
    let mut start = r.start;
    while start < r.end {
        let end = (start + REGION_CHUNK).min(r.end);
        out.push(start..end);
        start = end;
    }
    out
}

fn walk_inode<C: Checkable + ?Sized>(fs: &C, ino: u64, total_inodes: u64, acc: &mut WalkAcc) {
    let s = fs.inode(ino);
    if s.free || s.kind.is_none() {
        return; // reported as dangling wherever referenced
    }
    acc.scannable.push(ino);
    if s.kind == Some(FileKind::Directory) {
        for e in fs.dir_entries(ino) {
            acc.entries += 1;
            if e.ino == 0 || e.ino > total_inodes || fs.inode(e.ino).free {
                acc.issues.push(FsckIssue::DanglingEntry {
                    dir: ino,
                    name: e.name,
                    ino: e.ino,
                });
                continue;
            }
            *acc.links.entry(e.ino).or_insert(0) += 1;
            if e.name != "." && e.name != ".." {
                acc.children.push(e.ino);
            }
        }
    }
}

impl FsckEngine {
    /// Build an engine from options.
    pub fn new(opts: FsckOptions) -> Self {
        FsckEngine {
            pool: WorkerPool::new(opts.threads),
            klog: opts.klog,
        }
    }

    /// Convenience: an engine with `threads` workers and no logging.
    pub fn with_threads(threads: usize) -> Self {
        FsckEngine::new(FsckOptions {
            threads,
            ..FsckOptions::default()
        })
    }

    /// The worker-pool width this engine runs with.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Check `fs` and return the canonically sorted report.
    pub fn check<C: Checkable>(&self, fs: &C) -> FsckReport {
        let t_total = Instant::now();
        let mut stats = FsckStats {
            threads: self.pool.threads(),
            ..FsckStats::default()
        };
        let mut issues = Vec::new();

        // Pass 0: superblock sanity (DSanity). Fatal damage stops here —
        // nothing below the superblock can be trusted.
        let t0 = Instant::now();
        let sb = fs.check_superblock();
        stats.passes.push(PassStat {
            name: "superblock",
            wall_ns: elapsed_ns(t0),
            items: 1,
            issues: sb.issues.len() as u64,
        });
        let fatal = sb.fatal;
        issues.extend(sb.issues);
        if fatal {
            return self.finish(fs, issues, stats, t_total);
        }

        let total_inodes = fs.total_inodes();
        let device_blocks = fs.device_blocks();

        // Pass 1: breadth-first directory walk. Each round shards the
        // current frontier across the pool; reachability and link counts
        // merge at the round barrier.
        let t1 = Instant::now();
        let mut walk_issues = 0u64;
        let root = fs.root_ino();
        let mut reachable: BTreeSet<u64> = BTreeSet::from([root]);
        let mut links: BTreeMap<u64, u32> = BTreeMap::new();
        let mut scannable: Vec<u64> = Vec::new();
        let mut frontier = vec![root];
        while !frontier.is_empty() {
            let acc = self.pool.shard(
                &frontier,
                |acc: &mut WalkAcc, &ino| walk_inode(fs, ino, total_inodes, acc),
                |out, shard| {
                    out.issues.extend(shard.issues);
                    for (ino, n) in shard.links {
                        *out.links.entry(ino).or_insert(0) += n;
                    }
                    out.children.extend(shard.children);
                    out.scannable.extend(shard.scannable);
                    out.entries += shard.entries;
                },
            );
            walk_issues += acc.issues.len() as u64;
            issues.extend(acc.issues);
            for (ino, n) in acc.links {
                *links.entry(ino).or_insert(0) += n;
            }
            scannable.extend(acc.scannable);
            stats.dir_entries_scanned += acc.entries;
            frontier = acc
                .children
                .into_iter()
                .filter(|&c| reachable.insert(c))
                .collect();
        }
        scannable.sort_unstable();
        stats.inodes_walked = reachable.len() as u64;
        stats.passes.push(PassStat {
            name: "dir_walk",
            wall_ns: elapsed_ns(t1),
            items: stats.inodes_walked,
            issues: walk_issues,
        });

        // Passes 2–4, pipelined: three independent jobs run concurrently.
        // The block-reference scan and the inode-table scan additionally
        // shard their work across the pool from inside their jobs.
        let pool = self.pool;
        let scannable = &scannable;
        let links = &links;
        let reachable = &reachable;
        let inos: Vec<u64> = (1..=total_inodes)
            .filter(|&i| !fs.is_reserved_ino(i))
            .collect();
        let inos = &inos;

        let job_refs: Job<'_, PassOut> = Box::new(move || {
            let t = Instant::now();
            let refmap = pool.shard(
                scannable,
                |acc: &mut RefMap, &ino| {
                    for addr in fs.block_refs(ino) {
                        acc.note(addr, device_blocks);
                    }
                },
                |out, shard| out.merge(shard),
            );
            let mut issues = refmap.dup_issues();
            let refs_stat = PassStat {
                name: "block_refs",
                wall_ns: elapsed_ns(t),
                items: refmap.total_refs,
                issues: issues.len() as u64,
            };

            let t = Instant::now();
            let chunks: Vec<Range<u64>> = fs
                .data_regions()
                .into_iter()
                .flat_map(split_region)
                .collect();
            let blocks: u64 = chunks.iter().map(|r| r.end - r.start).sum();
            let rec_issues = pool.shard(
                &chunks,
                |acc: &mut Vec<FsckIssue>, r| {
                    for addr in r.clone() {
                        let marked = fs.block_marked(addr);
                        let used = refmap.contains(addr);
                        if used && !marked {
                            acc.push(FsckIssue::BlockNotMarked { addr });
                        }
                        if marked && !used {
                            acc.push(FsckIssue::BlockLeaked { addr });
                        }
                    }
                },
                |out, shard| out.extend(shard),
            );
            let rec_stat = PassStat {
                name: "bitmap_reconcile",
                wall_ns: elapsed_ns(t),
                items: blocks,
                issues: rec_issues.len() as u64,
            };
            issues.extend(rec_issues);
            PassOut {
                issues,
                passes: vec![refs_stat, rec_stat],
                block_refs: refmap.total_refs,
                blocks_reconciled: blocks,
            }
        });

        let job_links: Job<'_, PassOut> = Box::new(move || {
            let t = Instant::now();
            let mut issues = Vec::new();
            for (&ino, &actual) in links {
                let s = fs.inode(ino);
                if !s.free && s.links != actual {
                    issues.push(FsckIssue::WrongLinkCount {
                        ino,
                        stored: s.links,
                        actual,
                    });
                }
            }
            let stat = PassStat {
                name: "link_counts",
                wall_ns: elapsed_ns(t),
                items: links.len() as u64,
                issues: issues.len() as u64,
            };
            PassOut {
                issues,
                passes: vec![stat],
                block_refs: 0,
                blocks_reconciled: 0,
            }
        });

        let job_inodes: Job<'_, PassOut> = Box::new(move || {
            let t = Instant::now();
            let issues = pool.shard(
                inos,
                |acc: &mut Vec<FsckIssue>, &ino| {
                    let marked = fs.inode_marked(ino);
                    let s = fs.inode(ino);
                    if marked == s.free {
                        acc.push(FsckIssue::InodeBitmapMismatch { ino });
                    }
                    if !s.free && !reachable.contains(&ino) {
                        acc.push(FsckIssue::OrphanInode { ino });
                    }
                },
                |out, shard| out.extend(shard),
            );
            let stat = PassStat {
                name: "inode_scan",
                wall_ns: elapsed_ns(t),
                items: inos.len() as u64,
                issues: issues.len() as u64,
            };
            PassOut {
                issues,
                passes: vec![stat],
                block_refs: 0,
                blocks_reconciled: 0,
            }
        });

        for out in self.pool.run_jobs(vec![job_refs, job_links, job_inodes]) {
            issues.extend(out.issues);
            stats.passes.extend(out.passes);
            stats.block_refs += out.block_refs;
            stats.blocks_reconciled += out.blocks_reconciled;
        }

        self.finish(fs, issues, stats, t_total)
    }

    /// Plan and transactionally apply repairs for `report`'s issues.
    pub fn repair<R: Repairable>(
        &self,
        fs: &mut R,
        report: &FsckReport,
    ) -> Result<RepairSummary, RepairFailure> {
        let plan = RepairPlan::new(&report.issues);
        repair::apply(fs, &plan, self.klog.as_ref())
    }

    /// check → repair → re-check. Returns (before, repair summary, after).
    #[allow(clippy::type_complexity)]
    pub fn check_and_repair<R: Repairable>(
        &self,
        fs: &mut R,
    ) -> Result<(FsckReport, RepairSummary, FsckReport), RepairFailure> {
        let before = self.check(fs);
        let summary = self.repair(fs, &before)?;
        let after = self.check(fs);
        Ok((before, summary, after))
    }

    fn finish<C: Checkable>(
        &self,
        fs: &C,
        mut issues: Vec<FsckIssue>,
        mut stats: FsckStats,
        t_total: Instant,
    ) -> FsckReport {
        issues.sort();
        stats.issues_found = issues.len() as u64;
        stats.total_wall_ns = elapsed_ns(t_total);
        if let Some(klog) = &self.klog {
            let name = fs.fs_name();
            for p in &stats.passes {
                klog.info(
                    "fsck",
                    format!(
                        "{name}: pass {}: {} item(s), {} issue(s), {} ns",
                        p.name, p.items, p.issues, p.wall_ns
                    ),
                );
            }
            let msg = format!(
                "{name}: check complete: {} issue(s); {} inode(s), {} entrie(s), \
                 {} block ref(s), {} block(s) reconciled; {} thread(s), {} ns",
                stats.issues_found,
                stats.inodes_walked,
                stats.dir_entries_scanned,
                stats.block_refs,
                stats.blocks_reconciled,
                stats.threads,
                stats.total_wall_ns,
            );
            if issues.is_empty() {
                klog.info("fsck", msg);
            } else {
                klog.warn("fsck", msg);
            }
        }
        FsckReport { issues, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::SuperblockReport;
    use crate::mockfs::MockFs;

    #[test]
    fn clean_mock_is_clean_at_every_width() {
        for threads in [1, 2, 4] {
            let fs = MockFs::healthy();
            let report = FsckEngine::with_threads(threads).check(&fs);
            assert!(report.is_clean(), "threads={threads}: {:?}", report.issues);
            assert_eq!(report.stats.threads, threads);
        }
    }

    #[test]
    fn every_issue_class_is_detected() {
        let mut fs = MockFs::healthy();
        fs.block_bitmap.remove(&101); // ino 3's block now unmarked
        fs.block_bitmap.insert(150); // stray mark: leaked
        fs.refs.get_mut(&5).unwrap().push(103); // 103 also owned by ino 4
        fs.inodes.get_mut(&3).unwrap().links = 7; // wrong link count
        fs.add_orphan(9, &[]); // allocated+marked, no entry anywhere
        fs.inode_bitmap.remove(&5); // allocated but unmarked
        fs.dirs
            .get_mut(&4)
            .unwrap()
            .push(MockFs::entry("ghost", 12)); // free target
        let report = FsckEngine::with_threads(4).check(&fs);
        let expect = vec![
            FsckIssue::DanglingEntry {
                dir: 4,
                name: "ghost".into(),
                ino: 12,
            },
            FsckIssue::WrongLinkCount {
                ino: 3,
                stored: 7,
                actual: 1,
            },
            FsckIssue::BlockNotMarked { addr: 101 },
            FsckIssue::BlockLeaked { addr: 150 },
            FsckIssue::BlockDoublyUsed { addr: 103 },
            FsckIssue::OrphanInode { ino: 9 },
            FsckIssue::InodeBitmapMismatch { ino: 5 },
        ];
        assert!(report.same_issues(&expect), "got {:?}", report.issues);
    }

    #[test]
    fn out_of_range_refs_are_counted_not_dereferenced() {
        let mut fs = MockFs::healthy();
        let oob = fs.device_blocks + 17;
        fs.refs.get_mut(&3).unwrap().push(oob);
        fs.refs.get_mut(&5).unwrap().push(oob); // second ref: duplicate
        let report = FsckEngine::with_threads(2).check(&fs);
        assert_eq!(
            report.issues,
            vec![FsckIssue::BlockDoublyUsed { addr: oob }],
            "one duplicate for the extra out-of-range reference"
        );
    }

    #[test]
    fn fatal_superblock_short_circuits() {
        let mut fs = MockFs::healthy();
        fs.sb = SuperblockReport {
            issues: vec![FsckIssue::BadSuperblock],
            fatal: true,
        };
        let report = FsckEngine::with_threads(4).check(&fs);
        assert_eq!(report.issues, vec![FsckIssue::BadSuperblock]);
        assert_eq!(report.stats.passes.len(), 1, "no passes after pass 0");
    }

    #[test]
    fn wide_image_reports_identically_at_every_width() {
        let mut fs = MockFs::wide(700);
        fs.scatter_damage(31);
        let oracle = FsckEngine::with_threads(1).check(&fs);
        assert!(!oracle.is_clean(), "damage must be visible");
        for threads in [2, 4, 8] {
            let report = FsckEngine::with_threads(threads).check(&fs);
            assert_eq!(report.issues, oracle.issues, "threads={threads}");
        }
    }

    #[test]
    fn stats_count_the_walk() {
        let fs = MockFs::wide(64);
        let report = FsckEngine::with_threads(4).check(&fs);
        assert!(report.is_clean());
        let s = &report.stats;
        assert_eq!(s.inodes_walked, 2 + 64, "root + wide files + spare dir");
        assert!(s.dir_entries_scanned >= 64);
        assert!(s.block_refs > 0);
        assert!(s.blocks_reconciled > 0);
        assert_eq!(s.issues_found, 0);
        let names: Vec<_> = s.passes.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "superblock",
                "dir_walk",
                "block_refs",
                "bitmap_reconcile",
                "link_counts",
                "inode_scan"
            ]
        );
    }

    #[test]
    fn klog_surfaces_pass_counters() {
        let klog = KernelLog::new();
        let engine = FsckEngine::new(FsckOptions {
            threads: 2,
            klog: Some(klog.clone()),
        });
        let mut fs = MockFs::healthy();
        engine.check(&fs);
        assert!(klog.contains("mockfs: check complete: 0 issue(s)"));
        assert!(klog.contains("pass dir_walk"));
        // A dirty image logs the summary at warning level.
        fs.block_bitmap.insert(199);
        engine.check(&fs);
        assert!(klog.contains("1 issue(s)"));
    }

    #[test]
    fn check_and_repair_round_trip_on_fixable_damage() {
        let mut fs = MockFs::healthy();
        fs.block_bitmap.insert(160); // leak — fixable
        fs.inodes.get_mut(&3).unwrap().links = 9; // fixable
        fs.inode_bitmap.remove(&4); // mismatch — fixable
        let engine = FsckEngine::with_threads(2);
        let (before, summary, after) = engine.check_and_repair(&mut fs).unwrap();
        assert_eq!(before.issues.len(), 3);
        assert_eq!(summary.applied, 3);
        assert_eq!(summary.deferred, 0);
        assert!(after.is_clean(), "after: {:?}", after.issues);
    }
}

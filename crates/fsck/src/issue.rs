//! The issue vocabulary shared by every checkable file system.
//!
//! Variants derive `Ord` so a report can be *canonically sorted*: the
//! parallel engine discovers issues in a nondeterministic interleaving,
//! but the sorted multiset is identical for every thread count and equal
//! to the sequential oracle's — that invariant is what the differential
//! property suites pin.

use crate::engine::FsckStats;

/// One structural inconsistency found by a check.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FsckIssue {
    /// The superblock failed to decode; nothing else can be trusted.
    BadSuperblock,
    /// A superblock geometry field disagrees with the trusted layout
    /// (`DSanity`): e.g. the recorded block count vs. the device size.
    GeometryMismatch {
        /// Which geometry field is wrong.
        field: &'static str,
        /// The value stored in the superblock.
        stored: u64,
        /// The value the trusted layout expects.
        expected: u64,
    },
    /// The journal region implied by the superblock overlaps the regions
    /// that follow it (checksum table / block groups) — `DSanity`.
    JournalOverlap {
        /// Journal length recorded in the superblock.
        stored: u64,
        /// Maximum journal length before the next region begins.
        max: u64,
    },
    /// A directory entry references a free or out-of-range inode.
    DanglingEntry {
        /// The directory containing the entry.
        dir: u64,
        /// The entry name.
        name: String,
        /// The referenced inode.
        ino: u64,
    },
    /// An inode's link count disagrees with the directory tree.
    WrongLinkCount {
        /// The inode.
        ino: u64,
        /// Count stored on disk.
        stored: u32,
        /// Count derived from the tree walk.
        actual: u32,
    },
    /// A block used by a file is not marked allocated in the bitmap.
    BlockNotMarked {
        /// The block.
        addr: u64,
    },
    /// A block marked allocated is not referenced by anything ("leaked").
    BlockLeaked {
        /// The block.
        addr: u64,
    },
    /// Two references (from any files) name the same block. One issue is
    /// reported per *extra* reference beyond the first.
    BlockDoublyUsed {
        /// The block.
        addr: u64,
    },
    /// An allocated inode is unreachable from the root.
    OrphanInode {
        /// The inode.
        ino: u64,
    },
    /// An inode bitmap bit is set for a free inode slot (or vice versa).
    InodeBitmapMismatch {
        /// The inode.
        ino: u64,
    },
    /// One replica of a mirrored volume disagrees with its quorum peers at
    /// a block (`DRedundancy` detection at the cluster tier). The block
    /// has a known-good copy on the peers, so the planned recovery is
    /// `RRedundancy` — rewrite the divergent replica from the majority —
    /// executed by `iron-cluster`'s repair engine rather than a
    /// single-image [`crate::RepairFix`].
    ReplicaDivergence {
        /// The divergent block.
        addr: u64,
        /// The replica (0-based) that disagrees with the quorum.
        replica: usize,
    },
}

/// The result of a consistency check: issues plus observability counters.
#[derive(Clone, Debug, Default)]
pub struct FsckReport {
    /// Everything found, canonically sorted (see module docs).
    pub issues: Vec<FsckIssue>,
    /// What the check cost: items scanned and per-pass wall time.
    pub stats: FsckStats,
}

impl FsckReport {
    /// True if the image is fully consistent.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// True if `other` reports exactly the same issue multiset,
    /// independent of discovery order.
    pub fn same_issues(&self, other: &[FsckIssue]) -> bool {
        let mut a = self.issues.clone();
        let mut b = other.to_vec();
        a.sort();
        b.sort();
        a == b
    }

    /// A one-line human summary for logs.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            "clean".to_string()
        } else {
            format!("{} issue(s)", self.issues.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_sort_is_stable_across_discovery_orders() {
        let a = vec![
            FsckIssue::BlockLeaked { addr: 9 },
            FsckIssue::BadSuperblock,
            FsckIssue::OrphanInode { ino: 4 },
            FsckIssue::BlockLeaked { addr: 2 },
        ];
        let mut x = a.clone();
        let mut y: Vec<_> = a.into_iter().rev().collect();
        x.sort();
        y.sort();
        assert_eq!(x, y);
        assert_eq!(x[0], FsckIssue::BadSuperblock, "variant order leads");
    }

    #[test]
    fn same_issues_is_order_insensitive_but_multiset_exact() {
        let r = FsckReport {
            issues: vec![
                FsckIssue::BlockLeaked { addr: 1 },
                FsckIssue::BlockLeaked { addr: 1 },
                FsckIssue::OrphanInode { ino: 3 },
            ],
            stats: FsckStats::default(),
        };
        assert!(r.same_issues(&[
            FsckIssue::OrphanInode { ino: 3 },
            FsckIssue::BlockLeaked { addr: 1 },
            FsckIssue::BlockLeaked { addr: 1 },
        ]));
        // Multiplicity matters.
        assert!(!r.same_issues(&[
            FsckIssue::OrphanInode { ino: 3 },
            FsckIssue::BlockLeaked { addr: 1 },
        ]));
    }

    #[test]
    fn summary_reads_well() {
        assert_eq!(FsckReport::default().summary(), "clean");
        let r = FsckReport {
            issues: vec![FsckIssue::BadSuperblock],
            stats: FsckStats::default(),
        };
        assert_eq!(r.summary(), "1 issue(s)");
    }
}

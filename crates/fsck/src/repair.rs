//! The repair planner and transactional executor.
//!
//! Each issue class maps to an IRON recovery action
//! ([`iron_core::taxonomy::RecoveryLevel`]). Mechanical fixes — freeing a
//! leaked block, correcting a link count, reconciling a bitmap bit,
//! rewriting a bad geometry field — are `RRepair` and get a concrete
//! [`RepairFix`]. Data-loss repairs (deleting a dangling entry, breaking
//! a doubly-used block — the paper's "Could lose data", Table 2) are
//! *planned but deferred*: reported with their recovery level and no fix.
//!
//! [`apply`] executes a plan transactionally: every applied fix returns
//! its inverse, and on any failure the inverses are replayed in reverse
//! order, restoring the pre-repair image — a half-repaired file system is
//! worse than a broken one.

use iron_core::taxonomy::RecoveryLevel;
use iron_core::KernelLog;

use crate::check::Checkable;
use crate::issue::FsckIssue;

/// One mechanical, invertible repair step.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RepairFix {
    /// Clear the allocation bit of a leaked block.
    FreeBlock {
        /// The block to mark free.
        addr: u64,
    },
    /// Set the allocation bit of a used-but-unmarked block.
    MarkBlock {
        /// The block to mark in use.
        addr: u64,
    },
    /// Overwrite an inode's stored link count.
    SetLinkCount {
        /// The inode.
        ino: u64,
        /// The count derived from the tree walk.
        links: u32,
    },
    /// Reconcile an inode-bitmap bit toward the inode table's truth.
    SyncInodeMark {
        /// The inode whose bit is wrong.
        ino: u64,
    },
    /// Write an inode-bitmap bit verbatim (used for rollback).
    SetInodeMark {
        /// The inode.
        ino: u64,
        /// The bit value to store.
        used: bool,
    },
    /// Rewrite one superblock geometry field to the trusted value.
    SetGeometryField {
        /// Field name (as named by [`FsckIssue::GeometryMismatch`]).
        field: &'static str,
        /// The value to store.
        value: u64,
    },
}

/// A file system the engine can repair: applying a fix returns the
/// *inverse* fix, which [`apply`] stacks for transactional rollback.
pub trait Repairable: Checkable {
    /// Apply one fix to the image. Errors must leave the image unchanged.
    fn apply_fix(&mut self, fix: &RepairFix) -> Result<RepairFix, String>;
}

/// One planned action: the issue, its IRON recovery level, and the fix
/// (`None` = deferred: correct recovery would risk data loss or needs
/// machinery we don't have).
#[derive(Clone, Debug)]
pub struct PlannedAction {
    /// The issue being addressed.
    pub issue: FsckIssue,
    /// The IRON recovery level this repair corresponds to.
    pub recovery: RecoveryLevel,
    /// The mechanical fix, if one is safe.
    pub fix: Option<RepairFix>,
    /// Why, in one line (shown in logs).
    pub note: &'static str,
}

/// The full plan for a report's issues.
#[derive(Clone, Debug, Default)]
pub struct RepairPlan {
    /// One action per issue, in the report's (canonical) order.
    pub actions: Vec<PlannedAction>,
}

fn plan_one(issue: &FsckIssue) -> PlannedAction {
    let issue = issue.clone();
    match issue {
        FsckIssue::BadSuperblock => PlannedAction {
            issue,
            recovery: RecoveryLevel::RStop,
            fix: None,
            note: "superblock undecodable; restore from a redundant copy",
        },
        FsckIssue::GeometryMismatch {
            field, expected, ..
        } => PlannedAction {
            issue,
            recovery: RecoveryLevel::RRepair,
            fix: Some(RepairFix::SetGeometryField {
                field,
                value: expected,
            }),
            note: "rewrite geometry field from the trusted layout",
        },
        FsckIssue::JournalOverlap { max, .. } => PlannedAction {
            issue,
            recovery: RecoveryLevel::RRepair,
            fix: Some(RepairFix::SetGeometryField {
                field: "journal_blocks",
                value: max,
            }),
            note: "clamp journal length below the following region",
        },
        FsckIssue::DanglingEntry { .. } => PlannedAction {
            issue,
            recovery: RecoveryLevel::RRepair,
            fix: None,
            note: "unlinking the entry would lose the name; deferred",
        },
        FsckIssue::WrongLinkCount { ino, actual, .. } => PlannedAction {
            issue,
            recovery: RecoveryLevel::RRepair,
            fix: Some(RepairFix::SetLinkCount { ino, links: actual }),
            note: "store the link count derived from the tree walk",
        },
        FsckIssue::BlockNotMarked { addr } => PlannedAction {
            issue,
            recovery: RecoveryLevel::RRepair,
            fix: Some(RepairFix::MarkBlock { addr }),
            note: "mark the referenced block allocated",
        },
        FsckIssue::BlockLeaked { addr } => PlannedAction {
            issue,
            recovery: RecoveryLevel::RRepair,
            fix: Some(RepairFix::FreeBlock { addr }),
            note: "free the unreferenced block",
        },
        FsckIssue::BlockDoublyUsed { .. } => PlannedAction {
            issue,
            recovery: RecoveryLevel::RRemap,
            fix: None,
            note: "needs copy-and-remap of one owner; deferred",
        },
        FsckIssue::OrphanInode { .. } => PlannedAction {
            issue,
            recovery: RecoveryLevel::RRepair,
            fix: None,
            note: "no lost+found to reconnect into; deferred",
        },
        FsckIssue::InodeBitmapMismatch { ino } => PlannedAction {
            issue,
            recovery: RecoveryLevel::RRepair,
            fix: Some(RepairFix::SyncInodeMark { ino }),
            note: "resolve the bitmap toward the inode table",
        },
        FsckIssue::ReplicaDivergence { .. } => PlannedAction {
            issue,
            recovery: RecoveryLevel::RRedundancy,
            fix: None,
            note: "rewrite the divergent replica from its quorum peers (cluster tier)",
        },
    }
}

impl RepairPlan {
    /// Plan every issue.
    pub fn new(issues: &[FsckIssue]) -> RepairPlan {
        RepairPlan {
            actions: issues.iter().map(plan_one).collect(),
        }
    }

    /// How many actions carry a mechanical fix.
    pub fn fixable(&self) -> usize {
        self.actions.iter().filter(|a| a.fix.is_some()).count()
    }

    /// How many actions are deferred (reported, not fixed).
    pub fn deferred(&self) -> usize {
        self.actions.len() - self.fixable()
    }

    /// The deferred issues — exactly what a re-check after a successful
    /// [`apply`] must still report (the repair-idempotence invariant).
    pub fn deferred_issues(&self) -> Vec<FsckIssue> {
        self.actions
            .iter()
            .filter(|a| a.fix.is_none())
            .map(|a| a.issue.clone())
            .collect()
    }
}

/// What a successful [`apply`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepairSummary {
    /// Fixes applied.
    pub applied: usize,
    /// Issues reported but deferred.
    pub deferred: usize,
}

/// A failed [`apply`]: the offending fix, and how rollback went.
#[derive(Clone, Debug)]
pub struct RepairFailure {
    /// The fix that could not be applied.
    pub fix: RepairFix,
    /// The file system's reason.
    pub reason: String,
    /// How many already-applied fixes were rolled back.
    pub rolled_back: usize,
    /// True if rollback itself failed (the image may be torn).
    pub rollback_failed: bool,
}

impl std::fmt::Display for RepairFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "repair failed applying {:?} ({}); rolled back {} fix(es){}",
            self.fix,
            self.reason,
            self.rolled_back,
            if self.rollback_failed {
                "; ROLLBACK FAILED"
            } else {
                ""
            }
        )
    }
}

/// Apply a plan's fixes transactionally (see module docs).
pub fn apply<R: Repairable>(
    fs: &mut R,
    plan: &RepairPlan,
    klog: Option<&KernelLog>,
) -> Result<RepairSummary, RepairFailure> {
    let mut undo: Vec<RepairFix> = Vec::new();
    for action in &plan.actions {
        let Some(fix) = &action.fix else { continue };
        match fs.apply_fix(fix) {
            Ok(inverse) => undo.push(inverse),
            Err(reason) => {
                let rolled_back = undo.len();
                let mut rollback_failed = false;
                for inverse in undo.into_iter().rev() {
                    if fs.apply_fix(&inverse).is_err() {
                        rollback_failed = true;
                        break;
                    }
                }
                let failure = RepairFailure {
                    fix: fix.clone(),
                    reason,
                    rolled_back,
                    rollback_failed,
                };
                if let Some(klog) = klog {
                    klog.error("fsck", format!("repair: {failure}"));
                }
                return Err(failure);
            }
        }
    }
    let summary = RepairSummary {
        applied: undo.len(),
        deferred: plan.deferred(),
    };
    if let Some(klog) = klog {
        klog.info(
            "fsck",
            format!(
                "repair: applied {} fix(es), deferred {} issue(s)",
                summary.applied, summary.deferred
            ),
        );
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FsckEngine;
    use crate::mockfs::MockFs;

    #[test]
    fn planner_maps_issue_classes_to_iron_recovery_levels() {
        let issues = vec![
            FsckIssue::BadSuperblock,
            FsckIssue::GeometryMismatch {
                field: "total_blocks",
                stored: 9,
                expected: 4096,
            },
            FsckIssue::JournalOverlap {
                stored: 900,
                max: 256,
            },
            FsckIssue::DanglingEntry {
                dir: 2,
                name: "x".into(),
                ino: 7,
            },
            FsckIssue::WrongLinkCount {
                ino: 3,
                stored: 2,
                actual: 1,
            },
            FsckIssue::BlockNotMarked { addr: 10 },
            FsckIssue::BlockLeaked { addr: 11 },
            FsckIssue::BlockDoublyUsed { addr: 12 },
            FsckIssue::OrphanInode { ino: 8 },
            FsckIssue::InodeBitmapMismatch { ino: 9 },
            FsckIssue::ReplicaDivergence {
                addr: 13,
                replica: 1,
            },
        ];
        let plan = RepairPlan::new(&issues);
        let levels: Vec<_> = plan.actions.iter().map(|a| a.recovery).collect();
        assert_eq!(
            levels,
            vec![
                RecoveryLevel::RStop,
                RecoveryLevel::RRepair,
                RecoveryLevel::RRepair,
                RecoveryLevel::RRepair,
                RecoveryLevel::RRepair,
                RecoveryLevel::RRepair,
                RecoveryLevel::RRepair,
                RecoveryLevel::RRemap,
                RecoveryLevel::RRepair,
                RecoveryLevel::RRepair,
                RecoveryLevel::RRedundancy,
            ]
        );
        assert_eq!(plan.fixable(), 6);
        assert_eq!(plan.deferred(), 5);
        assert_eq!(plan.deferred_issues().len(), 5);
        // Geometry fixes carry the trusted value, not the stored one.
        assert_eq!(
            plan.actions[1].fix,
            Some(RepairFix::SetGeometryField {
                field: "total_blocks",
                value: 4096
            })
        );
        assert_eq!(
            plan.actions[2].fix,
            Some(RepairFix::SetGeometryField {
                field: "journal_blocks",
                value: 256
            })
        );
    }

    #[test]
    fn apply_reports_applied_and_deferred() {
        let mut fs = MockFs::healthy();
        fs.block_bitmap.insert(170);
        fs.add_orphan(9, &[]);
        let report = FsckEngine::with_threads(1).check(&fs);
        let plan = RepairPlan::new(&report.issues);
        let summary = apply(&mut fs, &plan, None).unwrap();
        assert_eq!(
            summary,
            RepairSummary {
                applied: 1,
                deferred: 1
            }
        );
        let after = FsckEngine::with_threads(1).check(&fs);
        assert!(after.same_issues(&plan.deferred_issues()));
    }

    #[test]
    fn failed_apply_rolls_back_to_the_original_image() {
        let mut fs = MockFs::healthy();
        fs.block_bitmap.insert(170); // fix 1: free
        fs.inodes.get_mut(&3).unwrap().links = 9; // fix 2: link count
        fs.inode_bitmap.remove(&4); // fix 3: bitmap sync
        let report = FsckEngine::with_threads(1).check(&fs);
        assert_eq!(report.issues.len(), 3);

        let snap_blocks = fs.block_bitmap.clone();
        let snap_inodes = fs.inode_bitmap.clone();
        let snap_links = fs.inodes[&3].links;

        fs.fail_on_apply = Some(3); // third fix explodes
        let plan = RepairPlan::new(&report.issues);
        let failure = apply(&mut fs, &plan, None).unwrap_err();
        assert_eq!(failure.rolled_back, 2);
        assert!(!failure.rollback_failed);
        assert_eq!(fs.block_bitmap, snap_blocks, "bitmap restored");
        assert_eq!(fs.inode_bitmap, snap_inodes, "inode bitmap restored");
        assert_eq!(fs.inodes[&3].links, snap_links, "link count restored");

        // And the same image still repairs fine once the fault is gone.
        fs.fail_on_apply = None;
        let summary = apply(&mut fs, &plan, None).unwrap();
        assert_eq!(summary.applied, 3);
        assert!(FsckEngine::with_threads(2).check(&fs).is_clean());
    }

    #[test]
    fn repair_failure_display_is_informative() {
        let f = RepairFailure {
            fix: RepairFix::FreeBlock { addr: 7 },
            reason: "nope".into(),
            rolled_back: 2,
            rollback_failed: false,
        };
        let s = f.to_string();
        assert!(s.contains("FreeBlock"), "{s}");
        assert!(s.contains("rolled back 2"), "{s}");
    }
}

//! # iron-fsck
//!
//! A filesystem-agnostic, parallel check-and-repair engine.
//!
//! The IRON taxonomy names `RRepair` ("repair data structs", §3.1 of the
//! paper) as a first-class recovery level, but offline check-and-repair is
//! traditionally a per-filesystem monolith. This crate factors the engine
//! out of the file systems:
//!
//! * [`Checkable`] is the read-only view a file system exposes for
//!   checking — superblock sanity, inode enumeration, directory entries,
//!   block references, allocation bitmaps ([`check`]);
//! * [`FsckEngine`] runs pFSCK-style parallel passes over that view
//!   ([`engine`]): the inode/block-reference scans are sharded across the
//!   workspace's shared zero-dependency `std::thread` worker pool
//!   ([`iron_core::exec::WorkerPool`] — also the executor behind the
//!   `iron-fingerprint` campaign) with per-shard reference bitmaps merged
//!   at a barrier, and the independent late passes (link counts,
//!   inode-table scan, bitmap reconciliation) are pipelined as concurrent
//!   jobs;
//! * [`RepairPlan`] maps each issue class to an IRON recovery action
//!   (`RRepair`/`RRemap`/`RStop` via `iron_core::taxonomy`) and
//!   [`repair::apply`] executes the fixable subset *transactionally*
//!   against a [`Repairable`] file system — any failure rolls back every
//!   fix already applied ([`repair`]);
//! * [`FsckStats`] counts blocks scanned, issues found, and per-pass wall
//!   time, surfaced through the simulated kernel log.
//!
//! The engine is deterministic by construction: reports are canonically
//! sorted, so a check at any thread count yields the identical issue set —
//! `iron-ext3` keeps its original sequential checker as the differential
//! oracle and the property suites assert equality on every image.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod engine;
pub mod issue;
pub mod repair;

pub use check::{Checkable, ChildEntry, FileKind, InodeSummary, SuperblockReport};
pub use engine::{FsckEngine, FsckOptions, FsckStats, PassStat};
pub use iron_core::exec::WorkerPool;
pub use issue::{FsckIssue, FsckReport};
pub use repair::{
    apply, PlannedAction, RepairFailure, RepairFix, RepairPlan, RepairSummary, Repairable,
};

#[cfg(test)]
pub(crate) mod mockfs;

//! Shared helpers for the iron-fsck integration suites: an ext3 image
//! builder and a typed-block victim enumerator for corruption campaigns.
//!
//! Each suite uses a different subset of these helpers.
#![allow(dead_code)]

use iron_blockdev::{MemDisk, RawAccess};
use iron_core::{Block, BlockAddr, BLOCK_SIZE};
use iron_ext3::inode::DiskInode;
use iron_ext3::{DiskLayout, Ext3Fs, Ext3Options, Ext3Params};
use iron_vfs::{FileType, FsEnv, Vfs};

/// Build a populated, cleanly unmounted ext3 image: a directory tree with
/// `files` regular files of `file_bytes` each (plus one large file that
/// needs an indirect block, and one hard link).
pub fn build_image(files: usize, file_bytes: usize) -> (MemDisk, DiskLayout) {
    let dev = MemDisk::for_tests(4096);
    let fs = Ext3Fs::format_and_mount(
        dev,
        FsEnv::new(),
        Ext3Params::small(),
        Ext3Options::default(),
    )
    .unwrap();
    let mut v = Vfs::new(fs);
    v.mkdir("/d", 0o755).unwrap();
    v.mkdir("/d/sub", 0o755).unwrap();
    for i in 0..files {
        let dir = if i % 3 == 0 { "/d/sub" } else { "/d" };
        v.write_file(&format!("{dir}/f{i}"), &vec![i as u8; file_bytes])
            .unwrap();
    }
    // Past 12 direct blocks -> allocates an indirect block.
    v.write_file("/big", &vec![0xAB; 60_000]).unwrap();
    v.link("/d/f1", "/hard").unwrap();
    v.umount().unwrap();
    let fs = v.into_fs();
    let layout = *fs.layout();
    (fs.into_device(), layout)
}

/// Candidate corruption victims, grouped by on-disk block class. Only
/// classes fsck actually reads are enumerated (the journal is crash
/// territory, covered by `crash_images.rs`).
pub fn victims(dev: &MemDisk, layout: &DiskLayout) -> Vec<(&'static str, Vec<u64>)> {
    let mut sb = vec![0u64];
    let mut dbm = Vec::new();
    let mut ibm = Vec::new();
    let mut itable = Vec::new();
    for g in 0..layout.num_groups {
        dbm.push(layout.data_bitmap(g).0);
        ibm.push(layout.inode_bitmap(g).0);
        for b in 0..layout.itable_blocks {
            itable.push(layout.inode_table(g) + b);
        }
    }
    sb.extend((0..layout.num_groups).map(|g| layout.super_replica(g).0));
    let mut dir_data = Vec::new();
    let mut file_data = Vec::new();
    let mut indirect = Vec::new();
    for ino in 2..=layout.total_inodes() {
        let (blk, off) = layout.inode_location(ino);
        let di = DiskInode::decode_from(&dev.peek(blk), off);
        if di.is_free() {
            continue;
        }
        let Some(ftype) = di.file_type() else {
            continue;
        };
        for &d in &di.direct {
            if d != 0 {
                if ftype == FileType::Directory {
                    dir_data.push(d as u64);
                } else {
                    file_data.push(d as u64);
                }
            }
        }
        if di.indirect != 0 {
            indirect.push(di.indirect as u64);
        }
    }
    vec![
        ("super", sb),
        ("data_bitmap", dbm),
        ("inode_bitmap", ibm),
        ("inode_table", itable),
        ("dir_data", dir_data),
        ("file_data", file_data),
        ("indirect", indirect),
    ]
}

/// Deterministically corrupt `addr` in one of four styles selected by
/// `style`, parameterized by `x`.
pub fn corrupt_block(dev: &mut MemDisk, addr: u64, style: u64, x: u64) {
    let a = BlockAddr(addr);
    let b = match style % 4 {
        0 => {
            // Pseudo-random noise.
            let mut b = Block::zeroed();
            let mut s = x | 1;
            for chunk in b.chunks_mut(8) {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let n = chunk.len();
                chunk.copy_from_slice(&s.to_le_bytes()[..n]);
            }
            b
        }
        1 => Block::zeroed(),
        2 => {
            // Bit rot: invert a short burst.
            let mut b = dev.peek(a);
            let off = (x as usize) % BLOCK_SIZE;
            let len = 1 + (x as usize >> 16) % 16;
            for byte in &mut b[off..(off + len).min(BLOCK_SIZE)] {
                *byte = !*byte;
            }
            b
        }
        _ => {
            // Plausible-but-wrong field: overwrite one aligned u32.
            let mut b = dev.peek(a);
            let off = ((x as usize) % (BLOCK_SIZE / 4)) * 4;
            b.put_u32(off, (x >> 8) as u32);
            b
        }
    };
    dev.poke(a, &b);
}

/// A tiny deterministic PRNG for victim selection inside property cases.
pub struct Lcg(pub u64);

impl Lcg {
    pub fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

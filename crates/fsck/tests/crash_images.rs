//! Crash-image coverage: images left behind by a crash — committed but
//! unreplayed transactions, torn journals, corrupted log blocks — go
//! through the parallel engine *without recovery first*. The engine must
//! never panic, must agree with the sequential oracle, and must be
//! deterministic across runs and thread counts. (Whether the image is
//! *clean* is not asserted: an unrecovered crash image is legitimately
//! inconsistent — that is what recovery is for.)
//!
//! Runs on the in-tree `iron-testkit` harness: a failure prints its case
//! seed and reruns deterministically with
//! `IRON_TESTKIT_SEED=<seed> cargo test -q <test_name>`.

use iron_blockdev::{MemDisk, RawAccess};
use iron_core::BlockAddr;
use iron_ext3::fsck::{check, Ext3Image};
use iron_ext3::{Ext3Fs, Ext3Options, Ext3Params, IronConfig};
use iron_fsck::{FsckEngine, RepairPlan};
use iron_testkit::gen;
use iron_testkit::prop::{check as prop_check, Config};
use iron_vfs::{FsEnv, Vfs};

/// Build a crashed image: `n_txns` committed-but-unflushed transactions
/// (the journal holds them; the home locations were never checkpointed).
fn crashed_image(n_txns: usize) -> (MemDisk, iron_ext3::DiskLayout) {
    let params = Ext3Params::small();
    let mut dev = MemDisk::for_tests(4096);
    Ext3Fs::<MemDisk>::mkfs(&mut dev, params).unwrap();
    let opts = Ext3Options {
        iron: IronConfig::off(),
        crash_mode: true,
        ..Default::default()
    };
    let fs = Ext3Fs::mount(dev, FsEnv::new(), opts).unwrap();
    let layout = *fs.layout();
    let mut v = Vfs::new(fs);
    for i in 0..n_txns {
        v.mkdir(&format!("/t{i}"), 0o755).unwrap();
        v.write_file(&format!("/t{i}/f"), &vec![i as u8; 2000])
            .unwrap();
        v.sync().unwrap();
    }
    (v.into_fs().into_device(), layout)
}

fn assert_engine_matches_oracle(dev: MemDisk, layout: iron_ext3::DiskLayout, ctx: &str) {
    let oracle = check(&dev, &layout);
    let img = Ext3Image::new(dev, layout);
    let baseline = FsckEngine::with_threads(1).check(&img);
    assert!(
        baseline.same_issues(&oracle.issues),
        "{ctx}: t=1 vs oracle:\n  engine: {:?}\n  oracle: {:?}",
        baseline.issues,
        oracle.issues
    );
    for threads in [2, 4] {
        let a = FsckEngine::with_threads(threads).check(&img);
        let b = FsckEngine::with_threads(threads).check(&img);
        assert_eq!(a.issues, b.issues, "{ctx}: t={threads} nondeterministic");
        assert_eq!(a.issues, baseline.issues, "{ctx}: t={threads} vs t=1");
    }
}

#[test]
fn unrecovered_crash_images_are_checked_deterministically() {
    let inputs = (
        gen::usize_in(0..4),
        gen::usize_in(0..4096),
        gen::u8_in(1..255),
    );
    prop_check(
        "unrecovered_crash_images_are_checked_deterministically",
        Config::cases(16),
        &inputs,
        |&(txns, victim_off, bits)| {
            // Plain crash.
            let (dev, layout) = crashed_image(txns);
            assert_engine_matches_oracle(dev, layout, "plain crash");

            // Crash plus a corrupted journal block (torn log write):
            // fsck reads the journal region only through the bitmap
            // reconciliation, but the image must still check cleanly
            // deterministically.
            let (mut dev, layout) = crashed_image(txns.max(1));
            let mut target = None;
            for a in layout.journal_start..layout.journal_start + layout.journal_len {
                if !dev.peek(BlockAddr(a)).is_zeroed() {
                    target = Some(a);
                    break;
                }
            }
            if let Some(a) = target {
                let mut b = dev.peek(BlockAddr(a));
                b[victim_off] ^= bits;
                dev.poke(BlockAddr(a), &b);
            }
            assert_engine_matches_oracle(dev, layout, "torn journal");
        },
    );
}

/// A crashed image that *is* inconsistent on disk (metadata updates
/// parked in the journal): repair must fix the fixable classes and leave
/// exactly the deferred set — even before recovery.
#[test]
fn crash_image_repair_reaches_a_fixpoint() {
    let (dev, layout) = crashed_image(3);
    let mut img = Ext3Image::new(dev, layout);
    let engine = FsckEngine::with_threads(4);
    let (before, summary, after) = engine.check_and_repair(&mut img).unwrap();
    let plan = RepairPlan::new(&before.issues);
    assert_eq!(summary.applied, plan.fixable());
    assert!(
        after.same_issues(&plan.deferred_issues()),
        "{:?}",
        after.issues
    );
    let (_, s2, a2) = engine.check_and_repair(&mut img).unwrap();
    assert_eq!(s2.applied, 0);
    assert_eq!(a2.issues, after.issues);
}

/// Recovery-then-check: after a proper journal replay the image is clean,
/// and the engine agrees at every width.
#[test]
fn recovered_crash_image_is_clean() {
    let (dev, layout) = crashed_image(3);
    let fs = Ext3Fs::mount(dev, FsEnv::new(), Ext3Options::default()).unwrap();
    let dev = fs.into_device();
    assert!(check(&dev, &layout).is_clean());
    let img = Ext3Image::new(dev, layout);
    for threads in [1, 4] {
        assert!(FsckEngine::with_threads(threads).check(&img).is_clean());
    }
}

//! Fault-injection campaign: typed blocks are silently corrupted through
//! `iron-faultinject` (the corruption is read back through the faulty
//! device and written home, modeling a firmware bug or misdirected write
//! that lands garbage on the medium), then the engine must
//! detect → repair → come back clean, with its counters and klog output
//! telling the story.

mod common;

use common::build_image;
use iron_blockdev::{BlockDevice, RawAccess};
use iron_core::model::CorruptionStyle;
use iron_core::{BlockAddr, FaultKind, KernelLog};
use iron_ext3::fsck::Ext3Image;
use iron_ext3::DiskLayout;
use iron_faultinject::{FaultSpec, FaultTarget, FaultyDisk};
use iron_fsck::{FsckEngine, FsckOptions, RepairPlan};

/// Silently corrupt `addr`: inject the fault, read the block through the
/// faulty device (which fabricates the corrupted contents), and write
/// those contents home so the damage persists on the medium.
fn land_corruption(
    fdev: &mut FaultyDisk<iron_blockdev::MemDisk>,
    layout: &DiskLayout,
    addr: u64,
    style: CorruptionStyle,
) {
    let ctl = fdev.controller();
    let id = ctl.inject(FaultSpec::sticky(
        FaultKind::Corruption(style),
        FaultTarget::Addr(BlockAddr(addr)),
    ));
    let tag = layout.classify_static(addr).tag();
    let bad = fdev
        .read_tagged(BlockAddr(addr), tag)
        .expect("corruption is silent");
    ctl.disarm(id);
    fdev.poke(BlockAddr(addr), &bad);
    assert!(ctl.fired(id), "fault must have fired");
}

/// Bitmap corruption is fully repairable: every issue the scan finds maps
/// to an `RRepair` fix, and the post-repair image is completely clean.
#[test]
fn bitmap_corruption_detect_repair_clean() {
    for style in [
        CorruptionStyle::RandomNoise,
        CorruptionStyle::Zeroed,
        CorruptionStyle::BitFlip { offset: 40, len: 8 },
    ] {
        let (dev, layout) = build_image(10, 5_000);
        let mut fdev = FaultyDisk::new(dev);
        land_corruption(&mut fdev, &layout, layout.data_bitmap(0).0, style);
        land_corruption(&mut fdev, &layout, layout.inode_bitmap(0).0, style);

        let klog = KernelLog::new();
        let engine = FsckEngine::new(FsckOptions {
            threads: 4,
            klog: Some(klog.clone()),
        });
        let mut img = Ext3Image::new(fdev, layout);
        let (before, summary, after) = engine.check_and_repair(&mut img).unwrap();
        assert!(
            !before.is_clean(),
            "corruption must be detected ({style:?})"
        );
        assert_eq!(
            summary.applied,
            before.issues.len(),
            "all bitmap damage is fixable"
        );
        assert_eq!(summary.deferred, 0);
        assert!(after.is_clean(), "{style:?}: {:?}", after.issues);

        // Observability: counters and the klog summary line.
        assert!(before.stats.blocks_reconciled > 0);
        assert!(before.stats.inodes_walked > 0);
        assert_eq!(before.stats.issues_found, before.issues.len() as u64);
        assert!(before
            .stats
            .passes
            .iter()
            .any(|p| p.name == "bitmap_reconcile"));
        assert!(klog.contains("ext3: check complete"));
        assert!(klog.contains("repair:"));
    }
}

/// A campaign across the typed metadata surface: for every victim class
/// the engine detects the damage without panicking, repairs what the
/// planner marks fixable, and the second check reports exactly the
/// deferred remainder.
#[test]
fn typed_campaign_reaches_deferred_fixpoint() {
    let (_, probe_layout) = build_image(10, 5_000);
    let itable_mid = probe_layout.inode_table(0) + probe_layout.itable_blocks / 2;
    let victims: Vec<(&str, u64, CorruptionStyle)> = vec![
        (
            "super",
            0,
            CorruptionStyle::Field {
                offset: 8,
                value: 999,
            },
        ), // total_blocks
        (
            "data_bitmap",
            probe_layout.data_bitmap(0).0,
            CorruptionStyle::RandomNoise,
        ),
        (
            "inode_bitmap",
            probe_layout.inode_bitmap(0).0,
            CorruptionStyle::Zeroed,
        ),
        ("inode_table", itable_mid, CorruptionStyle::RandomNoise),
    ];
    for (name, addr, style) in victims {
        let (dev, layout) = build_image(10, 5_000);
        let mut fdev = FaultyDisk::new(dev);
        land_corruption(&mut fdev, &layout, addr, style);

        let engine = FsckEngine::with_threads(2);
        let mut img = Ext3Image::new(fdev, layout);
        let (before, summary, after) = engine
            .check_and_repair(&mut img)
            .unwrap_or_else(|e| panic!("{name}: repair failed: {e}"));
        assert!(!before.is_clean(), "{name}: damage must be detected");
        let plan = RepairPlan::new(&before.issues);
        assert_eq!(summary.applied, plan.fixable(), "{name}");
        assert!(
            after.same_issues(&plan.deferred_issues()),
            "{name}: after != deferred:\n  after: {:?}",
            after.issues
        );
    }
}

/// The corruption fabrication is deterministic, so an identical campaign
/// after a full repair must find — and fix — the identical issue set:
/// the inverse-fix bookkeeping restores the exact pre-damage state.
#[test]
fn repeated_campaign_is_deterministic() {
    let (dev, layout) = build_image(8, 5_000);
    let mut fdev = FaultyDisk::new(dev);
    land_corruption(
        &mut fdev,
        &layout,
        layout.data_bitmap(0).0,
        CorruptionStyle::BitFlip { offset: 33, len: 2 },
    );
    let engine = FsckEngine::with_threads(1);
    let mut img = Ext3Image::new(fdev, layout);
    let first = engine.check(&img);
    assert!(!first.is_clean());
    let (_, s1, after) = engine.check_and_repair(&mut img).unwrap();
    assert!(s1.applied > 0);
    assert!(after.is_clean());
    // Same damage again: deterministic fabrication corrupts identically,
    // so the second campaign repairs the identical issue set.
    land_corruption(
        img.device_mut(),
        &layout,
        layout.data_bitmap(0).0,
        CorruptionStyle::BitFlip { offset: 33, len: 2 },
    );
    let second = engine.check(&img);
    assert_eq!(second.issues, first.issues);
    let (_, s2, after2) = engine.check_and_repair(&mut img).unwrap();
    assert_eq!(s2.applied, s1.applied);
    assert!(after2.is_clean());
}

//! Stress lane (`cargo test -- --ignored`, CI's scheduled/opt-in job):
//! the fsck engine's parallel==sequential property at elevated thread
//! counts over many damaged images. The default tier
//! (`differential.rs`) proves it at widths 2 and 4; this lane re-proves
//! it at `IRON_TEST_THREADS` across `IRON_STRESS_ITERS` seeds.

mod common;

use common::{build_image, corrupt_block, victims, Lcg};
use iron_ext3::fsck::{check, Ext3Image};
use iron_fsck::FsckEngine;

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
#[ignore = "stress lane; run with --ignored (IRON_TEST_THREADS, IRON_STRESS_ITERS)"]
fn fsck_matches_oracle_at_elevated_threads() {
    let threads = env_or("IRON_TEST_THREADS", 16);
    let iters = env_or("IRON_STRESS_ITERS", 24);
    for round in 0..iters as u64 {
        let (mut dev, layout) = build_image(12, 5_000);
        let classes = victims(&dev, &layout);
        let mut rng = Lcg(round.wrapping_mul(0x9E37_79B9) ^ 0x57E5);
        for _ in 0..1 + round % 5 {
            let (_, addrs) = &classes[rng.next() as usize % classes.len()];
            if addrs.is_empty() {
                continue;
            }
            let addr = addrs[rng.next() as usize % addrs.len()];
            corrupt_block(&mut dev, addr, rng.next(), rng.next());
        }
        let oracle = check(&dev, &layout);
        let img = Ext3Image::new(dev, layout);
        let report = FsckEngine::with_threads(threads).check(&img);
        assert!(
            report.same_issues(&oracle.issues),
            "round {round}: t={threads} diverged from sequential oracle\n  \
             engine: {:?}\n  oracle: {:?}",
            report.issues,
            oracle.issues
        );
    }
}

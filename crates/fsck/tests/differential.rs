//! The differential-oracle and repair-idempotence properties, the two
//! invariants the parallel engine is held to:
//!
//! 1. On every image — healthy or corrupted — the parallel engine must
//!    report the *identical* issue multiset as the sequential oracle
//!    (`iron_ext3::fsck::check`), at every thread count.
//! 2. Check → repair → check must leave exactly the planner's *deferred*
//!    issues (the data-loss cases fsck refuses to touch): everything
//!    fixable is fixed, and fixing it creates no new damage.
//!
//! Runs on the in-tree `iron-testkit` harness: a failure prints its case
//! seed and reruns deterministically with
//! `IRON_TESTKIT_SEED=<seed> cargo test -q <test_name>`.

mod common;

use common::{build_image, corrupt_block, victims, Lcg};
use iron_ext3::fsck::{check, Ext3Image};
use iron_fsck::{FsckEngine, RepairPlan};
use iron_testkit::gen;
use iron_testkit::prop::{check as prop_check, Config};

/// Corrupt `n` typed blocks chosen by `seed`, returning the damaged image.
fn damaged_image(n: usize, seed: u64) -> (iron_blockdev::MemDisk, iron_ext3::DiskLayout) {
    let (mut dev, layout) = build_image(12, 5_000);
    let classes = victims(&dev, &layout);
    let mut rng = Lcg(seed ^ 0xD1FF_95EE);
    for _ in 0..n {
        let (_, addrs) = &classes[rng.next() as usize % classes.len()];
        if addrs.is_empty() {
            continue;
        }
        let addr = addrs[rng.next() as usize % addrs.len()];
        corrupt_block(&mut dev, addr, rng.next(), rng.next());
    }
    (dev, layout)
}

#[test]
fn parallel_matches_sequential_oracle() {
    let inputs = (gen::usize_in(1..6), gen::u64_in(0..1 << 62));
    prop_check(
        "parallel_matches_sequential_oracle",
        Config::cases(24),
        &inputs,
        |&(n, seed)| {
            let (dev, layout) = damaged_image(n, seed);
            let oracle = check(&dev, &layout);
            let img = Ext3Image::new(dev, layout);
            let baseline = FsckEngine::with_threads(1).check(&img);
            assert!(
                baseline.same_issues(&oracle.issues),
                "t=1 vs oracle:\n  engine: {:?}\n  oracle: {:?}",
                baseline.issues,
                oracle.issues
            );
            for threads in [2, 4] {
                let report = FsckEngine::with_threads(threads).check(&img);
                // Sorted canonical order: reports are comparable verbatim.
                assert_eq!(
                    report.issues, baseline.issues,
                    "t={threads} diverged from t=1"
                );
            }
        },
    );
}

#[test]
fn repair_is_idempotent_and_complete() {
    let inputs = (gen::usize_in(1..5), gen::u64_in(0..1 << 62));
    prop_check(
        "repair_is_idempotent_and_complete",
        Config::cases(20),
        &inputs,
        |&(n, seed)| {
            let (dev, layout) = damaged_image(n, seed);
            let mut img = Ext3Image::new(dev, layout);
            let engine = FsckEngine::with_threads(4);
            let (before, summary, after) = engine
                .check_and_repair(&mut img)
                .expect("repair must not fail on poke-corrupted images");
            let plan = RepairPlan::new(&before.issues);
            assert_eq!(summary.applied, plan.fixable());
            assert_eq!(summary.deferred, plan.deferred());
            assert!(
                after.same_issues(&plan.deferred_issues()),
                "second check must report exactly the deferred issues:\n  after: {:?}\n  deferred: {:?}",
                after.issues,
                plan.deferred_issues()
            );
            // And repairing again fixes nothing new: a fixpoint.
            let (b2, s2, a2) = engine.check_and_repair(&mut img).unwrap();
            assert_eq!(b2.issues, after.issues);
            assert_eq!(s2.applied, 0, "no new fixes on the second pass");
            assert_eq!(a2.issues, after.issues);
        },
    );
}

#[test]
fn healthy_image_is_clean_at_every_width() {
    let (dev, layout) = build_image(12, 5_000);
    let oracle = check(&dev, &layout);
    assert!(oracle.is_clean(), "{:?}", oracle.issues);
    let img = Ext3Image::new(dev, layout);
    for threads in [1, 2, 4, 8] {
        let report = FsckEngine::with_threads(threads).check(&img);
        assert!(report.is_clean(), "t={threads}: {:?}", report.issues);
        assert_eq!(report.stats.threads, threads);
        assert!(report.stats.inodes_walked > 0);
        assert!(report.stats.blocks_reconciled > 0);
    }
}

/// Exhaustive per-class sweep: one corruption of every victim class, each
/// style, compared against the oracle at 1 and 4 threads. Deterministic
/// companion to the seeded property above.
#[test]
fn every_victim_class_agrees_with_oracle() {
    for class_idx in 0..7 {
        for style in 0..4u64 {
            let (mut dev, layout) = build_image(9, 5_000);
            let classes = victims(&dev, &layout);
            let (name, addrs) = &classes[class_idx];
            let addr = addrs[addrs.len() / 2];
            corrupt_block(&mut dev, addr, style, 0x5EED ^ (style << 32) ^ addr);
            let oracle = check(&dev, &layout);
            let img = Ext3Image::new(dev, layout);
            for threads in [1, 4] {
                let report = FsckEngine::with_threads(threads).check(&img);
                assert!(
                    report.same_issues(&oracle.issues),
                    "class={name} style={style} t={threads}:\n  engine: {:?}\n  oracle: {:?}",
                    report.issues,
                    oracle.issues
                );
            }
        }
    }
}

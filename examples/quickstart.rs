//! Quickstart: format, mount, and use an IRON file system — then watch it
//! shrug off a disk fault that would silently corrupt stock ext3.
//!
//! Run with: `cargo run --example quickstart`

use ironfs::prelude::*;

fn main() {
    // 1. A 16 MiB simulated disk with the fault-injection layer above
    //    it, formatted and mounted as the full ixt3 in one chain:
    //    metadata+data checksums, metadata replication, per-file parity,
    //    transactional checksums.
    let plan = FaultPlan::new();
    let faults = plan.controller();
    let env = FsEnv::new();
    let fs = StackBuilder::memdisk(4096)
        .with_faults(plan)
        .mount_ixt3_full(env.clone(), Ext3Params::small())
        .expect("mount");
    let mut v = Vfs::new(fs);

    // 2. Ordinary POSIX-style use.
    v.mkdir("/photos", 0o755).unwrap();
    let album: Vec<u8> = (0..60_000u32).map(|i| (i % 251) as u8).collect();
    v.write_file("/photos/vacation.raw", &album).unwrap();
    v.sync().unwrap();
    println!("wrote {} bytes to /photos/vacation.raw", album.len());

    // 3. Disaster: a latent sector error takes out an inode-table block.
    faults.inject(FaultSpec::sticky(
        FaultKind::ReadError,
        FaultTarget::Tag(BlockTag("inode")),
    ));
    println!("injected: sticky read failure on the next inode-table access");

    // 4. ixt3 recovers from its distant replica — the application never
    //    notices. (Stock ext3 would return EIO and remount read-only.)
    let back = v.read_file("/photos/vacation.raw").expect("ixt3 recovers");
    assert_eq!(back, album);
    println!(
        "read back {} bytes intact — RRedundancy in action",
        back.len()
    );

    for line in env.klog.entries() {
        println!("  klog: {line}");
    }
}

//! The paper's §5 in miniature: hit each commodity file system with the
//! same fault — a failed metadata write — and watch four different failure
//! policies unfold:
//!
//! * ext3 ignores it entirely (the paper's headline bug),
//! * ReiserFS panics the machine ("first, do no harm"),
//! * JFS ignores it too (kitchen-sink policy, wrong drawer),
//! * NTFS retries, then propagates the error.
//!
//! Unlike the first version of this example (four hand-rolled single-fault
//! demos), this goes through the real fingerprinting campaign: one
//! [`fingerprint_fs`] call per file system, sharded over the shared
//! parallel executor, and the policy read out of the resulting matrix
//! cell — exactly how Figure 2 is made, just restricted to one row.
//!
//! Run with: `cargo run --release --example failure_policy_comparison`

use ironfs::prelude::*;

/// The campaign, restricted to the §5 vignette: one metadata row, the
/// workloads that flush metadata (write + fsync/sync), the write-failure
/// mode. `threads: 0` (the default) shards cells over one worker per
/// hardware thread; the matrix is bit-identical at any width.
fn one_cell(adapter: &dyn FsUnderTest, row: &'static str) -> String {
    let opts = CampaignOptions {
        modes: vec![FaultMode::WriteError],
        workloads: vec![Workload::Write, Workload::SyncFamily],
        rows: vec![BlockTag(row)],
        ..CampaignOptions::default()
    };
    let m = fingerprint_fs(adapter, &opts);
    // Report whichever column the fault fired under (write for NTFS's
    // in-place MFT update, fsync/sync for the journaling checkpoints).
    for col in 0..m.cols.len() {
        if let Some(cell) = m.cell(0, 0, col) {
            return format!(
                "detection {{{}}}  recovery {{{}}}",
                cell.detection, cell.recovery
            );
        }
    }
    "gray (fault never fired)".to_string()
}

fn main() {
    println!("One fault, four policies: fail a metadata write\n");
    let cases: [(&dyn FsUnderTest, &'static str, &'static str); 4] = [
        (
            &Ext3Adapter::stock(),
            "inode",
            "error silently ignored (PAPER-BUG)",
        ),
        (&ReiserAdapter, "leaf", "panics: \"first, do no harm\""),
        (&JfsAdapter, "inode", "checkpoint error dropped"),
        (&NtfsAdapter, "MFT record", "retries, then propagates"),
    ];
    for (adapter, row, gloss) in cases {
        println!(
            "{:<10} {:<44} ({gloss})",
            adapter.name(),
            one_cell(adapter, row)
        );
    }

    println!();
    println!("(the fingerprinting framework does this for ~780 scenarios per file system —");
    println!(" run `cargo run --release --bin figure2` to regenerate the paper's Figure 2)");
}

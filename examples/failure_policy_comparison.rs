//! The paper's §5 in miniature: hit each commodity file system with the
//! same fault — a failed metadata write — and watch four different failure
//! policies unfold:
//!
//! * ext3 ignores it entirely (the paper's headline bug),
//! * ReiserFS panics the machine ("first, do no harm"),
//! * JFS ignores it too (kitchen-sink policy, wrong drawer),
//! * NTFS retries, then propagates the error.
//!
//! Run with: `cargo run --example failure_policy_comparison`

use ironfs::prelude::*;

fn report(name: &str, outcome: &str, env: &FsEnv) {
    let state = match env.state() {
        MountState::ReadWrite => "still read-write",
        MountState::ReadOnly => "remounted read-only",
        MountState::Crashed => "KERNEL PANIC",
        MountState::Unmounted => "unmounted",
    };
    println!("{name:<10} {outcome:<40} [{state}]");
    if let Some(e) = env.klog.entries().last() {
        println!("{:>10} last klog: {e}", "");
    }
    println!();
}

/// A formatted disk under a fault layer armed with a sticky write error
/// aimed at `tag`.
fn faulty_stack(mkfs: impl FnOnce(&mut MemDisk), tag: &'static str) -> FaultyDisk<MemDisk> {
    let mut md = MemDisk::for_tests(4096);
    mkfs(&mut md);
    let faulty = StackBuilder::new(md).layer(FaultyDisk::new).build();
    faulty.controller().inject(FaultSpec::sticky(
        FaultKind::WriteError,
        FaultTarget::Tag(BlockTag(tag)),
    ));
    faulty
}

fn main() {
    println!("One fault, four policies: fail every metadata write\n");

    // ext3: write errors are ignored (PAPER-BUG).
    {
        let faulty = faulty_stack(
            |md| Ext3Fs::<MemDisk>::mkfs(md, Ext3Params::small()).unwrap(),
            "inode",
        );
        let env = FsEnv::new();
        let fs = Ext3Fs::mount(faulty, env.clone(), Default::default()).unwrap();
        let mut v = Vfs::new(fs);
        v.write_file("/f", b"x").unwrap();
        let r = v.sync();
        report(
            "ext3",
            &format!("sync() -> {:?}  (error silently ignored!)", r.is_ok()),
            &env,
        );
    }

    // ReiserFS: panic.
    {
        let faulty = faulty_stack(
            |md| ReiserFs::<MemDisk>::mkfs(md, ReiserParams::small()).unwrap(),
            "leaf",
        );
        let env = FsEnv::new();
        let fs = ReiserFs::mount(faulty, env.clone(), Default::default()).unwrap();
        let mut v = Vfs::new(fs);
        v.write_file("/f", b"x").unwrap();
        let r = v.sync();
        report("ReiserFS", &format!("sync() -> {r:?}"), &env);
    }

    // JFS: ignored (except the journal superblock).
    {
        let faulty = faulty_stack(
            |md| JfsFs::<MemDisk>::mkfs(md, JfsParams::small()).unwrap(),
            "inode",
        );
        let env = FsEnv::new();
        let fs = JfsFs::mount(faulty, env.clone(), Default::default()).unwrap();
        let mut v = Vfs::new(fs);
        v.write_file("/f", b"x").unwrap();
        let r = v.sync();
        report(
            "JFS",
            &format!("sync() -> {:?}  (checkpoint error dropped)", r.is_ok()),
            &env,
        );
    }

    // NTFS: retry, retry, then tell the user.
    {
        let faulty = faulty_stack(
            |md| NtfsFs::<MemDisk>::mkfs(md, NtfsParams::small()).unwrap(),
            "MFT record",
        );
        let env = FsEnv::new();
        let fs = NtfsFs::mount(faulty, env.clone(), Default::default()).unwrap();
        let mut v = Vfs::new(fs);
        let r = v.write_file("/f", b"x");
        report("NTFS", &format!("write() -> {r:?}"), &env);
    }

    println!("(the fingerprinting framework does this for ~780 scenarios per file system —");
    println!(" run `cargo run --release --bin figure2` to regenerate the paper's Figure 2)");
}

//! The paper's §5 in miniature: hit each commodity file system with the
//! same fault — a failed metadata write — and watch four different failure
//! policies unfold:
//!
//! * ext3 ignores it entirely (the paper's headline bug),
//! * ReiserFS panics the machine ("first, do no harm"),
//! * JFS ignores it too (kitchen-sink policy, wrong drawer),
//! * NTFS retries, then propagates the error.
//!
//! Run with: `cargo run --example failure_policy_comparison`

use ironfs::blockdev::MemDisk;
use ironfs::core::{BlockTag, FaultKind};
use ironfs::faultinject::{FaultSpec, FaultTarget, FaultyDisk};
use ironfs::vfs::{FsEnv, MountState, Vfs};

fn report(name: &str, outcome: &str, env: &FsEnv) {
    let state = match env.state() {
        MountState::ReadWrite => "still read-write",
        MountState::ReadOnly => "remounted read-only",
        MountState::Crashed => "KERNEL PANIC",
        MountState::Unmounted => "unmounted",
    };
    println!("{name:<10} {outcome:<40} [{state}]");
    if let Some(e) = env.klog.entries().last() {
        println!("{:>10} last klog: {e}", "");
    }
    println!();
}

fn main() {
    println!("One fault, four policies: fail every metadata write\n");

    // ext3: write errors are ignored (PAPER-BUG).
    {
        let mut md = MemDisk::for_tests(4096);
        ironfs::ext3::Ext3Fs::<MemDisk>::mkfs(&mut md, ironfs::ext3::Ext3Params::small()).unwrap();
        let faulty = FaultyDisk::new(md);
        faulty.controller().inject(FaultSpec::sticky(
            FaultKind::WriteError,
            FaultTarget::Tag(BlockTag("inode")),
        ));
        let env = FsEnv::new();
        let fs = ironfs::ext3::Ext3Fs::mount(faulty, env.clone(), Default::default()).unwrap();
        let mut v = Vfs::new(fs);
        v.write_file("/f", b"x").unwrap();
        let r = v.sync();
        report(
            "ext3",
            &format!("sync() -> {:?}  (error silently ignored!)", r.is_ok()),
            &env,
        );
    }

    // ReiserFS: panic.
    {
        let mut md = MemDisk::for_tests(4096);
        ironfs::reiser::ReiserFs::<MemDisk>::mkfs(&mut md, ironfs::reiser::ReiserParams::small())
            .unwrap();
        let faulty = FaultyDisk::new(md);
        faulty.controller().inject(FaultSpec::sticky(
            FaultKind::WriteError,
            FaultTarget::Tag(BlockTag("leaf")),
        ));
        let env = FsEnv::new();
        let fs = ironfs::reiser::ReiserFs::mount(faulty, env.clone(), Default::default()).unwrap();
        let mut v = Vfs::new(fs);
        v.write_file("/f", b"x").unwrap();
        let r = v.sync();
        report("ReiserFS", &format!("sync() -> {r:?}"), &env);
    }

    // JFS: ignored (except the journal superblock).
    {
        let mut md = MemDisk::for_tests(4096);
        ironfs::jfs::JfsFs::<MemDisk>::mkfs(&mut md, ironfs::jfs::JfsParams::small()).unwrap();
        let faulty = FaultyDisk::new(md);
        faulty.controller().inject(FaultSpec::sticky(
            FaultKind::WriteError,
            FaultTarget::Tag(BlockTag("inode")),
        ));
        let env = FsEnv::new();
        let fs = ironfs::jfs::JfsFs::mount(faulty, env.clone(), Default::default()).unwrap();
        let mut v = Vfs::new(fs);
        v.write_file("/f", b"x").unwrap();
        let r = v.sync();
        report(
            "JFS",
            &format!("sync() -> {:?}  (checkpoint error dropped)", r.is_ok()),
            &env,
        );
    }

    // NTFS: retry, retry, then tell the user.
    {
        let mut md = MemDisk::for_tests(4096);
        ironfs::ntfs::NtfsFs::<MemDisk>::mkfs(&mut md, ironfs::ntfs::NtfsParams::small()).unwrap();
        let faulty = FaultyDisk::new(md);
        faulty.controller().inject(FaultSpec::sticky(
            FaultKind::WriteError,
            FaultTarget::Tag(BlockTag("MFT record")),
        ));
        let env = FsEnv::new();
        let fs = ironfs::ntfs::NtfsFs::mount(faulty, env.clone(), Default::default()).unwrap();
        let mut v = Vfs::new(fs);
        let r = v.write_file("/f", b"x");
        report("NTFS", &format!("write() -> {r:?}"), &env);
    }

    println!("(the fingerprinting framework does this for ~780 scenarios per file system —");
    println!(" run `cargo run --release --bin figure2` to regenerate the paper's Figure 2)");
}

//! Crash recovery and the transactional checksum (§6.1): a crash leaves a
//! committed-but-unflushed transaction in the journal; we then corrupt one
//! journal block. Stock ext3 replays the garbage straight over its own
//! metadata; ixt3's transactional checksum detects the damage and skips
//! the transaction.
//!
//! Run with: `cargo run --example crash_recovery`

use ironfs::ext3::DiskLayout;
use ironfs::prelude::*;

/// Build an image whose journal holds one committed, un-checkpointed
/// transaction, then corrupt its first journal-data block.
fn crashed_image(tc: bool) -> MemDisk {
    let params = Ext3Params::small();
    let iron = IronConfig {
        txn_checksum: tc,
        ..IronConfig::off()
    };
    let opts = Ext3Options {
        iron,
        crash_mode: true, // commits stop after the commit block
        ..Default::default()
    };
    let fs = StackBuilder::memdisk(4096)
        .mount_ext3(FsEnv::new(), params, opts)
        .unwrap();
    let mut v = Vfs::new(fs);
    v.mkdir("/important", 0o755).unwrap();
    v.write_file("/important/ledger", b"the only copy").unwrap();
    v.sync().unwrap(); // journal durable; checkpoint never happens
    let mut dev = v.into_fs().into_device(); // CRASH

    // Disk corruption strikes the journal while the machine is down.
    let layout = DiskLayout::compute(params);
    for a in layout.journal_start..layout.journal_start + layout.journal_len {
        let b = dev.peek(BlockAddr(a));
        if !b.is_zeroed() && ironfs::ext3::journal::classify_log_block(&b).is_none() {
            // First journal-data block: overwrite with garbage.
            dev.poke(BlockAddr(a), &Block::filled(0xDB));
            break;
        }
    }
    dev
}

fn main() {
    println!("A crash + journal corruption, replayed two ways:\n");

    // Stock ext3: no journal-data checking — garbage is replayed.
    {
        let env = FsEnv::new();
        let fs = Ext3Fs::mount(crashed_image(false), env.clone(), Ext3Options::default())
            .expect("mount");
        let mut v = Vfs::new(fs);
        println!("ext3 (no Tc):");
        println!(
            "  stat /important        -> {:?}",
            v.stat("/important").map(|a| a.ftype)
        );
        println!(
            "  stat /important/ledger -> {:?}",
            v.stat("/important/ledger").map(|a| a.size)
        );
        println!("  (some metadata block now contains 0xDB garbage — corruption was replayed)\n");
    }

    // ixt3 with Tc: the transaction checksum catches it.
    {
        let env = FsEnv::new();
        let opts = Ext3Options::with_iron(IronConfig {
            txn_checksum: true,
            ..IronConfig::off()
        });
        let fs = Ext3Fs::mount(crashed_image(true), env.clone(), opts).expect("mount");
        let mut v = Vfs::new(fs);
        println!("ixt3 (Tc on):");
        println!(
            "  transactional checksum mismatch logged: {}",
            env.klog.contains("transactional checksum mismatch")
        );
        println!(
            "  stat /important        -> {:?}  (transaction skipped: the dir never existed)",
            v.stat("/important").map(|a| a.ftype)
        );
        println!("  the damaged transaction was rejected; the file system stays consistent");
        println!("  (and Tc also makes commits ~20% faster on sync-heavy workloads — Table 6)");
    }
}

//! Eager detection (§3.2): silent corruption sits on the platter like a
//! land mine until someone reads it — unless a scrubber sweeps the disk
//! first. This example corrupts blocks behind the file system's back and
//! lets the ixt3 scrubber find and repair them before any reader trips.
//!
//! Run with: `cargo run --example disk_scrubbing`

use ironfs::ixt3::scrub::scrub;
use ironfs::prelude::*;

fn main() {
    let env = FsEnv::new();
    let mut fs = StackBuilder::memdisk(4096)
        .mount_ixt3_full(env.clone(), Ext3Params::small())
        .expect("mount");

    // A handful of files the user cares about.
    {
        let mut v = Vfs::new(&mut fs as &mut dyn SpecificFs);
        for i in 0..8 {
            v.write_file(&format!("/doc{i}.txt"), &vec![0x40 + i as u8; 24_000])
                .unwrap();
        }
        v.sync().unwrap();
    }

    // Bit rot strikes: three blocks silently decay on the medium.
    let victims = [
        fs.layout().inode_table(0),    // an inode-table block
        fs.layout().data_start(0) + 5, // two data blocks
        fs.layout().data_start(0) + 11,
    ];
    for v in victims {
        fs.device_mut().poke(BlockAddr(v), &Block::filled(0xEB));
    }
    println!("silently corrupted blocks {victims:?} on the medium\n");

    // Eager detection: one scrub pass.
    let report = scrub(&mut fs);
    println!(
        "scrub: scanned {} blocks, found {} corruptions, repaired {} in place, {} unrecoverable",
        report.scanned, report.corruptions, report.repaired, report.unrecoverable
    );

    // Everything reads back clean — no reader ever saw the damage.
    let mut v = Vfs::new(&mut fs as &mut dyn SpecificFs);
    for i in 0..8 {
        let data = v.read_file(&format!("/doc{i}.txt")).unwrap();
        assert_eq!(data, vec![0x40 + i as u8; 24_000]);
    }
    println!("all files verified intact after scrub");
    println!("\n(compare `cargo run --release --bin scrubbing_ablation` for the");
    println!(" detection-latency numbers behind lazy vs. eager detection)");
}

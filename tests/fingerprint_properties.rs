//! Integration tests of the fingerprinting framework against the paper's
//! §5/§6 claims: reduced campaigns per file system, asserting the
//! *qualitative* findings of Figure 2, Figure 3, and Table 5.

use ironfs::core::{BlockTag, DetectionLevel, RecoveryLevel};
use ironfs::fingerprint::campaign::{fingerprint_fs, CampaignOptions, FaultMode, PolicyMatrix};
use ironfs::fingerprint::summary::summarize;
use ironfs::fingerprint::workloads::Workload;
use ironfs::fingerprint::{Ext3Adapter, FsUnderTest, JfsAdapter, NtfsAdapter, ReiserAdapter};

/// A reduced-but-representative campaign: all three fault modes, a
/// metadata row + a data row + journal rows, across seven workloads.
fn reduced(adapter: &dyn FsUnderTest, rows: &[&'static str]) -> PolicyMatrix {
    fingerprint_fs(
        adapter,
        &CampaignOptions {
            modes: FaultMode::ALL.to_vec(),
            workloads: vec![
                Workload::AccessFamily,
                Workload::Read,
                Workload::Write,
                Workload::Unlink,
                Workload::Mount,
                Workload::Recovery,
                Workload::LogWrites,
            ],
            rows: rows.iter().map(|r| BlockTag(r)).collect(),
            ..CampaignOptions::default()
        },
    )
}

fn count_level_r(m: &PolicyMatrix, level: RecoveryLevel) -> usize {
    m.cells
        .values()
        .flatten()
        .filter(|c| c.recovery.contains(level))
        .count()
}

fn count_level_d(m: &PolicyMatrix, level: DetectionLevel) -> usize {
    m.cells
        .values()
        .flatten()
        .filter(|c| c.detection.contains(level))
        .count()
}

#[test]
fn ext3_ignores_write_errors_and_stops_on_read_errors() {
    let m = reduced(&Ext3Adapter::stock(), &["inode", "data", "j-data"]);
    // Write-failure panel (mode index 1): DZero dominates for ext3.
    let write_mode = 1;
    let mut dzero_writes = 0;
    let mut fired_writes = 0;
    for ri in 0..m.rows.len() {
        for ci in 0..m.cols.len() {
            if let Some(cell) = m.cell(write_mode, ri, ci) {
                fired_writes += 1;
                if cell.detection.contains(DetectionLevel::DZero) {
                    dzero_writes += 1;
                }
            }
        }
    }
    assert!(fired_writes > 0);
    assert!(
        dzero_writes * 2 >= fired_writes,
        "most ext3 write failures must be ignored ({dzero_writes}/{fired_writes})"
    );
    // Read failures: RStop appears (journal aborts).
    assert!(count_level_r(&m, RecoveryLevel::RStop) > 0);
    // And no redundancy anywhere — the paper's headline for Table 5.
    assert_eq!(count_level_r(&m, RecoveryLevel::RRedundancy), 0);
}

#[test]
fn reiserfs_panics_on_write_failures() {
    let m = reduced(&ReiserAdapter, &["stat item", "data", "j-data"]);
    let write_mode = 1;
    let mut stops = 0;
    let mut fired = 0;
    for ri in 0..m.rows.len() {
        for ci in 0..m.cols.len() {
            if let Some(cell) = m.cell(write_mode, ri, ci) {
                fired += 1;
                if cell.recovery.contains(RecoveryLevel::RStop) {
                    stops += 1;
                }
            }
        }
    }
    assert!(fired > 0);
    // "First, do no harm": metadata/journal write failures panic. The one
    // exception is the ordered-data-write bug.
    assert!(
        stops + 2 >= fired,
        "ReiserFS must stop on (almost) any write failure: {stops}/{fired}"
    );
    // Sanity checking is heavy (corruption detected on tree items).
    assert!(count_level_d(&m, DetectionLevel::DSanity) > 0);
}

#[test]
fn jfs_retries_reads_and_ntfs_retries_hardest() {
    let jfs = reduced(&JfsAdapter, &["inode", "data"]);
    let ntfs = reduced(&NtfsAdapter, &["MFT record", "data"]);
    let jfs_retries = count_level_r(&jfs, RecoveryLevel::RRetry);
    let ntfs_retries = count_level_r(&ntfs, RecoveryLevel::RRetry);
    assert!(jfs_retries > 0, "JFS's generic code retries reads once");
    assert!(ntfs_retries > 0, "NTFS retries aggressively");
}

#[test]
fn commodity_fs_use_no_redundancy_but_ixt3_does() {
    // Table 5's bottom line: RRedundancy is essentially absent from the
    // commodity file systems (JFS's alternate superblock aside), while
    // ixt3 uses it pervasively.
    let rows = &["inode", "data"];
    let ext3 = reduced(&Ext3Adapter::stock(), rows);
    let reiser = reduced(&ReiserAdapter, &["stat item", "data"]);
    let ixt3 = reduced(&Ext3Adapter::ixt3(), rows);

    assert_eq!(count_level_r(&ext3, RecoveryLevel::RRedundancy), 0);
    assert_eq!(count_level_r(&reiser, RecoveryLevel::RRedundancy), 0);
    let ixt3_red = count_level_r(&ixt3, RecoveryLevel::RRedundancy);
    assert!(
        ixt3_red >= 10,
        "ixt3 must recover via redundancy widely (got {ixt3_red})"
    );
    // And DRedundancy (checksums) appears only for ixt3.
    assert_eq!(count_level_d(&ext3, DetectionLevel::DRedundancy), 0);
    assert!(count_level_d(&ixt3, DetectionLevel::DRedundancy) > 0);
}

#[test]
fn ixt3_survives_corruption_that_defeats_ext3() {
    let rows = &["inode", "dir", "data"];
    let ext3 = reduced(&Ext3Adapter::stock(), rows);
    let ixt3 = reduced(&Ext3Adapter::ixt3(), rows);
    let corrupt_mode = 2;

    let undetected = |m: &PolicyMatrix| {
        let mut n = 0;
        for ri in 0..m.rows.len() {
            for ci in 0..m.cols.len() {
                if let Some(cell) = m.cell(corrupt_mode, ri, ci) {
                    if cell.detection.contains(DetectionLevel::DZero) {
                        n += 1;
                    }
                }
            }
        }
        n
    };
    assert!(
        undetected(&ext3) > 0,
        "stock ext3 must silently consume some corruption"
    );
    assert_eq!(
        undetected(&ixt3),
        0,
        "full ixt3 must detect every injected corruption"
    );
}

#[test]
fn table5_summary_matches_paper_ordering() {
    // The paper's Table 5: ReiserFS leads on sanity checking; ext3 and JFS
    // ignore more write errors (DZero) than ReiserFS does.
    let ext3 = summarize(&reduced(
        &Ext3Adapter::stock(),
        &["inode", "data", "j-data"],
    ));
    let reiser = summarize(&reduced(&ReiserAdapter, &["stat item", "data", "j-data"]));

    let get_d = |s: &ironfs::fingerprint::summary::TechniqueSummary, l: DetectionLevel| {
        s.detection_counts
            .iter()
            .find(|(x, _)| *x == l)
            .map(|(_, c)| *c)
            .unwrap_or(0) as f64
            / s.relevant.max(1) as f64
    };
    assert!(
        get_d(&ext3, DetectionLevel::DZero) > get_d(&reiser, DetectionLevel::DZero),
        "ext3 must ignore relatively more faults than ReiserFS"
    );
}

#[test]
fn parallel_campaign_is_bit_identical_to_sequential() {
    // The tentpole guarantee: sharding the cell cross product over worker
    // threads must not change a single cell. Run the same reduced ext3
    // campaign sequentially and at several widths and compare the
    // matrices cell for cell.
    let base = CampaignOptions {
        modes: FaultMode::ALL.to_vec(),
        workloads: vec![
            Workload::Read,
            Workload::Write,
            Workload::Mount,
            Workload::Recovery,
        ],
        rows: vec![BlockTag("inode"), BlockTag("data"), BlockTag("j-data")],
        ..CampaignOptions::default()
    };
    let adapter = Ext3Adapter::stock();
    let seq = fingerprint_fs(&adapter, &base.clone().with_threads(1));
    assert!(seq.relevant > 0, "the reduced campaign must fire cells");
    for threads in [2, 4, 8] {
        let par = fingerprint_fs(&adapter, &base.clone().with_threads(threads));
        assert_eq!(
            seq.cells, par.cells,
            "matrix at {threads} threads differs from sequential"
        );
        assert_eq!(seq.relevant, par.relevant);
        assert_eq!(seq.rows, par.rows);
        assert_eq!(seq.cols, par.cols);
    }
}

#[test]
fn gray_cells_match_inapplicability() {
    // Journal rows can only fire during log writes / sync / recovery; a
    // read-only workload leaves them gray.
    let m = fingerprint_fs(
        &Ext3Adapter::stock(),
        &CampaignOptions {
            modes: vec![FaultMode::ReadError],
            workloads: vec![Workload::Read, Workload::Getdirentries],
            rows: vec![BlockTag("j-desc"), BlockTag("j-commit")],
            ..CampaignOptions::default()
        },
    );
    assert_eq!(m.relevant, 0, "journal rows are gray under read workloads");
}

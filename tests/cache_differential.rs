//! Differential tests of the full storage stack with and without the
//! buffer cache: a file system mounted over a write-back cache must be
//! observationally identical to the same file system on the bare disk —
//! same syscall results, same on-medium image after unmount — and the
//! write-through mode must preserve fault-injection traces byte for byte.
//!
//! Runs on the in-tree `iron-testkit` harness: every case is generated
//! from a reported seed, so any failure reruns deterministically with
//! `IRON_TESTKIT_SEED=<seed> cargo test -q <test_name>`.

use iron_testkit::gen::{self, Gen};
use iron_testkit::prop::{check, Config};
use ironfs::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Write(u8, Vec<u8>),
    Read(u8),
    Mkdir(u8),
    Unlink(u8),
    Stat(u8),
    Sync,
}

fn path(n: u8) -> String {
    match n % 8 {
        0 => "/a".into(),
        1 => "/b".into(),
        2 => "/dir".into(),
        3 => "/dir/x".into(),
        4 => "/dir/y".into(),
        5 => "/f1".into(),
        6 => "/f2".into(),
        _ => "/f3".into(),
    }
}

fn op_gen() -> impl Gen<Value = Op> {
    gen::one_of(vec![
        (gen::u8_any(), gen::bytes(0..3000))
            .map(|(p, d)| Op::Write(p, d))
            .boxed(),
        gen::u8_any().map(Op::Read).boxed(),
        gen::u8_any().map(Op::Mkdir).boxed(),
        gen::u8_any().map(Op::Unlink).boxed(),
        gen::u8_any().map(Op::Stat).boxed(),
        gen::just(Op::Sync).boxed(),
    ])
}

fn apply<F: SpecificFs>(v: &mut Vfs<F>, op: &Op) -> Result<Vec<u8>, VfsError> {
    match op {
        Op::Write(p, data) => v.write_file(&path(*p), data).map(|()| vec![]),
        Op::Read(p) => v.read_file(&path(*p)),
        Op::Mkdir(p) => v.mkdir(&path(*p), 0o755).map(|_| vec![]),
        Op::Unlink(p) => v.unlink(&path(*p)).map(|()| vec![]),
        Op::Stat(p) => v.stat(&path(*p)).map(|a| a.size.to_le_bytes().to_vec()),
        Op::Sync => v.sync().map(|()| vec![]),
    }
}

fn drive<F: SpecificFs>(mut v: Vfs<F>, ops: &[Op]) -> Vec<String> {
    ops.iter()
        .map(|op| format!("{:?}", apply(&mut v, op)))
        .collect()
}

fn mkfs_image() -> MemDisk {
    let mut md = MemDisk::for_tests(4096);
    Ext3Fs::<MemDisk>::mkfs(&mut md, Ext3Params::small()).unwrap();
    md
}

/// ext3 over a small write-back cache behaves exactly like ext3 on the
/// bare disk, op for op, and unmount leaves the identical medium.
#[test]
fn ext3_over_writeback_cache_matches_bare_disk() {
    let cases = gen::vec_of(op_gen(), 1..40);
    check(
        "ext3_over_writeback_cache_matches_bare_disk",
        Config::cases(40),
        &cases,
        |ops| {
            let image = mkfs_image();

            let bare_fs =
                Ext3Fs::mount(image.snapshot(), FsEnv::new(), Ext3Options::default()).unwrap();
            let mut bare = Vfs::new(bare_fs);

            let cached_dev = StackBuilder::new(image.snapshot())
                .with_cache(CachePolicy::write_back(48))
                .build();
            let cached_fs =
                Ext3Fs::mount(cached_dev, FsEnv::new(), Ext3Options::default()).unwrap();
            let mut cached = Vfs::new(cached_fs);

            for op in ops {
                let a = apply(&mut bare, op);
                let b = apply(&mut cached, op);
                assert_eq!(a, b, "op {op:?} diverged");
            }

            bare.umount().unwrap();
            cached.umount().unwrap();
            let bare_md = bare.into_fs().into_device();
            let cache = cached.into_fs().into_device();
            assert_eq!(cache.dirty_blocks(), 0, "unmount drains the cache");
            let cached_md = cache.into_inner();
            for a in 0..bare_md.num_blocks() {
                assert_eq!(
                    bare_md.peek(BlockAddr(a)),
                    cached_md.peek(BlockAddr(a)),
                    "medium diverged at block {a}"
                );
            }
        },
    );
}

/// With the cache in write-through mode, a fault-armed stack produces the
/// *identical* I/O trace to the same stack without the cache — the
/// property that keeps fingerprinting campaigns byte-exact.
#[test]
fn write_through_preserves_fault_traces_exactly() {
    let cases = gen::vec_of(op_gen(), 1..30);
    check(
        "write_through_preserves_fault_traces_exactly",
        Config::cases(30),
        &cases,
        |ops| {
            let image = mkfs_image();
            let spec = FaultSpec::sticky(
                FaultKind::WriteError,
                FaultTarget::TagNth {
                    tag: BlockTag("inode"),
                    nth: 0,
                },
            );

            let run = |with_cache: bool| {
                let plan = FaultPlan::new();
                plan.controller().inject(spec);
                let faulty = FaultyDisk::with_plan(image.snapshot(), plan);
                let trace = faulty.trace();
                let env = FsEnv::new();
                let results = if with_cache {
                    let dev = StackBuilder::new(faulty).write_through().build();
                    match Ext3Fs::mount(dev, env.clone(), Ext3Options::default()) {
                        Ok(fs) => drive(Vfs::new(fs), ops),
                        Err(e) => vec![format!("mount:{e:?}")],
                    }
                } else {
                    match Ext3Fs::mount(faulty, env.clone(), Ext3Options::default()) {
                        Ok(fs) => drive(Vfs::new(fs), ops),
                        Err(e) => vec![format!("mount:{e:?}")],
                    }
                };
                let events: Vec<String> = trace.events().iter().map(|e| e.to_string()).collect();
                (results, events, env.state())
            };

            let (r_bare, t_bare, s_bare) = run(false);
            let (r_cached, t_cached, s_cached) = run(true);
            assert_eq!(r_bare, r_cached, "syscall results diverged");
            assert_eq!(t_bare, t_cached, "I/O traces diverged");
            assert_eq!(s_bare, s_cached, "mount state diverged");
        },
    );
}

/// The lost-write window (§2.2) made concrete: with a write-back cache
/// over a fault-armed disk, the application's write and sync succeed —
/// the failure only surfaces when the cache destages, exactly the hazard
/// the paper describes for errors detected "below the buffer cache".
#[test]
fn writeback_over_faulty_disk_defers_the_write_error() {
    let image = mkfs_image();
    let plan = FaultPlan::new();
    let ctl = plan.controller();
    let dev = StackBuilder::new(image.snapshot())
        .with_faults(plan)
        .with_cache(CachePolicy::write_back(1024))
        .build();
    let fs = Ext3Fs::mount(dev, FsEnv::new(), Ext3Options::default()).unwrap();
    let mut v = Vfs::new(fs);

    // The write itself succeeds unconditionally — it is absorbed by the
    // cache and never touches the (about to fail) disk.
    v.write_file("/doomed", &[7u8; 9000]).unwrap();
    ctl.inject(FaultSpec::sticky(
        FaultKind::WriteError,
        FaultTarget::Tag(BlockTag("data")),
    ));

    // Only sync's destage discovers the failure: the error surfaces at
    // fsync time, blocks after the bad one are still dirty, and an
    // application that never syncs would never hear about it at all.
    let err = v.sync().unwrap_err();
    assert_eq!(err.errno(), Some(Errno::EIO));

    // ext3's unmount ignores the flush error (PAPER-BUG) and tears the
    // stack down with data still trapped above the fault.
    v.umount().expect("unmount ignores the flush failure");
    let mut cache = v.into_fs().into_device();
    assert!(
        cache.dirty_blocks() > 0,
        "the doomed blocks are still dirty"
    );
    let err = cache.destage().unwrap_err();
    assert_eq!(VfsError::from(err).errno(), Some(Errno::EIO));
}

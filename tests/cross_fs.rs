//! Cross-file-system integration tests: the same workloads and the same
//! faults against all four commodity models plus ixt3, asserting the
//! paper's comparative findings.

use ironfs::blockdev::MemDisk;
use ironfs::core::{BlockTag, Errno, FaultKind};
use ironfs::faultinject::{FaultController, FaultSpec, FaultTarget, FaultyDisk};
use ironfs::vfs::{FsEnv, MountState, SpecificFs, Vfs, VfsError};

type DynVfs = Vfs<Box<dyn SpecificFs>>;

fn mount_all() -> Vec<(&'static str, DynVfs, FaultController, FsEnv)> {
    let mut out: Vec<(&'static str, DynVfs, FaultController, FsEnv)> = Vec::new();

    let mut md = MemDisk::for_tests(4096);
    ironfs::ext3::Ext3Fs::<MemDisk>::mkfs(&mut md, ironfs::ext3::Ext3Params::small()).unwrap();
    let fd = FaultyDisk::new(md);
    let ctl = fd.controller();
    let env = FsEnv::new();
    let fs = ironfs::ext3::Ext3Fs::mount(fd, env.clone(), Default::default()).unwrap();
    out.push(("ext3", Vfs::new(Box::new(fs)), ctl, env));

    let mut md = MemDisk::for_tests(4096);
    ironfs::reiser::ReiserFs::<MemDisk>::mkfs(&mut md, ironfs::reiser::ReiserParams::small())
        .unwrap();
    let fd = FaultyDisk::new(md);
    let ctl = fd.controller();
    let env = FsEnv::new();
    let fs = ironfs::reiser::ReiserFs::mount(fd, env.clone(), Default::default()).unwrap();
    out.push(("reiserfs", Vfs::new(Box::new(fs)), ctl, env));

    let mut md = MemDisk::for_tests(4096);
    ironfs::jfs::JfsFs::<MemDisk>::mkfs(&mut md, ironfs::jfs::JfsParams::small()).unwrap();
    let fd = FaultyDisk::new(md);
    let ctl = fd.controller();
    let env = FsEnv::new();
    let fs = ironfs::jfs::JfsFs::mount(fd, env.clone(), Default::default()).unwrap();
    out.push(("jfs", Vfs::new(Box::new(fs)), ctl, env));

    let mut md = MemDisk::for_tests(4096);
    ironfs::ntfs::NtfsFs::<MemDisk>::mkfs(&mut md, ironfs::ntfs::NtfsParams::small()).unwrap();
    let fd = FaultyDisk::new(md);
    let ctl = fd.controller();
    let env = FsEnv::new();
    let fs = ironfs::ntfs::NtfsFs::mount(fd, env.clone(), Default::default()).unwrap();
    out.push(("ntfs", Vfs::new(Box::new(fs)), ctl, env));

    let mut md = MemDisk::for_tests(4096);
    ironfs::ixt3::mkfs(
        &mut md,
        ironfs::ext3::Ext3Params::small(),
        ironfs::ext3::IronConfig::full(),
    )
    .unwrap();
    let fd = FaultyDisk::new(md);
    let ctl = fd.controller();
    let env = FsEnv::new();
    let fs = ironfs::ixt3::mount_full(fd, env.clone()).unwrap();
    out.push(("ixt3", Vfs::new(Box::new(fs)), ctl, env));

    out
}

/// A realistic mixed workload every model must complete identically.
fn exercise(v: &mut DynVfs) -> Result<Vec<u8>, VfsError> {
    v.mkdir("/proj", 0o755)?;
    v.mkdir("/proj/src", 0o755)?;
    for i in 0..20 {
        v.write_file(&format!("/proj/src/mod{i}.rs"), &vec![i as u8; 3_000])?;
    }
    let big: Vec<u8> = (0..150_000u32).map(|i| (i % 241) as u8).collect();
    v.write_file("/proj/target.bin", &big)?;
    v.link("/proj/target.bin", "/proj/alias")?;
    v.symlink("/proj/target.bin", "/proj/sym")?;
    v.rename("/proj/src/mod0.rs", "/proj/src/renamed.rs")?;
    v.unlink("/proj/src/mod1.rs")?;
    v.truncate("/proj/target.bin", 100_000)?;
    v.sync()?;
    let mut digest = Vec::new();
    digest.extend(v.read_file("/proj/sym")?);
    digest.extend(v.readdir("/proj/src")?.len().to_le_bytes());
    Ok(digest)
}

#[test]
fn identical_workload_identical_results_across_all_fs() {
    let mut digests = Vec::new();
    for (name, mut v, _ctl, _env) in mount_all() {
        let d = exercise(&mut v).unwrap_or_else(|e| panic!("{name}: {e}"));
        digests.push((name, d));
    }
    let first = digests[0].1.clone();
    for (name, d) in &digests {
        assert_eq!(*d, first, "{name} diverged from ext3 on a healthy disk");
    }
}

#[test]
fn posix_error_semantics_agree_across_fs() {
    for (name, mut v, _ctl, _env) in mount_all() {
        v.mkdir("/d", 0o755).unwrap();
        v.write_file("/d/f", b"x").unwrap();
        let cases: Vec<(&str, Option<Errno>)> = vec![
            (
                "missing file",
                v.stat("/nope").err().and_then(|e| e.errno()),
            ),
            (
                "mkdir exists",
                v.mkdir("/d", 0o755).err().and_then(|e| e.errno()),
            ),
            (
                "rmdir non-empty",
                v.rmdir("/d").err().and_then(|e| e.errno()),
            ),
            ("unlink dir", v.unlink("/d").err().and_then(|e| e.errno())),
            (
                "rmdir a file",
                v.rmdir("/d/f").err().and_then(|e| e.errno()),
            ),
        ];
        let expect = [
            Some(Errno::ENOENT),
            Some(Errno::EEXIST),
            Some(Errno::ENOTEMPTY),
            Some(Errno::EISDIR),
            Some(Errno::ENOTDIR),
        ];
        for ((what, got), want) in cases.iter().zip(expect) {
            assert_eq!(*got, want, "{name}: {what}");
        }
    }
}

/// §5's headline comparison: the same metadata *write* failure produces
/// four different policies.
#[test]
fn write_failure_policies_differ_as_the_paper_reports() {
    for (name, mut v, ctl, env) in mount_all() {
        let tag = match name {
            "reiserfs" => "leaf",
            "ntfs" => "MFT record",
            _ => "inode",
        };
        ctl.inject(FaultSpec::sticky(
            FaultKind::WriteError,
            FaultTarget::Tag(BlockTag(tag)),
        ));
        let write = v.write_file("/probe", b"x");
        let sync = if write.is_ok() {
            v.sync()
        } else {
            write.clone()
        };
        match name {
            "ext3" => {
                // PAPER-BUG: ignored entirely.
                assert!(sync.is_ok(), "ext3 ignores write errors");
                assert_eq!(env.state(), MountState::ReadWrite);
            }
            "reiserfs" => {
                assert!(
                    matches!(sync, Err(VfsError::KernelPanic(_))),
                    "ReiserFS panics: got {sync:?}"
                );
                assert_eq!(env.state(), MountState::Crashed);
            }
            "jfs" => {
                assert!(sync.is_ok(), "JFS ignores non-journal-super write errors");
                assert_eq!(env.state(), MountState::ReadWrite);
            }
            "ntfs" => {
                assert_eq!(
                    write.err().and_then(|e| e.errno()),
                    Some(Errno::EIO),
                    "NTFS retries then propagates"
                );
                assert!(env.klog.contains("retry 2/2"));
            }
            "ixt3" => {
                assert!(sync.is_err(), "ixt3 detects write failures");
                assert_eq!(env.state(), MountState::ReadOnly, "RStop, not a crash");
            }
            _ => unreachable!(),
        }
    }
}

/// Only ixt3 survives a sticky metadata *read* failure with data intact.
#[test]
fn only_ixt3_recovers_metadata_read_failure() {
    for (name, mut v, ctl, env) in mount_all() {
        v.write_file("/precious", b"data").unwrap();
        v.sync().unwrap();
        // Remount to clear caches.
        v.umount().unwrap();
        drop(v);
        drop(env);
        let _ = ctl;
        // (remount per-FS is exercised in each crate's own tests; here we
        // focus on the cold-cache read-failure path via a fresh instance.)
        let _ = name;
    }

    // Fresh instances with cold caches:
    for (name, mut v, ctl, env) in mount_all() {
        v.write_file("/precious", b"data").unwrap();
        v.sync().unwrap();
        // Drop the read cache by injecting *after* building, then touching
        // a different inode-table block is not possible generically — so
        // instead fail the *next* uncached metadata read via a fresh file
        // in a fresh directory.
        let fault = ctl.inject(FaultSpec::sticky(
            FaultKind::ReadError,
            FaultTarget::Tag(BlockTag(match name {
                "reiserfs" => "stat item",
                "ntfs" => "MFT record",
                _ => "inode",
            })),
        ));
        // For warm caches the fault may simply never fire; that is fine —
        // the assertion below only applies when it did.
        let r = v.read_file("/precious");
        if ctl.fired(fault) {
            match name {
                "ixt3" => {
                    assert_eq!(r.unwrap(), b"data", "ixt3 recovers from replica");
                    assert!(env.klog.contains("recovered from replica"));
                }
                _ => {
                    assert!(r.is_err(), "{name} cannot recover without redundancy");
                }
            }
        }
    }
}

/// Whole-disk (fail-stop) failure: the one failure class the classic
/// model covers. Even here the policies differ: ReiserFS/JFS die loudly,
/// NTFS and ixt3 report errors — and stock ext3, which ignores write error
/// codes, keeps "succeeding" into the void until something *reads*.
#[test]
fn whole_disk_failure_outcomes() {
    for (name, mut v, ctl, env) in mount_all() {
        v.write_file("/f", b"x").unwrap();
        let fault = ctl.inject(FaultSpec::sticky(
            FaultKind::WholeDisk,
            FaultTarget::Tag(BlockTag("data")),
        ));
        let write = v.write_file("/g", &vec![7u8; 8192]);
        let sync = if write.is_ok() {
            v.sync()
        } else {
            write.clone()
        };
        assert!(
            ctl.fired(fault),
            "{name}: the whole-disk fault must trigger"
        );
        match name {
            // PAPER-BUG made absurd: ext3 never checks write error codes,
            // so a dead disk looks like a working one to the write path.
            "ext3" => {
                assert!(sync.is_ok(), "{name}: stock ext3 ignores even this");
                assert_eq!(env.state(), MountState::ReadWrite);
            }
            "reiserfs" | "jfs" => {
                assert!(
                    matches!(sync, Err(VfsError::KernelPanic(_))),
                    "{name}: expected panic, got {sync:?}"
                );
                assert_eq!(env.state(), MountState::Crashed);
            }
            "ntfs" => {
                // Data-write errors are recorded-but-unused, but the MFT
                // update behind the new file propagates after retries.
                assert!(
                    write.is_err() || sync.is_err(),
                    "{name}: {write:?}/{sync:?}"
                );
            }
            "ixt3" => {
                assert!(sync.is_err(), "{name}: detects and stops");
                assert_ne!(env.state(), MountState::ReadWrite);
            }
            _ => unreachable!(),
        }
    }
}

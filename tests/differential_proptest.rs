//! Property-based differential testing of the ReiserFS, JFS, and NTFS
//! models against the in-memory reference (`RamFs`): arbitrary operation
//! sequences must produce identical observable results on a healthy disk.
//! (The ext3/ixt3 engine has its own, deeper differential suite in
//! `crates/ext3/tests/`.)
//!
//! Runs on the in-tree `iron-testkit` harness: every case is generated
//! from a reported seed, so any failure reruns deterministically with
//! `IRON_TESTKIT_SEED=<seed> cargo test -q <test_name>`.

use iron_testkit::gen::{self, Gen};
use iron_testkit::prop::{check, Config};
use ironfs::blockdev::MemDisk;
use ironfs::vfs::ramfs::RamFs;
use ironfs::vfs::{FileType, FsEnv, OpenFlags, SpecificFs, Vfs, VfsError};

#[derive(Clone, Debug)]
enum Op {
    Create(u8),
    Mkdir(u8),
    Write(u8, u16, Vec<u8>),
    Truncate(u8, u16),
    Read(u8),
    Unlink(u8),
    Rmdir(u8),
    Rename(u8, u8),
    Link(u8, u8),
    Symlink(u8, u8),
    Stat(u8),
    Readdir(u8),
    Sync,
}

fn path(n: u8) -> String {
    match n % 10 {
        0 => "/a".into(),
        1 => "/b".into(),
        2 => "/dir".into(),
        3 => "/dir/x".into(),
        4 => "/dir/y".into(),
        5 => "/dir/sub".into(),
        6 => "/dir/sub/z".into(),
        7 => "/f1".into(),
        8 => "/f2".into(),
        _ => "/dir/f3".into(),
    }
}

fn op_gen() -> impl Gen<Value = Op> {
    gen::one_of(vec![
        gen::u8_any().map(Op::Create).boxed(),
        gen::u8_any().map(Op::Mkdir).boxed(),
        (gen::u8_any(), gen::u16_any(), gen::bytes(0..1500))
            .map(|(p, o, d)| Op::Write(p, o % 6000, d))
            .boxed(),
        (gen::u8_any(), gen::u16_any())
            .map(|(p, s)| Op::Truncate(p, s % 6000))
            .boxed(),
        gen::u8_any().map(Op::Read).boxed(),
        gen::u8_any().map(Op::Unlink).boxed(),
        gen::u8_any().map(Op::Rmdir).boxed(),
        (gen::u8_any(), gen::u8_any())
            .map(|(a, b)| Op::Rename(a, b))
            .boxed(),
        (gen::u8_any(), gen::u8_any())
            .map(|(a, b)| Op::Link(a, b))
            .boxed(),
        (gen::u8_any(), gen::u8_any())
            .map(|(a, b)| Op::Symlink(a, b))
            .boxed(),
        gen::u8_any().map(Op::Stat).boxed(),
        gen::u8_any().map(Op::Readdir).boxed(),
        gen::just(Op::Sync).boxed(),
    ])
}

fn ops_gen(max_len: usize) -> impl Gen<Value = Vec<Op>> {
    gen::vec_of(op_gen(), 1..max_len)
}

fn apply<F: SpecificFs>(v: &mut Vfs<F>, op: &Op) -> Result<Vec<u8>, VfsError> {
    match op {
        Op::Create(p) => v
            .creat(&path(*p))
            .and_then(|fd| v.close(fd))
            .map(|_| vec![]),
        Op::Mkdir(p) => v.mkdir(&path(*p), 0o755).map(|_| vec![]),
        Op::Write(p, off, data) => {
            let fd = v.open(&path(*p), OpenFlags::rdwr())?;
            let r = v.pwrite(fd, *off as u64, data);
            v.close(fd)?;
            r.map(|n| n.to_le_bytes().to_vec())
        }
        Op::Truncate(p, s) => v.truncate(&path(*p), *s as u64).map(|_| vec![]),
        Op::Read(p) => v.read_file(&path(*p)),
        Op::Unlink(p) => v.unlink(&path(*p)).map(|_| vec![]),
        Op::Rmdir(p) => v.rmdir(&path(*p)).map(|_| vec![]),
        Op::Rename(a, b) => v.rename(&path(*a), &path(*b)).map(|_| vec![]),
        Op::Link(a, b) => v.link(&path(*a), &path(*b)).map(|_| vec![]),
        Op::Symlink(a, b) => v.symlink(&path(*a), &path(*b)).map(|_| vec![]),
        Op::Stat(p) => v.stat(&path(*p)).map(|a| {
            let size = if a.ftype == FileType::Directory {
                0
            } else {
                a.size
            };
            let mut out = size.to_le_bytes().to_vec();
            out.push(a.nlink as u8);
            out.push(match a.ftype {
                FileType::Regular => 0,
                FileType::Directory => 1,
                FileType::Symlink => 2,
            });
            out
        }),
        Op::Readdir(p) => v.readdir(&path(*p)).map(|es| {
            let mut names: Vec<String> = es.into_iter().map(|e| e.name).collect();
            names.sort();
            names.join(",").into_bytes()
        }),
        Op::Sync => v.sync().map(|_| vec![]),
    }
}

fn run_against_reference<F: SpecificFs>(mut target: Vfs<F>, name: &str, ops: &[Op]) {
    let mut reference = Vfs::new(RamFs::new());
    for op in ops {
        let a = apply(&mut target, op);
        let b = apply(&mut reference, op);
        match (&a, &b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "{name}: divergent success on {op:?}"),
            (Err(x), Err(y)) => {
                // NTFS directories have no nlink bump for children in some
                // paths; errno equality is the contract here.
                assert_eq!(
                    x.errno(),
                    y.errno(),
                    "{name}: divergent errno on {op:?}: {x:?} vs {y:?}"
                );
            }
            _ => panic!("{name}: divergence on {op:?}: {a:?} vs {b:?}"),
        }
    }
    // The target must also survive a final sync + unmount.
    target
        .sync()
        .unwrap_or_else(|e| panic!("{name}: final sync: {e}"));
    target
        .umount()
        .unwrap_or_else(|e| panic!("{name}: umount: {e}"));
}

#[test]
fn reiserfs_matches_reference() {
    check(
        "reiserfs_matches_reference",
        Config::cases(16),
        &ops_gen(50),
        |ops| {
            let dev = MemDisk::for_tests(4096);
            let fs = ironfs::reiser::ReiserFs::format_and_mount(
                dev,
                FsEnv::new(),
                ironfs::reiser::ReiserParams::small(),
                ironfs::reiser::ReiserOptions::default(),
            )
            .unwrap();
            run_against_reference(Vfs::new(fs), "reiserfs", ops);
        },
    );
}

#[test]
fn jfs_matches_reference() {
    check(
        "jfs_matches_reference",
        Config::cases(16),
        &ops_gen(50),
        |ops| {
            let dev = MemDisk::for_tests(4096);
            let fs = ironfs::jfs::JfsFs::format_and_mount(
                dev,
                FsEnv::new(),
                ironfs::jfs::JfsParams::small(),
                ironfs::jfs::JfsOptions::default(),
            )
            .unwrap();
            run_against_reference(Vfs::new(fs), "jfs", ops);
        },
    );
}

#[test]
fn ntfs_matches_reference() {
    check(
        "ntfs_matches_reference",
        Config::cases(16),
        &ops_gen(50),
        |ops| {
            let dev = MemDisk::for_tests(4096);
            let fs = ironfs::ntfs::NtfsFs::format_and_mount(
                dev,
                FsEnv::new(),
                ironfs::ntfs::NtfsParams::small(),
            )
            .unwrap();
            run_against_reference(Vfs::new(fs), "ntfs", ops);
        },
    );
}

#[test]
fn reiserfs_state_survives_remount() {
    check(
        "reiserfs_state_survives_remount",
        Config::cases(16),
        &ops_gen(30),
        |ops| {
            let dev = MemDisk::for_tests(4096);
            let fs = ironfs::reiser::ReiserFs::format_and_mount(
                dev,
                FsEnv::new(),
                ironfs::reiser::ReiserParams::small(),
                ironfs::reiser::ReiserOptions::default(),
            )
            .unwrap();
            let mut v = Vfs::new(fs);
            let mut reference = Vfs::new(RamFs::new());
            for op in ops {
                let _ = apply(&mut v, op);
                let _ = apply(&mut reference, op);
            }
            v.umount().unwrap();
            let dev = v.into_fs().into_device();
            let fs = ironfs::reiser::ReiserFs::mount(
                dev,
                FsEnv::new(),
                ironfs::reiser::ReiserOptions::default(),
            )
            .unwrap();
            let mut v = Vfs::new(fs);
            // Every file readable before must read identically after remount.
            for n in 0..10u8 {
                let p = path(n);
                let before = reference.read_file(&p);
                let after = v.read_file(&p);
                match (&before, &after) {
                    (Ok(x), Ok(y)) => assert_eq!(x, y, "remount divergence at {p}"),
                    (Err(_), Err(_)) => {}
                    _ => panic!("remount divergence at {p}: {before:?} vs {after:?}"),
                }
            }
        },
    );
}
